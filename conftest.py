"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful on offline machines where ``pip install -e .`` cannot fetch
build dependencies; see README "Installation" for details), registers the
repo's custom markers, and hosts the workcell/fleet factory fixtures shared
by ``tests/`` and ``benchmarks/`` -- the one place engine construction is
spelled out, so tests and benchmarks cannot drift apart on how a workcell or
fleet is built.
"""

import os
import re
import shutil
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "soak: chaos soak tests (seeded wire-protocol fault matrices); also run "
        "standalone by the dedicated non-blocking CI soak job via '-m soak'",
    )


@pytest.fixture
def instrumented_locks():
    """Opt-in concurrency instrumentation for one test.

    Installs a fresh :class:`~repro.analysis.runtime.LockOrderGraph` and
    :class:`~repro.analysis.runtime.ThreadOwnershipChecker`; every lock the
    driver/chaos layer creates while this fixture is active reports
    acquisition order to the graph, and the bridge's engine side asserts
    single-thread ownership.  Yields the
    :class:`~repro.analysis.runtime.Instrumentation` scope so tests can
    assert on ``instr.graph.find_cycles()`` and friends.  Restores whatever
    was installed before (e.g. the ``REPRO_ANALYSIS=1`` process-wide scope
    used by the CI instrumented subset).
    """
    from repro.analysis import runtime

    previous = runtime.current()
    instr = runtime.install()
    try:
        yield instr
    finally:
        if previous is not None:
            runtime.install(previous)
        else:
            runtime.uninstall()


@pytest.fixture
def portal_store_dir(tmp_path, request):
    """A durable portal-store directory registered for artifact capture.

    Tests exercising :class:`~repro.publish.store.DurableDataPortal` create
    their store here; when such a test fails and ``$REPRO_PORTAL_ARTIFACTS``
    is set (as in CI), the exact segment bytes are copied below that
    directory so the failure can be replayed from the uploaded artifact.
    """
    directory = tmp_path / "portal-store"
    registered = getattr(request.node, "portal_store_dirs", None)
    if registered is None:
        registered = []
        request.node.portal_store_dirs = registered
    registered.append(directory)
    return directory


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    target_root = os.environ.get("REPRO_PORTAL_ARTIFACTS")
    if not target_root or not report.failed:
        return
    safe_id = re.sub(r"[^A-Za-z0-9_.-]+", "_", item.nodeid)
    for number, directory in enumerate(getattr(item, "portal_store_dirs", [])):
        if not directory.exists():
            continue
        destination = os.path.join(target_root, safe_id, f"store-{number}")
        if not os.path.exists(destination):
            shutil.copytree(directory, destination)
    # If the failing test had a flight recorder installed (repro.obs), dump
    # its ring next to the portal stores: the last spans/events before the
    # failure, replayable from the uploaded artifact.  No-op when telemetry
    # is off -- the default for the suite.
    try:
        from repro.obs import recorder as obs_recorder
    except Exception:  # pragma: no cover - obs must never break reporting
        return
    obs_recorder.flight_dump(
        "test-failure",
        directory=os.path.join(target_root, safe_id),
        test=item.nodeid,
        when=report.when,
    )


@pytest.fixture
def make_workcell():
    """Factory for deterministic colour-picker workcells.

    ``make_workcell(seed=7, n_ot2=2, name=...)`` forwards everything to
    :func:`~repro.wei.workcell.build_color_picker_workcell`; the only added
    opinion is a default seed, so two calls with the same arguments build
    identical workcells.
    """
    from repro.wei.workcell import build_color_picker_workcell

    def _make(seed=42, **kwargs):
        return build_color_picker_workcell(seed=seed, **kwargs)

    return _make


@pytest.fixture
def make_engine(make_workcell):
    """Factory for a :class:`ConcurrentWorkflowEngine` over a fresh workcell.

    ``make_engine(seed=7, n_ot2=2, name=..., drivers=..., max_retries=...)``:
    workcell-construction keywords go to :fixture:`make_workcell`,
    engine-construction keywords to the engine.
    """
    from repro.wei.concurrent import ConcurrentWorkflowEngine

    def _make(seed=42, *, name=None, n_ot2=1, drivers=None, **engine_kwargs):
        workcell_kwargs = {"seed": seed, "n_ot2": n_ot2}
        if name is not None:
            workcell_kwargs["name"] = name
        workcell = make_workcell(**workcell_kwargs)
        return ConcurrentWorkflowEngine(workcell, drivers=drivers, **engine_kwargs)

    return _make


@pytest.fixture
def make_fleet():
    """Factory for a :class:`MultiWorkcellCoordinator` colour-picker fleet.

    ``make_fleet(n_workcells=2, seed=0, n_ot2=1, engine_factory=...)`` wraps
    :meth:`MultiWorkcellCoordinator.build_color_picker_fleet`, which derives
    per-shard seeds so the whole fleet is reproducible.
    """
    from repro.wei.coordinator import MultiWorkcellCoordinator

    def _make(n_workcells=2, *, seed=0, n_ot2=1, engine_factory=None, **kwargs):
        return MultiWorkcellCoordinator.build_color_picker_fleet(
            n_workcells,
            seed=seed,
            n_ot2=n_ot2,
            engine_factory=engine_factory,
            **kwargs,
        )

    return _make
