"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful on offline machines where ``pip install -e .`` cannot fetch
build dependencies; see README "Installation" for details).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
