"""Setuptools shim.

The project is configured via pyproject.toml; this file exists so the package
can also be installed in environments where PEP 517 editable installs are not
available (e.g. offline machines without the ``wheel`` package).
"""
from setuptools import setup

setup()
