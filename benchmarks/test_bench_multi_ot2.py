"""Benchmark: the Section 4 "multiple OT-2s" ablation.

The paper's discussion proposes integrating additional OT-2s "so that multiple
plates of colors could be mixed at once.  This would lead to an increase in
CCWH, but potentially a lower TWH for the same experimental results."  This
benchmark quantifies that trade-off two ways:

* the resource-timeline planner schedules the same 128-sample workload
  (batches of 16) onto 1, 2 and 4 OT-2s and reports makespan / utilisation;
* the full application runs against a two-OT-2 workcell, alternating batches
  between the OT-2s, and is compared with the single-OT-2 run.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig
from repro.wei.scheduler import plan_parallel_mixes

N_SAMPLES = 128
BATCH_SIZE = 16
SEED = 99


def plan_all():
    batches = [BATCH_SIZE] * (N_SAMPLES // BATCH_SIZE)
    return {n: plan_parallel_mixes(batches, n_ot2=n) for n in (1, 2, 4)}


@pytest.mark.benchmark(group="multi-ot2")
def test_multi_ot2_planner_ablation(benchmark, report):
    plans = benchmark.pedantic(plan_all, rounds=1, iterations=1)

    rows = []
    for n_ot2, plan in plans.items():
        utilisation = plan.utilisation()
        rows.append(
            (
                n_ot2,
                f"{plan.makespan / 3600:.2f} h",
                plan.robotic_commands,
                f"{utilisation.get('ot2', 0.0):.2f}",
                f"{utilisation['pf400']:.2f}",
            )
        )
    report(
        "Multi-OT-2 ablation (planner): makespan vs. number of liquid handlers",
        format_table(["OT-2s", "makespan (TWH)", "robotic commands", "ot2 util", "pf400 util"], rows),
    )

    # CCWH (robotic commands for the same workload) is unchanged...
    assert plans[1].total_commands == plans[2].total_commands == plans[4].total_commands
    # ...while TWH (makespan) drops with more OT-2s, which is the paper's point.
    assert plans[2].makespan < plans[1].makespan
    assert plans[4].makespan <= plans[2].makespan
    # Two OT-2s should get close to halving the mix-dominated makespan.
    assert plans[2].makespan < plans[1].makespan * 0.75


def run_dual_ot2_application(make_workcell):
    """Run half the budget on each OT-2 of a dual-OT-2 workcell."""
    workcell = make_workcell(seed=SEED, n_ot2=2)
    results = []
    for index, (ot2, barty) in enumerate((("ot2", "barty"), ("ot2_2", "barty_2"))):
        config = ExperimentConfig(
            n_samples=N_SAMPLES // 2,
            batch_size=BATCH_SIZE,
            seed=SEED + index,
            measurement="direct",
            publish=False,
            experiment_id="multi-ot2",
            run_id=f"multi-ot2-{ot2}",
        )
        app = ColorPickerApp(config, workcell=workcell, ot2=ot2, barty=barty)
        results.append(app.run())
    return workcell, results


@pytest.mark.benchmark(group="multi-ot2")
def test_multi_ot2_application_run(benchmark, report, make_workcell):
    workcell, results = benchmark.pedantic(
        run_dual_ot2_application, args=(make_workcell,), rounds=1, iterations=1
    )

    total_samples = sum(result.n_samples for result in results)
    total_commands = workcell.total_commands(robotic_only=True)
    report(
        "Multi-OT-2 ablation (application): two OT-2s sharing one workcell",
        format_table(
            ["ot2", "samples", "best score"],
            [
                (result.config.run_id.split("-")[-1], result.n_samples, f"{result.best_score:.2f}")
                for result in results
            ],
        ),
    )

    assert total_samples == N_SAMPLES
    # Both OT-2s did real work.
    assert workcell.module("ot2").device.wells_filled == N_SAMPLES // 2
    assert workcell.module("ot2_2").device.wells_filled == N_SAMPLES // 2
    # Commands scale with the workload regardless of which OT-2 executed it
    # (~3 robotic commands per batch iteration plus plate handling).
    assert total_commands >= 3 * (N_SAMPLES // BATCH_SIZE)
