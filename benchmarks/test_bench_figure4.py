"""Benchmark: regenerate Figure 4 (batch-size sweep).

Runs the seven experiments of the paper's Figure 4 -- batch sizes 1 to 64,
128 samples each, target RGB (120, 120, 120), the evolutionary solver -- on
the simulated workcell and reports the best-score-so-far trajectories, the
per-batch-size summary and the qualitative shape checks.

We do not expect to match the paper's absolute scores (our chemistry and
camera are synthetic), but the shape must hold: smaller batch sizes take
longer in simulated wall-clock time and reach scores at least as good as the
largest batch size.
"""

import pytest

from repro.analysis.figure4 import check_figure4_shape, figure4_summary_rows, render_figure4
from repro.core.batch import PAPER_BATCH_SIZES, run_batch_sweep

#: Experiment parameters straight from the paper.
N_SAMPLES = 128
SEED = 2023


def run_figure4_sweep():
    return run_batch_sweep(
        batch_sizes=PAPER_BATCH_SIZES,
        n_samples=N_SAMPLES,
        target="paper-grey",
        solver="evolutionary",
        measurement="direct",
        seed=SEED,
    )


@pytest.mark.benchmark(group="figure4")
def test_figure4_batch_size_sweep(benchmark, report):
    sweep = benchmark.pedantic(run_figure4_sweep, rounds=1, iterations=1)

    report("Figure 4 reproduction", render_figure4(sweep))

    # Every experiment used its full 128-sample budget.
    for size in PAPER_BATCH_SIZES:
        assert sweep.experiments[size].n_samples == N_SAMPLES

    # Shape checks corresponding to the paper's observations.
    checks = check_figure4_shape(sweep)
    assert checks["small_batches_slower"], "B=1 should take longer than B=64"
    assert checks["small_batches_better"], "B=1 should score at least as well as B=64"
    assert checks["all_within_budget"]

    # The B=1 run should take on the order of the paper's ~8 hours, and the
    # largest batch well under half of that.
    times = sweep.total_times_minutes()
    assert 6.5 * 60 <= times[1] <= 10 * 60
    assert times[64] < times[1] * 0.6

    # Every trajectory is a non-increasing best-so-far curve ending below its start.
    for size in PAPER_BATCH_SIZES:
        _, best = sweep.trajectory(size)
        assert best[-1] <= best[0]

    report(
        "Figure 4 summary rows (batch, samples, minutes, best score, min/colour)",
        "\n".join(str(row) for row in figure4_summary_rows(sweep)),
    )
