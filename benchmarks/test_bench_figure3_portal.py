"""Benchmark: regenerate Figure 3 (the data-portal views).

Runs the campaign shown in the paper's portal screenshot -- 12 runs of 15
samples each (180 samples total) -- publishes every run to the simulated ACDC
portal and renders the summary and per-run detail views.
"""

import pytest

from repro.analysis.figure3 import figure3_views, render_figure3
from repro.core.campaign import run_campaign
from repro.publish.portal import DataPortal

N_RUNS = 12
SAMPLES_PER_RUN = 15
SEED = 816  # the paper's experiment was performed on August 16th, 2023


def run_figure3_campaign():
    portal = DataPortal()
    return run_campaign(
        n_runs=N_RUNS,
        samples_per_run=SAMPLES_PER_RUN,
        experiment_id="acdc-2023-08-16",
        batch_size=1,
        solver="evolutionary",
        measurement="direct",
        seed=SEED,
        portal=portal,
    )


@pytest.mark.benchmark(group="figure3")
def test_figure3_portal_views(benchmark, report):
    campaign = benchmark.pedantic(run_figure3_campaign, rounds=1, iterations=1)

    report("Figure 3 reproduction", render_figure3(campaign))

    # The headline numbers from the paper's caption: 12 runs x 15 samples = 180.
    assert campaign.n_runs == N_RUNS
    assert campaign.total_samples == N_RUNS * SAMPLES_PER_RUN == 180

    summary, detail = figure3_views(campaign)
    assert summary["n_runs"] == 12
    assert summary["total_samples"] == 180
    assert summary["samples_per_run"] == [15] * 12
    assert summary["solvers"] == ["evolutionary"]

    # Detail view of run #12 (the one shown in the paper's right panel).
    assert detail["run_index"] == 11
    assert detail["n_samples"] == 15
    assert detail["best_score"] is not None and detail["best_score"] >= 0
    assert len(detail["samples"]) == 15

    # Every published run is retrievable through the search index.
    for run_index in range(N_RUNS):
        assert campaign.detail_view(run_index)["run_index"] == run_index
