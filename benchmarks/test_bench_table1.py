"""Benchmark: regenerate Table 1 (proposed SDL metrics for the B = 1 run).

Runs the paper's headline experiment -- batch size 1, 128 samples, GA solver
-- and computes the proposed SDL metrics from the simulated workcell's command
log, printing them side by side with the paper's reported values.
"""

import pytest

from repro.analysis.table1 import render_table1, table1_comparison
from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig
from repro.core.metrics import PAPER_TABLE1
from repro.sim.durations import paper_calibrated_durations
from repro.wei.workcell import build_color_picker_workcell

SEED = 816


def run_b1_experiment(jitter_cv: float = 0.05):
    config = ExperimentConfig(
        target="paper-grey",
        n_samples=128,
        batch_size=1,
        solver="evolutionary",
        measurement="direct",
        seed=SEED,
        experiment_id="table1",
        run_id="table1-B1",
    )
    workcell = build_color_picker_workcell(
        seed=SEED, durations=paper_calibrated_durations(jitter_cv=jitter_cv)
    )
    return ColorPickerApp(config, workcell=workcell).run()


@pytest.mark.benchmark(group="table1")
def test_table1_sdl_metrics(benchmark, report):
    result = benchmark.pedantic(run_b1_experiment, rounds=1, iterations=1)
    metrics = result.metrics

    report("Table 1 reproduction", render_table1(metrics))
    report("Simulated run, paper-format table", metrics.as_table())

    assert metrics.total_colors == 128

    # Paper-vs-measured ratios: the simulated workcell is calibrated to land
    # within ~20 % of every Table 1 entry.
    for row in table1_comparison(metrics):
        assert 0.8 <= row["ratio"] <= 1.25, f"{row['metric']} ratio {row['ratio']:.2f} out of band"

    # Structural identities the paper's numbers satisfy.
    assert metrics.synthesis_time_s + metrics.transfer_time_s == pytest.approx(
        metrics.time_without_humans_s
    )
    assert metrics.synthesis_fraction == pytest.approx(0.63, abs=0.08)
    assert metrics.time_per_color_s == pytest.approx(PAPER_TABLE1["time_per_color_s"], rel=0.2)
    # ~3 robotic commands per colour plus plate handling, as in the paper's 387.
    assert 350 <= metrics.commands_completed <= 430


@pytest.mark.benchmark(group="table1")
def test_table1_duration_noise_ablation(benchmark, report):
    """DESIGN.md ablation: the metrics are driven by the calibrated means, not the jitter.

    Re-running the B = 1 experiment with deterministic (zero-jitter) action
    durations must land within a few percent of the jittered run on every
    aggregate metric -- the duration noise models realism, it does not carry
    the result.
    """
    deterministic = benchmark.pedantic(
        run_b1_experiment, kwargs={"jitter_cv": 0.0}, rounds=1, iterations=1
    )
    jittered = run_b1_experiment(jitter_cv=0.05)

    report(
        "Duration-noise ablation (B = 1): deterministic vs. jittered durations",
        "deterministic: " + deterministic.metrics.as_table().replace("\n", " | ")
        + "\njittered:      " + jittered.metrics.as_table().replace("\n", " | "),
    )

    det, jit = deterministic.metrics, jittered.metrics
    assert det.total_colors == jit.total_colors == 128
    assert det.time_without_humans_s == pytest.approx(jit.time_without_humans_s, rel=0.05)
    assert det.synthesis_time_s == pytest.approx(jit.synthesis_time_s, rel=0.05)
    assert det.commands_completed == pytest.approx(jit.commands_completed, abs=12)
