"""Benchmark: Section 2.5 solver comparison (GA vs. Bayesian vs. baselines).

The paper implemented both a genetic algorithm and a Bayesian solver and notes
that the Bayesian approach does "not yield a systematic improvement over the
genetic algorithm".  This benchmark runs both (plus a random-search baseline
and the analytic oracle upper bound) under the same budget and reports the
best score each achieves.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig
from repro.solvers.oracle import OracleSolver
from repro.wei.workcell import build_color_picker_workcell

N_SAMPLES = 64
BATCH_SIZE = 4
SEEDS = (101, 202, 303)


def run_one(solver_name: str, seed: int):
    config = ExperimentConfig(
        target="paper-grey",
        n_samples=N_SAMPLES,
        batch_size=BATCH_SIZE,
        solver=solver_name if solver_name != "oracle" else "evolutionary",
        measurement="direct",
        seed=seed,
        publish=False,
        experiment_id="solver-comparison",
        run_id=f"solver-{solver_name}-{seed}",
    )
    workcell = build_color_picker_workcell(seed=seed)
    solver = None
    if solver_name == "oracle":
        solver = OracleSolver(
            seed=seed,
            chemistry=workcell.chemistry,
            target_rgb=config.target.rgb,
            max_component_volume_ul=config.max_component_volume_ul,
        )
    app = ColorPickerApp(config, workcell=workcell, solver=solver)
    return app.run()


def run_comparison():
    results = {}
    for solver_name in ("evolutionary", "bayesian", "random", "oracle"):
        results[solver_name] = [run_one(solver_name, seed) for seed in SEEDS]
    return results


@pytest.mark.benchmark(group="solver-comparison")
def test_solver_comparison(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    def mean_best(name):
        return sum(r.best_score for r in results[name]) / len(SEEDS)

    rows = [
        (name, f"{mean_best(name):.2f}", f"{min(r.best_score for r in results[name]):.2f}")
        for name in results
    ]
    report(
        "Solver comparison (mean / best final score over seeds)",
        format_table(["solver", "mean best score", "best over seeds"], rows),
    )

    ga, bo, random_search, oracle = (
        mean_best("evolutionary"),
        mean_best("bayesian"),
        mean_best("random"),
        mean_best("oracle"),
    )

    # Every solver used its full budget.
    for runs in results.values():
        assert all(r.n_samples == N_SAMPLES for r in runs)

    # The oracle (which sees the chemistry) bounds everything from below.
    assert oracle <= ga + 1.0
    assert oracle <= bo + 1.0
    assert oracle < 10.0

    # Both learning solvers beat random search on average.
    assert ga < random_search
    assert bo < random_search

    # The paper's observation is that BO gives no *systematic* improvement
    # over the GA.  On the simulated chemistry (smooth, low-noise) BO tends to
    # do somewhat better than the GA, so the check here is looser: the two
    # learning solvers land in the same band (within a factor of ~4 of each
    # other), far from random search and not far from the oracle.  See
    # EXPERIMENTS.md for the discussion of this divergence.
    assert bo <= ga * 4.0 + 5.0
    assert ga <= bo * 4.0 + 5.0
