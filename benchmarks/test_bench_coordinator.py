"""Benchmark: work-stealing vs. static lane pinning, and multi-workcell sharding.

Two claims of the two-phase/coordinator PR are measured here:

* on an *uneven-duration* workload (the Figure 4 batch-size sweep, where the
  B=1 experiment issues ~8x the transfers of the B=32 one) least-finish-time
  work stealing beats pinning experiment ``i`` to lane ``i % k``;
* sharding a campaign across two coordinated workcells cuts the makespan
  close to in half while publishing the identical per-run science.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.app import ColorPickerApp
from repro.core.batch import run_batch_sweep
from repro.core.campaign import predict_experiment_duration, run_campaign
from repro.core.experiment import ExperimentConfig

SEED = 99
#: Deliberately skewed sweep: B=1 runs far longer than B=32 at equal samples,
#: and the ordering pins both long experiments (B=1, B=2) to lane 0 under
#: static i % k -- the pathological split work stealing repairs.
UNEVEN_BATCH_SIZES = (1, 32, 2, 16)


def run_sweeps():
    shared = dict(batch_sizes=UNEVEN_BATCH_SIZES, n_samples=32, seed=SEED, n_ot2=2)
    static = run_batch_sweep(assignment="static", **shared)
    stealing = run_batch_sweep(assignment="work-stealing", **shared)
    return static, stealing


@pytest.mark.benchmark(group="coordinator")
def test_work_stealing_beats_static_pinning_on_uneven_sweep(benchmark, report):
    static, stealing = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    report(
        "Uneven-duration sweep on 2 OT-2 lanes: static i % k vs. work stealing",
        format_table(
            ["assignment", "makespan", "speedup"],
            [
                ("static i % k", f"{static.makespan_s / 3600:.2f} h", "1.00x"),
                (
                    "work-stealing",
                    f"{stealing.makespan_s / 3600:.2f} h",
                    f"{static.makespan_s / stealing.makespan_s:.2f}x",
                ),
            ],
        ),
    )

    # The science is identical either way...
    for size in UNEVEN_BATCH_SIZES:
        np.testing.assert_allclose(
            static.experiments[size].scores(), stealing.experiments[size].scores()
        )
    # ...but the dynamic assignment finishes strictly earlier on this skew.
    assert stealing.makespan_s < static.makespan_s


def run_sharded_campaigns():
    shared = dict(
        n_runs=6, samples_per_run=12, batch_size=6, measurement="direct", seed=SEED
    )
    single = run_campaign(experiment_id="bench-single", **shared)
    sharded = run_campaign(experiment_id="bench-fleet", n_workcells=2, **shared)
    return single, sharded


@pytest.mark.benchmark(group="coordinator")
def test_two_workcell_fleet_halves_campaign_makespan(benchmark, report):
    single, sharded = benchmark.pedantic(run_sharded_campaigns, rounds=1, iterations=1)

    shards = ", ".join(f"{m / 3600:.2f} h" for m in sharded.workcell_makespans)
    report(
        "Campaign on one workcell vs. a coordinated two-workcell fleet",
        format_table(
            ["fleet", "runs", "makespan", "speedup"],
            [
                ("1 workcell", single.n_runs, f"{single.makespan_s / 3600:.2f} h", "1.00x"),
                (
                    f"2 workcells ({shards})",
                    sharded.n_runs,
                    f"{sharded.makespan_s / 3600:.2f} h",
                    f"{single.makespan_s / sharded.makespan_s:.2f}x",
                ),
            ],
        ),
    )

    for seq_run, shard_run in zip(single.runs, sharded.runs):
        np.testing.assert_allclose(seq_run.scores(), shard_run.scores())
    assert sharded.makespan_s < single.makespan_s
    # Even runs shard cleanly: two workcells should approach a 2x speedup.
    assert single.makespan_s / sharded.makespan_s > 1.6


#: Adversarial queue for plain FIFO stealing: three short runs arrive before
#: one long run, so greedy in-order claiming starts the long run *last* and
#: one lane finishes far behind the other.  LPT ordering (longest predicted
#: duration first, from DurationTable means) starts it first.
LPT_SAMPLE_COUNTS = (4, 4, 4, 16)


def run_lpt_comparison(make_fleet):
    def uneven_jobs():
        return [
            ExperimentConfig(
                n_samples=n_samples,
                batch_size=4,
                solver="random",
                seed=SEED + index,
                publish=False,
                experiment_id="lpt-bench",
                run_id=f"lpt-bench-run{index}",
                run_index=index,
            )
            for index, n_samples in enumerate(LPT_SAMPLE_COUNTS)
        ]

    def run_fleet(assignment):
        coordinator = make_fleet(2, seed=SEED)

        def make_program(config, shard, lane):
            app = ColorPickerApp(
                config,
                workcell=coordinator.engines[shard].workcell,
                ot2=lane[0],
                barty=lane[1],
                staging="ot2",
            )
            return app.program()

        lanes = [engine.workcell.ot2_barty_pairs()[:1] for engine in coordinator.engines]
        results = coordinator.run_jobs(
            uneven_jobs(),
            make_program,
            lanes=lanes,
            assignment=assignment,
            duration_hint=predict_experiment_duration,
        )
        return coordinator, results

    fifo, fifo_results = run_fleet("work-stealing")
    lpt, lpt_results = run_fleet("stealing-lpt")
    return fifo, fifo_results, lpt, lpt_results


@pytest.mark.benchmark(group="coordinator")
def test_lpt_ordering_beats_fifo_stealing_on_skewed_runs(benchmark, report, make_fleet):
    fifo, fifo_results, lpt, lpt_results = benchmark.pedantic(
        run_lpt_comparison, args=(make_fleet,), rounds=1, iterations=1
    )

    report(
        "Skewed campaign (samples %s) on a 2-workcell fleet: FIFO vs LPT queue order"
        % (LPT_SAMPLE_COUNTS,),
        format_table(
            ["queue order", "makespan", "speedup"],
            [
                ("work-stealing (FIFO)", f"{fifo.makespan / 3600:.2f} h", "1.00x"),
                (
                    "stealing-lpt (longest first)",
                    f"{lpt.makespan / 3600:.2f} h",
                    f"{fifo.makespan / lpt.makespan:.2f}x",
                ),
            ],
        ),
    )

    # Queue order never changes the science, only the placement in time.
    for fifo_run, lpt_run in zip(fifo_results, lpt_results):
        np.testing.assert_allclose(fifo_run.scores(), lpt_run.scores())
    # Starting the long run first strictly shortens this skewed campaign.
    assert lpt.makespan < fifo.makespan


#: Heterogeneous fleet: workcell 0 runs at paper-calibrated speed, workcell 1
#: runs its OT-2 and arm twice as fast.  One big run among fifteen small ones
#: makes the placement of the big run decide the makespan.
HETERO_SPEEDS = ({}, {"ot2": 2.0, "pf400": 2.0})
HETERO_RUNS = [(64, 2)] + [(4, 4)] * 15


def run_heterogeneous_comparison(make_fleet):
    def skewed_jobs():
        return [
            ExperimentConfig(
                n_samples=n_samples,
                batch_size=batch_size,
                solver="random",
                seed=SEED + index,
                publish=False,
                experiment_id="hetero-bench",
                run_id=f"hetero-bench-run{index}",
                run_index=index,
            )
            for index, (n_samples, batch_size) in enumerate(HETERO_RUNS)
        ]

    def run_fleet(assignment, hint):
        coordinator = make_fleet(2, seed=SEED, module_speeds=list(HETERO_SPEEDS))

        def make_program(config, shard, lane):
            app = ColorPickerApp(
                config,
                workcell=coordinator.engines[shard].workcell,
                ot2=lane[0],
                barty=lane[1],
                staging="ot2",
            )
            return app.program()

        lanes = [engine.workcell.ot2_barty_pairs()[:1] for engine in coordinator.engines]
        results = coordinator.run_jobs(
            skewed_jobs(),
            make_program,
            lanes=lanes,
            assignment=assignment,
            duration_hint=hint,
        )
        return coordinator, results

    # Speed-blind: a one-argument hint predicts from the default calibration,
    # so both shards look alike and the first free (slow) lane takes the big
    # run.  Lookahead: the two-argument predictor prices each run on each
    # lane's own table and re-ranks when a lane frees.
    blind, blind_results = run_fleet(
        "stealing-lpt", lambda config: predict_experiment_duration(config)
    )
    lookahead, lookahead_results = run_fleet("lookahead", predict_experiment_duration)
    return blind, blind_results, lookahead, lookahead_results


@pytest.mark.benchmark(group="coordinator")
def test_lookahead_beats_speed_blind_lpt_on_heterogeneous_fleet(benchmark, report, make_fleet):
    blind, blind_results, lookahead, lookahead_results = benchmark.pedantic(
        run_heterogeneous_comparison, args=(make_fleet,), rounds=1, iterations=1
    )

    drift = ", ".join(
        "-" if shard.predictor_drift is None else f"{shard.predictor_drift:.3f}x"
        for shard in lookahead.status().shards
    )
    report(
        "Skewed 16-run campaign on a 2-workcell fleet with 2x module-speed skew",
        format_table(
            ["assignment", "makespan", "speedup", "big run on"],
            [
                (
                    "stealing-lpt (speed-blind)",
                    f"{blind.makespan / 3600:.2f} h",
                    "1.00x",
                    f"workcell-{blind.assignments[0].shard}",
                ),
                (
                    f"lookahead (drift {drift})",
                    f"{lookahead.makespan / 3600:.2f} h",
                    f"{blind.makespan / lookahead.makespan:.2f}x",
                    f"workcell-{lookahead.assignments[0].shard}",
                ),
            ],
        ),
    )

    # Identical science regardless of placement...
    for blind_run, lookahead_run in zip(blind_results, lookahead_results):
        np.testing.assert_allclose(blind_run.scores(), lookahead_run.scores())
    # ...but lookahead routes the big run to the fast workcell and finishes
    # strictly earlier.
    assert blind.assignments[0].shard == 0
    assert lookahead.assignments[0].shard == 1
    assert lookahead.makespan < blind.makespan
