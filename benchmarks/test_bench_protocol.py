"""Benchmark: the framed wire protocol under chaos still delivers sim science.

Two measurements:

* raw codec throughput -- frames encoded + decoded per second through the
  incremental :class:`~repro.wei.drivers.protocol.FrameDecoder` (the hot
  loop every wire action crosses four times: SUBMIT, ACK, COMPLETE, ACK);
* a chaos-injected wire campaign vs the sim baseline -- identical scores,
  with the retry/resync/CRC recovery counters and the real wall time the
  recovery cost.
"""

import time

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.campaign import run_campaign
from repro.wei.chaos import ChaosSchedule
from repro.wei.drivers.protocol import Frame, FrameDecoder, encode_frame

SEED = 424
CHAOS_SEED = 101
SPEEDUP = 1_000_000.0
N_FRAMES = 20_000


def codec_round_trip():
    frames = [
        Frame(
            kind="SUBMIT",
            seq=index,
            payload={"ticket_id": f"wire:{index}", "module": "ot2", "duration_s": 12.5},
        )
        for index in range(N_FRAMES)
    ]
    start = time.monotonic()
    stream = b"".join(encode_frame(frame) for frame in frames)
    encode_s = time.monotonic() - start
    decoder = FrameDecoder()
    start = time.monotonic()
    decoded = decoder.feed(stream)
    decode_s = time.monotonic() - start
    assert decoded == frames
    assert decoder.crc_errors == 0
    return encode_s, decode_s, len(stream)


def run_wire_vs_sim():
    shared = dict(
        n_runs=2, samples_per_run=4, batch_size=2, solver="evolutionary",
        seed=SEED, n_workcells=2,
    )
    sim = run_campaign(experiment_id="bench-wire", **shared)
    wire = run_campaign(
        experiment_id="bench-wire",
        transport="wire",
        speedup=SPEEDUP,
        chaos=ChaosSchedule(CHAOS_SEED),
        **shared,
    )
    return sim, wire


@pytest.mark.benchmark(group="protocol")
def test_frame_codec_throughput(benchmark, report):
    encode_s, decode_s, n_bytes = benchmark.pedantic(codec_round_trip, rounds=1, iterations=1)
    report(
        f"Frame codec throughput ({N_FRAMES} frames, {n_bytes / 1e6:.1f} MB)",
        format_table(
            ["direction", "frames/s", "MB/s"],
            [
                ("encode", f"{N_FRAMES / encode_s:,.0f}", f"{n_bytes / encode_s / 1e6:.1f}"),
                ("decode", f"{N_FRAMES / decode_s:,.0f}", f"{n_bytes / decode_s / 1e6:.1f}"),
            ],
        ),
    )
    # The codec must never be the bottleneck: a campaign issues tens of
    # frames per second at hardware speed, we demand five orders more.
    assert N_FRAMES / encode_s > 10_000
    assert N_FRAMES / decode_s > 10_000


@pytest.mark.benchmark(group="protocol")
def test_chaotic_wire_campaign_matches_sim_and_reports_recovery(benchmark, report):
    sim, wire = benchmark.pedantic(run_wire_vs_sim, rounds=1, iterations=1)
    stats = wire.transport_stats

    report(
        f"Wire protocol under chaos seed {CHAOS_SEED} (2 workcells, "
        f"{wire.n_runs} runs, {wire.total_samples} samples)",
        format_table(
            ["recovery counter", "value"],
            [
                ("completions delivered", stats["delivered"]),
                ("command retries", stats["retries"]),
                ("reconnect resyncs", stats["resyncs"]),
                ("CRC-rejected frames", stats["crc_errors"]),
                ("wire duplicates dropped", stats["duplicates_dropped"]),
                ("completions retransmitted", stats["completions_retransmitted"]),
                ("real elapsed", f"{stats['wall_elapsed_s']:.2f} s"),
            ],
        ),
    )

    # The soak invariant, as a benchmark-grade assertion: identical science.
    assert [run.best_score for run in wire.runs] == [run.best_score for run in sim.runs]
    for sim_run, wire_run in zip(sim.runs, wire.runs):
        np.testing.assert_allclose(sim_run.scores(), wire_run.scores())
    # Chaos really attacked the wire, and the protocol really recovered:
    # nothing timed out, nothing leaked through the bridge.
    assert stats["retries"] + stats["crc_errors"] + stats["resyncs"] > 0
    assert stats["timed_out"] == 0
    assert stats["rejected_late"] == 0
