"""Benchmark: the Section 2.4 image-processing pipeline.

Measures the accuracy and throughput of the synthetic-camera + fiducial +
Hough-circle + grid-completion pipeline, and ablates the grid-completion step
the paper added to recover wells the circle detector misses.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.color.mixing import SubtractiveMixingModel
from repro.hardware.labware import Plate
from repro.vision.extraction import WellColorExtractor
from repro.vision.render import render_plate_image

N_FRAMES = 6
FILLED_WELLS = 48
SEED = 42


def make_frames():
    chemistry = SubtractiveMixingModel()
    rng = np.random.default_rng(SEED)
    frames = []
    for index in range(N_FRAMES):
        plate = Plate(barcode=f"bench-{index}")
        for name in plate.empty_wells[:FILLED_WELLS]:
            well = plate.well(name)
            volumes = rng.uniform(3.0, 75.0, size=4)
            for dye, volume in zip(chemistry.dyes.names, volumes):
                well.add(dye, float(volume))
        image, truth = render_plate_image(plate, chemistry, rng=rng, return_truth=True)
        frames.append((plate, image, truth))
    return frames


def extract_all(frames, use_grid_completion=True):
    extractor = WellColorExtractor(use_grid_completion=use_grid_completion)
    return [extractor.extract(image) for _, image, _ in frames]


@pytest.mark.benchmark(group="vision")
def test_vision_pipeline_accuracy_and_throughput(benchmark, report):
    frames = make_frames()
    results = benchmark.pedantic(extract_all, args=(frames,), rounds=1, iterations=1)

    color_errors, center_errors, circle_counts = [], [], []
    for (plate, _, truth), result in zip(frames, results):
        for name in plate.used_wells:
            color_errors.append(float(np.linalg.norm(result.well_colors[name] - truth["colors"][name])))
            center_errors.append(
                float(
                    np.hypot(
                        result.well_centers[name][0] - truth["centers"][name][0],
                        result.well_centers[name][1] - truth["centers"][name][1],
                    )
                )
            )
        circle_counts.append(len(result.circles))

    report(
        "Vision pipeline accuracy over synthetic frames",
        format_table(
            ["quantity", "mean", "p95", "max"],
            [
                (
                    "well colour error (RGB units)",
                    f"{np.mean(color_errors):.2f}",
                    f"{np.percentile(color_errors, 95):.2f}",
                    f"{np.max(color_errors):.2f}",
                ),
                (
                    "well centre error (px)",
                    f"{np.mean(center_errors):.2f}",
                    f"{np.percentile(center_errors, 95):.2f}",
                    f"{np.max(center_errors):.2f}",
                ),
                (
                    "circles detected per frame",
                    f"{np.mean(circle_counts):.1f}",
                    "-",
                    f"{np.max(circle_counts)}",
                ),
            ],
        ),
    )

    # The camera noise floor is a few RGB units; the pipeline should sit close to it.
    assert np.mean(color_errors) < 10.0
    assert np.mean(center_errors) < 2.0
    # All frames found the fiducial and produced a grid fit.
    assert all(result.fiducial.found for result in results)
    assert all(result.grid is not None for result in results)


@pytest.mark.benchmark(group="vision")
def test_vision_grid_completion_ablation(benchmark, report):
    frames = make_frames()
    without_completion = benchmark.pedantic(
        extract_all, args=(frames,), kwargs={"use_grid_completion": False}, rounds=1, iterations=1
    )
    with_completion = extract_all(frames, use_grid_completion=True)

    def mean_color_error(results):
        errors = []
        for (plate, _, truth), result in zip(frames, results):
            for name in plate.used_wells:
                errors.append(float(np.linalg.norm(result.well_colors[name] - truth["colors"][name])))
        return float(np.mean(errors))

    error_with = mean_color_error(with_completion)
    error_without = mean_color_error(without_completion)
    report(
        "Grid-completion ablation (paper Section 2.4)",
        format_table(
            ["pipeline", "mean colour error"],
            [
                ("Hough + grid completion (paper)", f"{error_with:.2f}"),
                ("Hough detections snapped to nominal grid only", f"{error_without:.2f}"),
            ],
        ),
    )

    # Grid completion must not hurt, and the full pipeline stays accurate.
    assert error_with <= error_without + 1.0
    assert error_with < 10.0
