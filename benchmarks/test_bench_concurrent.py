"""Benchmark: executed concurrency vs. the resource-timeline planner.

The seed repo could only *plan* the Section 4 multi-OT-2 ablation offline
(mean durations, no faults, no engine).  With the
:class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` the same workload is
now *executed*: sampled durations, real deck state, shared pf400/camera.
This benchmark validates the engine against the planner and measures the
makespan speedup of a concurrent campaign over the sequential engine.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.campaign import run_campaign
from repro.core.protocol import build_mix_protocol
from repro.hardware.labware import Plate
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.engine import WorkflowEngine
from repro.wei.scheduler import plan_parallel_mixes
from repro.wei.workflow import WorkflowSpec

SEED = 99
BATCH_SIZE = 16
N_BATCHES = 6  # 6 x 16 = 96 wells: one full plate per single-OT-2 lane
#: Sampled-vs-mean tolerance: log-normal jitter (cv 0.05) plus the slightly
#: different stage interleaving of the executed chain vs. the planner's.
TOLERANCE = 0.15


def mix_chain_spec(ot2: str) -> WorkflowSpec:
    """The executed equivalent of one planned batch: mix, image, return."""
    deck_location = f"{ot2}.deck"
    spec = WorkflowSpec(name=f"mix_{ot2}")
    spec.add_step(ot2, "run_protocol", protocol="$payload.protocol")
    spec.add_step("pf400", "transfer", source=deck_location, target="camera.stage")
    spec.add_step("camera", "take_picture")
    spec.add_step("pf400", "transfer", source="camera.stage", target=deck_location)
    return spec


def execute_workload(make_workcell, n_ot2: int):
    """Run N_BATCHES mixing batches of BATCH_SIZE wells on ``n_ot2`` lanes."""
    workcell = make_workcell(seed=SEED, n_ot2=n_ot2)
    lanes = [name for name, _ in workcell.ot2_barty_pairs()]
    dye_names = workcell.chemistry.dyes.names
    reference = Plate(barcode="well-names")

    for ot2 in lanes:
        device = workcell.module(ot2).device
        workcell.deck.place(Plate(barcode=f"plate-{ot2}"), device.deck_location)
        for reservoir in device.reservoirs.values():
            reservoir.fill()

    specs, payloads, lane_batch_count = [], [], {ot2: 0 for ot2 in lanes}
    for index in range(N_BATCHES):
        ot2 = lanes[index % n_ot2]
        start = BATCH_SIZE * lane_batch_count[ot2]
        lane_batch_count[ot2] += 1
        wells = reference.empty_wells[start : start + BATCH_SIZE]
        protocol = build_mix_protocol(
            name=f"batch_{index:02d}",
            wells=wells,
            ratios=[[0.25, 0.25, 0.25, 0.25]] * BATCH_SIZE,
            dye_names=dye_names,
            max_component_volume_ul=40.0,
        )
        specs.append(mix_chain_spec(ot2))
        payloads.append({"protocol": protocol})

    engine = ConcurrentWorkflowEngine(workcell)
    results = engine.run_all(specs, payloads)
    assert all(result.success for result in results)
    return engine


def run_benchmark_matrix(make_workcell):
    plans = {n: plan_parallel_mixes([BATCH_SIZE] * N_BATCHES, n_ot2=n) for n in (1, 2)}
    engines = {n: execute_workload(make_workcell, n) for n in (1, 2)}
    return plans, engines


@pytest.mark.benchmark(group="concurrent-engine")
def test_concurrent_engine_matches_planner(benchmark, report, make_workcell):
    plans, engines = benchmark.pedantic(
        run_benchmark_matrix, args=(make_workcell,), rounds=1, iterations=1
    )

    rows = []
    for n in (1, 2):
        plan, engine = plans[n], engines[n]
        rows.append(
            (
                n,
                f"{plan.makespan / 3600:.2f} h",
                f"{engine.makespan / 3600:.2f} h",
                f"{plan.utilisation().get('ot2', 0.0):.2f}",
                f"{engine.utilisation().get('ot2', 0.0):.2f}",
            )
        )
    report(
        "Executed concurrency vs. planner (makespan and ot2 utilisation)",
        format_table(
            ["OT-2s", "planned", "executed", "planned ot2 util", "executed ot2 util"], rows
        ),
    )

    for n in (1, 2):
        plan, engine = plans[n], engines[n]
        # Makespan agreement within the sampled-vs-mean tolerance.
        assert engine.makespan == pytest.approx(plan.makespan, rel=TOLERANCE)
        # Device utilisation agreement for the dominating resource.
        planned = plan.utilisation()
        executed = engine.utilisation()
        for device in ("ot2", "pf400"):
            assert executed[device] == pytest.approx(planned[device], rel=TOLERANCE, abs=0.05)

    # The executed speedup reproduces the planner's headline prediction.
    executed_speedup = engines[1].makespan / engines[2].makespan
    planned_speedup = plans[1].makespan / plans[2].makespan
    assert engines[2].makespan < engines[1].makespan
    assert executed_speedup == pytest.approx(planned_speedup, rel=TOLERANCE)
    assert executed_speedup > 1.5


def run_campaigns():
    shared = dict(
        n_runs=4, samples_per_run=16, batch_size=8, measurement="direct", seed=SEED
    )
    sequential = run_campaign(experiment_id="bench-seq", **shared)
    concurrent = run_campaign(experiment_id="bench-conc", n_ot2=2, **shared)
    return sequential, concurrent


@pytest.mark.benchmark(group="concurrent-engine")
def test_concurrent_campaign_beats_sequential_engine(benchmark, report):
    sequential, concurrent = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)

    report(
        "Campaign makespan: sequential engine vs. concurrent engine (2 OT-2s)",
        format_table(
            ["engine", "runs", "samples", "best score", "makespan"],
            [
                (
                    "sequential",
                    sequential.n_runs,
                    sequential.total_samples,
                    f"{sequential.best_score:.2f}",
                    f"{sequential.makespan_s / 3600:.2f} h",
                ),
                (
                    "concurrent x2",
                    concurrent.n_runs,
                    concurrent.total_samples,
                    f"{concurrent.best_score:.2f}",
                    f"{concurrent.makespan_s / 3600:.2f} h",
                ),
            ],
        ),
    )

    assert concurrent.total_samples == sequential.total_samples
    # Same seeds, same batches -> identical proposals and scores; the solver
    # cannot tell which engine executed it.  Only the clock differs.
    for seq_run, conc_run in zip(sequential.runs, concurrent.runs):
        np.testing.assert_allclose(seq_run.scores(), conc_run.scores())
    # The concurrent engine must finish the same workload strictly faster.
    assert concurrent.makespan_s < sequential.makespan_s
    assert concurrent.makespan_s < 0.75 * sequential.makespan_s
