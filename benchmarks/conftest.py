"""Benchmark-suite configuration.

Ensures the ``src`` layout is importable without installation and provides a
helper for printing the regenerated tables/figures so they appear in the
captured benchmark output (``pytest benchmarks/ --benchmark-only -s`` shows
them inline; without ``-s`` they are kept in the captured stdout).
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def report(request):
    """Print a named block of regenerated output for a benchmark."""

    def _report(title: str, text: str) -> None:
        banner = "=" * 72
        print(f"\n{banner}\n{title}\n{banner}\n{text}\n")

    return _report
