"""Benchmark: the paced transport delivers sim-identical science in real time.

The acceptance claim of the driver-subsystem PR: a campaign run with
``--transport paced --speedup 1000`` produces per-run scores identical to
the sim-clock engine, with every action completion delivered out-of-band
from a driver worker thread.  This benchmark runs both modes, verifies the
science matches sample-for-sample, and reports the transport's real elapsed
time, effective speedup and completion-delivery latency.
"""

import time

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.campaign import run_campaign

SEED = 424
SPEEDUP = 1000.0


def run_both_transports():
    shared = dict(
        n_runs=3, samples_per_run=4, batch_size=2, solver="evolutionary", seed=SEED
    )
    wall_start = time.monotonic()
    sim = run_campaign(experiment_id="bench-sim-transport", **shared)
    sim_wall = time.monotonic() - wall_start
    paced = run_campaign(
        experiment_id="bench-paced-transport",
        transport="paced",
        speedup=SPEEDUP,
        **shared,
    )
    return sim, sim_wall, paced


@pytest.mark.benchmark(group="drivers")
def test_paced_transport_matches_sim_and_reports_latency(benchmark, report):
    sim, sim_wall, paced = benchmark.pedantic(run_both_transports, rounds=1, iterations=1)
    stats = paced.transport_stats

    effective = paced.makespan_s / stats["wall_elapsed_s"]
    report(
        f"Sim-clock vs paced transport at --speedup {SPEEDUP:g} "
        f"({paced.n_runs} runs, {paced.total_samples} samples)",
        format_table(
            ["transport", "sim makespan", "real elapsed", "effective speedup"],
            [
                ("sim", f"{sim.makespan_s / 3600:.2f} h", f"{sim_wall:.2f} s", "-"),
                (
                    "paced",
                    f"{paced.makespan_s / 3600:.2f} h",
                    f"{stats['wall_elapsed_s']:.2f} s",
                    f"{effective:.0f}x",
                ),
            ],
        )
        + "\n\n"
        + format_table(
            ["completion delivery", "value"],
            [
                ("completions delivered", stats["delivered"]),
                ("duplicates rejected", stats["rejected_duplicate"]),
                ("late rejected", stats["rejected_late"]),
                ("timed out", stats["timed_out"]),
                ("mean latency", f"{stats['mean_delivery_latency_s'] * 1000:.2f} ms"),
                ("max latency", f"{stats['max_delivery_latency_s'] * 1000:.2f} ms"),
            ],
        ),
    )

    # Identical science, sample for sample.
    assert [run.best_score for run in paced.runs] == [run.best_score for run in sim.runs]
    for sim_run, paced_run in zip(sim.runs, paced.runs):
        np.testing.assert_allclose(sim_run.scores(), paced_run.scores())
    # Every completion was delivered out-of-band, none lost or duplicated.
    assert stats["delivered"] > 0
    assert stats["timed_out"] == 0
    assert stats["rejected_duplicate"] == 0 and stats["rejected_late"] == 0
    # Pacing is real: the campaign took at least its simulated time / speedup
    # (serialised on one lane), and delivery latency stayed sane.
    assert stats["wall_elapsed_s"] >= 0.8 * paced.makespan_s / SPEEDUP
    assert stats["mean_delivery_latency_s"] < 1.0
