"""Tests for the five simulated workcell devices."""

import numpy as np
import pytest

from repro.color.mixing import SubtractiveMixingModel
from repro.hardware.barty import BartyDevice
from repro.hardware.base import DeviceError
from repro.hardware.camera import CameraDevice
from repro.hardware.deck import LocationError, Workdeck
from repro.hardware.ot2 import Ot2Device, PipettingProtocol, ProtocolStep
from repro.hardware.pf400 import Pf400Device
from repro.hardware.sciclops import SciclopsDevice
from repro.sim.clock import SimClock


@pytest.fixture
def shared_clock():
    return SimClock()


@pytest.fixture
def rig(shared_clock):
    """A small assembled rig: deck + all five devices sharing a clock."""
    deck = Workdeck()
    sciclops = SciclopsDevice(deck, clock=shared_clock, rng=1)
    pf400 = Pf400Device(deck, clock=shared_clock, rng=2)
    ot2 = Ot2Device(deck, clock=shared_clock, rng=3)
    barty = BartyDevice(ot2, clock=shared_clock, rng=4)
    camera = CameraDevice(deck, clock=shared_clock, rng=5)
    return {
        "deck": deck,
        "sciclops": sciclops,
        "pf400": pf400,
        "ot2": ot2,
        "barty": barty,
        "camera": camera,
        "clock": shared_clock,
    }


def simple_protocol(wells, volume=40.0):
    return PipettingProtocol(
        name="test",
        steps=[ProtocolStep(well=w, volumes_ul={"cyan": volume, "black": volume / 2}) for w in wells],
    )


class TestSciclops:
    def test_get_plate_places_at_exchange(self, rig):
        plate = rig["sciclops"].get_plate()
        assert rig["deck"].plate_at("sciclops.exchange") is plate
        assert rig["sciclops"].plates_remaining == 2 * 20 - 1

    def test_occupied_exchange_rejected(self, rig):
        rig["sciclops"].get_plate()
        with pytest.raises(DeviceError):
            rig["sciclops"].get_plate()

    def test_empty_towers_rejected(self, rig):
        deck = Workdeck()
        sciclops = SciclopsDevice(deck, towers=1, plates_per_tower=1, clock=SimClock())
        sciclops.get_plate()
        deck.move("sciclops.exchange", "trash")
        with pytest.raises(DeviceError):
            sciclops.get_plate()

    def test_status_counts_inventory(self, rig):
        record = rig["sciclops"].status()
        assert record.details["plates_remaining"] == 40
        assert record.success

    def test_get_plate_advances_clock(self, rig):
        before = rig["clock"].now()
        rig["sciclops"].get_plate()
        assert rig["clock"].now() > before


class TestPf400:
    def test_transfer_moves_plate(self, rig):
        plate = rig["sciclops"].get_plate()
        rig["pf400"].transfer("sciclops.exchange", "camera.stage")
        assert rig["deck"].plate_at("camera.stage") is plate
        assert rig["pf400"].transfers_completed == 1

    def test_transfer_without_plate_rejected_without_charging_time(self, rig):
        before = rig["clock"].now()
        with pytest.raises(DeviceError):
            rig["pf400"].transfer("camera.stage", "ot2.deck")
        assert rig["clock"].now() == before

    def test_transfer_to_occupied_target_rejected(self, rig):
        rig["sciclops"].get_plate()
        rig["pf400"].transfer("sciclops.exchange", "camera.stage")
        rig["sciclops"].get_plate()
        with pytest.raises(DeviceError):
            rig["pf400"].transfer("sciclops.exchange", "camera.stage")

    def test_unknown_locations_rejected(self, rig):
        with pytest.raises(LocationError):
            rig["pf400"].transfer("nowhere", "camera.stage")

    def test_move_home(self, rig):
        record = rig["pf400"].move_home()
        assert record.action == "move_home"


class TestOt2:
    def _stage_plate(self, rig):
        plate = rig["sciclops"].get_plate()
        rig["pf400"].transfer("sciclops.exchange", "ot2.deck")
        return plate

    def test_run_protocol_fills_wells_and_draws_reservoirs(self, rig):
        plate = self._stage_plate(rig)
        rig["barty"].fill_colors()
        before = rig["ot2"].reservoir_levels()["cyan"]
        rig["ot2"].run_protocol(simple_protocol(["A1", "A2"]))
        assert not plate.well("A1").is_empty
        assert plate.well("A2").contents["cyan"] == pytest.approx(40.0)
        assert rig["ot2"].reservoir_levels()["cyan"] == pytest.approx(before - 80.0)
        assert rig["ot2"].wells_filled == 2

    def test_no_plate_on_deck_rejected(self, rig):
        rig["barty"].fill_colors()
        with pytest.raises(DeviceError):
            rig["ot2"].run_protocol(simple_protocol(["A1"]))

    def test_insufficient_reservoir_rejected(self, rig):
        self._stage_plate(rig)
        with pytest.raises(DeviceError, match="insufficient reservoir"):
            rig["ot2"].run_protocol(simple_protocol(["A1"]))

    def test_unknown_liquid_rejected(self, rig):
        self._stage_plate(rig)
        rig["barty"].fill_colors()
        protocol = PipettingProtocol(name="bad", steps=[ProtocolStep(well="A1", volumes_ul={"ink": 5.0})])
        with pytest.raises(DeviceError, match="unknown liquids"):
            rig["ot2"].run_protocol(protocol)

    def test_refilling_used_well_rejected(self, rig):
        self._stage_plate(rig)
        rig["barty"].fill_colors()
        rig["ot2"].run_protocol(simple_protocol(["A1"]))
        with pytest.raises(DeviceError, match="already contains liquid"):
            rig["ot2"].run_protocol(simple_protocol(["A1"]))

    def test_empty_protocol_rejected(self, rig):
        self._stage_plate(rig)
        with pytest.raises(DeviceError, match="no steps"):
            rig["ot2"].run_protocol(PipettingProtocol(name="empty"))

    def test_tip_exhaustion_and_replacement(self, rig):
        self._stage_plate(rig)
        rig["barty"].fill_colors()
        rig["ot2"].tip_rack.use(95)
        with pytest.raises(DeviceError, match="tips"):
            rig["ot2"].run_protocol(simple_protocol(["A1", "A2"]))
        rig["ot2"].replace_tips()
        rig["ot2"].run_protocol(simple_protocol(["A1", "A2"]))

    def test_duration_scales_with_batch_size(self, rig):
        self._stage_plate(rig)
        rig["barty"].fill_colors()
        t0 = rig["clock"].now()
        rig["ot2"].run_protocol(simple_protocol(["A1"]))
        single = rig["clock"].now() - t0
        t1 = rig["clock"].now()
        rig["ot2"].run_protocol(simple_protocol(["B1", "B2", "B3", "B4"]))
        batch = rig["clock"].now() - t1
        assert batch > single * 2

    def test_can_run_checks_inventory(self, rig):
        assert not rig["ot2"].can_run(simple_protocol(["A1"]))
        rig["barty"].fill_colors()
        assert rig["ot2"].can_run(simple_protocol(["A1"]))

    def test_protocol_serialisation(self):
        protocol = simple_protocol(["A1"])
        data = protocol.to_dict()
        assert data["steps"][0]["well"] == "A1"
        assert protocol.total_volume_by_liquid()["cyan"] == pytest.approx(40.0)
        assert protocol.n_wells == 1


class TestBarty:
    def test_fill_colors_tops_up_all_reservoirs(self, rig):
        rig["barty"].fill_colors()
        assert all(level == pytest.approx(20000.0) for level in rig["ot2"].reservoir_levels().values())

    def test_drain_colors(self, rig):
        rig["barty"].fill_colors()
        record = rig["barty"].drain_colors()
        assert all(level == 0.0 for level in rig["ot2"].reservoir_levels().values())
        assert record.details["volume_drained_ul"] == pytest.approx(80000.0)

    def test_refill_only_low_reservoirs(self, rig):
        rig["barty"].fill_colors()
        rig["ot2"].reservoirs["cyan"].draw(19000.0)   # 5% left -> low
        rig["ot2"].reservoirs["magenta"].draw(5000.0)  # 75% left -> fine
        rig["barty"].refill_colors(low_threshold=0.15)
        assert rig["ot2"].reservoir_levels()["cyan"] == pytest.approx(20000.0)
        assert rig["ot2"].reservoir_levels()["magenta"] == pytest.approx(15000.0)

    def test_selected_colors_only(self, rig):
        rig["barty"].fill_colors(colors=["cyan"])
        levels = rig["ot2"].reservoir_levels()
        assert levels["cyan"] == pytest.approx(20000.0)
        assert levels["magenta"] == 0.0

    def test_unknown_color_rejected(self, rig):
        with pytest.raises(DeviceError):
            rig["barty"].fill_colors(colors=["chartreuse"])

    def test_bulk_supply_depletes(self, rig):
        start = sum(rig["barty"].bulk_levels().values())
        rig["barty"].fill_colors()
        assert sum(rig["barty"].bulk_levels().values()) == pytest.approx(start - 80000.0)
        assert rig["barty"].liquid_dispensed_ul == pytest.approx(80000.0)

    def test_exhausted_bulk_supply_raises(self, rig):
        barty = BartyDevice(rig["ot2"], bulk_capacity_ul=1000.0, clock=rig["clock"])
        with pytest.raises(DeviceError, match="exhausted"):
            barty.fill_colors()


class TestCamera:
    def test_take_picture_returns_image_of_staged_plate(self, rig):
        plate = rig["sciclops"].get_plate()
        rig["pf400"].transfer("sciclops.exchange", "camera.stage")
        image = rig["camera"].take_picture()
        assert image.plate_barcode == plate.barcode
        assert image.pixels.shape == (480, 640, 3)
        assert image.truth is not None
        assert rig["camera"].frames_captured == 1

    def test_no_plate_rejected(self, rig):
        with pytest.raises(DeviceError):
            rig["camera"].take_picture()

    def test_camera_commands_are_not_robotic(self, rig):
        rig["sciclops"].get_plate()
        rig["pf400"].transfer("sciclops.exchange", "camera.stage")
        rig["camera"].take_picture()
        assert all(not record.robotic for record in rig["camera"].action_log)

    def test_truth_can_be_disabled(self):
        deck = Workdeck()
        clock = SimClock()
        sciclops = SciclopsDevice(deck, clock=clock)
        pf400 = Pf400Device(deck, clock=clock)
        camera = CameraDevice(deck, clock=clock, keep_truth=False, chemistry=SubtractiveMixingModel())
        sciclops.get_plate()
        pf400.transfer("sciclops.exchange", "camera.stage")
        assert camera.take_picture().truth is None

    def test_repeated_frames_differ_by_noise(self, rig):
        rig["sciclops"].get_plate()
        rig["pf400"].transfer("sciclops.exchange", "camera.stage")
        image_a = rig["camera"].take_picture().pixels
        image_b = rig["camera"].take_picture().pixels
        assert not np.allclose(image_a, image_b)
