"""Tests for the simulated-device base class."""

import pytest

from repro.hardware.base import SimulatedDevice
from repro.sim.clock import SimClock
from repro.sim.durations import DurationModel, DurationTable
from repro.sim.faults import CommandFailure, FaultInjector, FaultPolicy


class ToyDevice(SimulatedDevice):
    module_type = "toy"

    def poke(self, units: float = 1.0):
        return self._execute("poke", units=units)

    def compute(self):
        return self._execute("analyze", robotic=False)


@pytest.fixture
def toy_durations():
    table = DurationTable(default=DurationModel(base_s=10.0, jitter_cv=0.0))
    table.set("toy", "poke", DurationModel(base_s=5.0, per_unit_s=2.0, jitter_cv=0.0))
    return table


class TestExecution:
    def test_clock_advances_by_sampled_duration(self, toy_durations):
        clock = SimClock()
        device = ToyDevice(clock=clock, durations=toy_durations)
        record = device.poke()
        assert clock.now() == pytest.approx(7.0)
        assert record.duration == pytest.approx(7.0)
        assert record.success and record.robotic

    def test_units_scale_duration(self, toy_durations):
        device = ToyDevice(clock=SimClock(), durations=toy_durations)
        record = device.poke(units=10)
        assert record.duration == pytest.approx(25.0)

    def test_non_robotic_action_flagged(self, toy_durations):
        device = ToyDevice(clock=SimClock(), durations=toy_durations)
        record = device.compute()
        assert not record.robotic

    def test_action_log_accumulates(self, toy_durations):
        device = ToyDevice(clock=SimClock(), durations=toy_durations)
        device.poke()
        device.poke()
        assert device.commands_executed == 2
        assert device.busy_time == pytest.approx(14.0)
        device.reset_log()
        assert device.commands_executed == 0

    def test_record_to_dict(self, toy_durations):
        device = ToyDevice(clock=SimClock(), durations=toy_durations)
        data = device.poke().to_dict()
        assert data["module"] == "toy"
        assert data["action"] == "poke"
        assert data["duration"] == pytest.approx(7.0)


class TestFaults:
    def test_injected_failure_raises_and_logs(self, toy_durations):
        device = ToyDevice(
            clock=SimClock(),
            durations=toy_durations,
            faults=FaultInjector(FaultPolicy.uniform(1.0)),
        )
        with pytest.raises(CommandFailure):
            device.poke()
        assert device.commands_executed == 0
        assert len(device.action_log) == 1
        assert not device.action_log[0].success

    def test_failed_command_still_consumes_time(self, toy_durations):
        clock = SimClock()
        device = ToyDevice(
            clock=clock,
            durations=toy_durations,
            faults=FaultInjector(FaultPolicy.uniform(1.0)),
        )
        with pytest.raises(CommandFailure):
            device.poke()
        assert clock.now() > 0.0


class TestDescribe:
    def test_describe_reports_type(self):
        device = ToyDevice(name="toy-1")
        description = device.describe()
        assert description == {"name": "toy-1", "type": "toy", "robotic": True}

    def test_default_name_is_module_type(self):
        assert ToyDevice().name == "toy"
