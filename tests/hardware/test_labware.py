"""Tests for labware state containers."""

import numpy as np
import pytest

from repro.hardware.labware import (
    LabwareError,
    Plate,
    PlateStack,
    Reservoir,
    TipRack,
    Well,
    parse_well_name,
    well_name,
    well_names,
)


class TestWellNames:
    def test_first_and_last(self):
        assert well_name(0, 0) == "A1"
        assert well_name(7, 11) == "H12"

    def test_round_trip(self):
        for row in range(8):
            for col in range(12):
                assert parse_well_name(well_name(row, col)) == (row, col)

    def test_all_names_unique(self):
        names = well_names(8, 12)
        assert len(names) == 96
        assert len(set(names)) == 96

    def test_row_major_order(self):
        names = well_names(8, 12)
        assert names[:3] == ["A1", "A2", "A3"]
        assert names[12] == "B1"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            well_name(20, 0)
        with pytest.raises(ValueError):
            well_name(0, -1)
        with pytest.raises(ValueError):
            parse_well_name("11")
        with pytest.raises(ValueError):
            parse_well_name("Z")


class TestWell:
    def test_starts_empty(self):
        well = Well(name="A1")
        assert well.is_empty and well.volume == 0.0

    def test_add_accumulates(self):
        well = Well(name="A1")
        well.add("cyan", 10.0)
        well.add("cyan", 5.0)
        well.add("black", 2.0)
        assert well.volume == pytest.approx(17.0)
        assert well.contents["cyan"] == pytest.approx(15.0)

    def test_overfilling_rejected(self):
        well = Well(name="A1", capacity_ul=100.0)
        well.add("cyan", 90.0)
        with pytest.raises(LabwareError):
            well.add("magenta", 20.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            Well(name="A1").add("cyan", -1.0)

    def test_dye_volumes_vector(self):
        well = Well(name="A1")
        well.add("magenta", 7.0)
        volumes = well.dye_volumes(("cyan", "magenta", "yellow", "black"))
        np.testing.assert_allclose(volumes, [0.0, 7.0, 0.0, 0.0])

    def test_empty_clears_contents(self):
        well = Well(name="A1")
        well.add("cyan", 10.0)
        well.empty()
        assert well.is_empty


class TestPlate:
    def test_default_96_wells(self, plate):
        assert plate.n_wells == 96
        assert plate.remaining_capacity == 96
        assert not plate.is_full

    def test_next_empty_wells_row_major(self, plate):
        assert plate.next_empty_wells(3) == ["A1", "A2", "A3"]
        plate.well("A1").add("cyan", 1.0)
        assert plate.next_empty_wells(2) == ["A2", "A3"]

    def test_next_empty_wells_raises_when_exhausted(self, plate):
        for name in plate.empty_wells:
            plate.well(name).add("cyan", 1.0)
        assert plate.is_full
        with pytest.raises(LabwareError):
            plate.next_empty_wells(1)

    def test_used_and_empty_partition(self, plate):
        plate.well("C5").add("yellow", 2.0)
        assert "C5" in plate.used_wells
        assert "C5" not in plate.empty_wells
        assert len(plate.used_wells) + len(plate.empty_wells) == 96

    def test_unknown_well_name(self, plate):
        with pytest.raises(KeyError):
            plate.well("Z99")

    def test_grid_positions_cover_plate(self, plate):
        positions = list(plate.well_grid_positions())
        assert len(positions) == 96
        assert positions[0] == ("A1", 0, 0)
        assert positions[-1] == ("H12", 7, 11)

    def test_custom_dimensions(self):
        plate = Plate(barcode="mini", rows=2, cols=3)
        assert plate.n_wells == 6
        assert plate.empty_wells == ["A1", "A2", "A3", "B1", "B2", "B3"]


class TestReservoir:
    def test_draw_and_fill(self):
        reservoir = Reservoir(liquid="cyan", capacity_ul=1000.0, volume_ul=500.0)
        reservoir.draw(200.0)
        assert reservoir.volume_ul == pytest.approx(300.0)
        added = reservoir.fill()
        assert added == pytest.approx(700.0)
        assert reservoir.fill_fraction == pytest.approx(1.0)

    def test_draw_more_than_available_rejected(self):
        reservoir = Reservoir(liquid="cyan", capacity_ul=100.0, volume_ul=10.0)
        with pytest.raises(LabwareError):
            reservoir.draw(20.0)

    def test_overfill_rejected(self):
        reservoir = Reservoir(liquid="cyan", capacity_ul=100.0, volume_ul=90.0)
        with pytest.raises(LabwareError):
            reservoir.fill(20.0)

    def test_drain(self):
        reservoir = Reservoir(liquid="cyan", capacity_ul=100.0, volume_ul=60.0)
        assert reservoir.drain() == pytest.approx(60.0)
        assert reservoir.volume_ul == 0.0

    def test_initial_volume_cannot_exceed_capacity(self):
        with pytest.raises(LabwareError):
            Reservoir(liquid="cyan", capacity_ul=10.0, volume_ul=20.0)


class TestTipRack:
    def test_use_and_refill(self):
        rack = TipRack(capacity=96)
        rack.use(10)
        assert rack.remaining == 86
        rack.refill()
        assert rack.remaining == 96

    def test_exhaustion_rejected(self):
        rack = TipRack(capacity=5)
        rack.use(5)
        with pytest.raises(LabwareError):
            rack.use(1)

    def test_invalid_initial_state(self):
        with pytest.raises(LabwareError):
            TipRack(capacity=5, used=6)


class TestPlateStack:
    def test_pop_decrements_and_gives_unique_barcodes(self):
        stack = PlateStack(capacity=3)
        plates = [stack.pop(), stack.pop()]
        assert stack.remaining == 1
        assert plates[0].barcode != plates[1].barcode

    def test_empty_stack_rejected(self):
        stack = PlateStack(capacity=1)
        stack.pop()
        assert stack.is_empty
        with pytest.raises(LabwareError):
            stack.pop()

    def test_restock_caps_at_capacity(self):
        stack = PlateStack(capacity=5)
        stack.pop()
        stack.restock(10)
        assert stack.remaining == 5
