"""Tests for the workcell deck (plate-location registry)."""

import pytest

from repro.hardware.deck import DEFAULT_LOCATIONS, LocationError
from repro.hardware.labware import Plate


@pytest.fixture
def plate_a():
    return Plate(barcode="plate-A")


@pytest.fixture
def plate_b():
    return Plate(barcode="plate-B")


class TestPlacement:
    def test_default_locations_exist(self, deck):
        for name in DEFAULT_LOCATIONS:
            assert deck.has_location(name)

    def test_place_and_remove(self, deck, plate_a):
        deck.place(plate_a, "camera.stage")
        assert deck.is_occupied("camera.stage")
        assert deck.plate_at("camera.stage") is plate_a
        removed = deck.remove("camera.stage")
        assert removed is plate_a
        assert not deck.is_occupied("camera.stage")

    def test_cannot_place_on_occupied_location(self, deck, plate_a, plate_b):
        deck.place(plate_a, "ot2.deck")
        with pytest.raises(LocationError):
            deck.place(plate_b, "ot2.deck")

    def test_unknown_location_rejected(self, deck, plate_a):
        with pytest.raises(LocationError):
            deck.place(plate_a, "nonexistent")
        with pytest.raises(LocationError):
            deck.plate_at("nonexistent")

    def test_remove_from_empty_location_rejected(self, deck):
        with pytest.raises(LocationError):
            deck.remove("camera.stage")

    def test_add_location(self, deck, plate_a):
        deck.add_location("ot2_2.deck")
        deck.place(plate_a, "ot2_2.deck")
        assert deck.plate_at("ot2_2.deck") is plate_a
        with pytest.raises(LocationError):
            deck.add_location("ot2_2.deck")


class TestMove:
    def test_move_between_locations(self, deck, plate_a):
        deck.place(plate_a, "sciclops.exchange")
        deck.move("sciclops.exchange", "camera.stage")
        assert deck.plate_at("camera.stage") is plate_a
        assert not deck.is_occupied("sciclops.exchange")

    def test_failed_move_restores_source(self, deck, plate_a, plate_b):
        deck.place(plate_a, "sciclops.exchange")
        deck.place(plate_b, "camera.stage")
        with pytest.raises(LocationError):
            deck.move("sciclops.exchange", "camera.stage")
        assert deck.plate_at("sciclops.exchange") is plate_a

    def test_find_plate(self, deck, plate_a):
        deck.place(plate_a, "ot2.deck")
        assert deck.find_plate("plate-A") == "ot2.deck"
        assert deck.find_plate("unknown") is None


class TestTrash:
    def test_trash_accepts_multiple_plates(self, deck, plate_a, plate_b):
        deck.place(plate_a, "trash")
        deck.place(plate_b, "trash")
        assert [p.barcode for p in deck.trashed_plates] == ["plate-A", "plate-B"]

    def test_trash_cannot_be_emptied(self, deck, plate_a):
        deck.place(plate_a, "trash")
        with pytest.raises(LocationError):
            deck.remove("trash")
