"""Shared fixtures for the test suite.

Workcell / engine / fleet *factory* fixtures (``make_workcell``,
``make_engine``, ``make_fleet``) live in the repository-root ``conftest.py``
so the benchmark suite shares them; this file holds the plain object
fixtures the unit tests use.
"""

import numpy as np
import pytest

from repro.color.mixing import DyeSet, SubtractiveMixingModel
from repro.hardware.deck import Workdeck
from repro.hardware.labware import Plate
from repro.sim.clock import SimClock
from repro.sim.durations import paper_calibrated_durations


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def chemistry():
    """The default CMYK subtractive mixing model."""
    return SubtractiveMixingModel()


@pytest.fixture
def dye_set():
    """The default CMYK dye set."""
    return DyeSet.cmyk()


@pytest.fixture
def plate():
    """A fresh 96-well plate."""
    return Plate(barcode="test-plate-0001")


@pytest.fixture
def filled_plate(chemistry, rng):
    """A plate with 24 wells containing random dye mixes."""
    plate = Plate(barcode="test-plate-filled")
    for name in plate.empty_wells[:24]:
        well = plate.well(name)
        volumes = rng.uniform(5.0, 70.0, size=4)
        for dye, volume in zip(chemistry.dyes.names, volumes):
            well.add(dye, float(volume))
    return plate


@pytest.fixture
def deck():
    """A default workcell deck."""
    return Workdeck()


@pytest.fixture
def clock():
    """A simulated clock starting at zero."""
    return SimClock()


@pytest.fixture
def durations():
    """The paper-calibrated duration table."""
    return paper_calibrated_durations()


@pytest.fixture
def workcell(make_workcell):
    """A fully assembled, deterministic colour-picker workcell (seed 42)."""
    return make_workcell()
