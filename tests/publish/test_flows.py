"""Tests for the publication flow, run against both portal backends.

Every test takes the parametrized ``portal`` fixture (``conftest.py``), so
the flow's observable behaviour -- receipts, versioned re-publication, the
duplicate guard -- is enforced identically on the in-memory and the
durable store.
"""

import numpy as np

from repro.publish.flows import PublicationFlow
from repro.publish.records import RunRecord, SampleRecord


def valid_record(run_id="run-1"):
    return RunRecord(
        experiment_id="exp",
        run_id=run_id,
        run_index=0,
        target_rgb=[120, 120, 120],
        samples=[
            SampleRecord(
                sample_index=0,
                well="A1",
                plate_barcode="p",
                volumes_ul={"cyan": 4.0},
                measured_rgb=[110, 112, 114],
                score=15.0,
            )
        ],
    )


class TestPublish:
    def test_successful_flow_ingests_record(self, portal):
        flow = PublicationFlow(portal)
        receipt = flow.publish(valid_record())
        assert receipt.success
        assert [step.name for step in receipt.steps] == ["validate", "transfer_image", "ingest"]
        assert portal.n_runs == 1
        assert flow.flows_run == 1

    def test_image_is_stored_and_referenced(self, portal):
        flow = PublicationFlow(portal)
        record = valid_record()
        image = np.zeros((4, 4, 3))
        receipt = flow.publish(record, image=image)
        assert receipt.success
        assert record.image_reference is not None
        assert record.image_reference in flow.image_store
        assert portal.get_run(record.run_id).image_reference == record.image_reference

    def test_invalid_record_fails_validation_without_ingesting(self, portal):
        flow = PublicationFlow(portal)
        bad = valid_record()
        bad.target_rgb = [1.0, 2.0]
        receipt = flow.publish(bad)
        assert not receipt.success
        assert receipt.steps[0].name == "validate"
        assert not receipt.steps[0].success
        assert portal.n_runs == 0

    def test_negative_score_rejected(self, portal):
        flow = PublicationFlow(portal)
        bad = valid_record()
        bad.samples[0].score = -1.0
        assert not flow.publish(bad).success

    def test_flow_ids_are_unique(self, portal):
        flow = PublicationFlow(portal)
        first = flow.publish(valid_record("a"))
        second = flow.publish(valid_record("b"))
        assert first.flow_id != second.flow_id

    def test_receipt_serialisable(self, portal):
        import json

        flow = PublicationFlow(portal)
        json.dumps(flow.publish(valid_record()).to_dict())


class TestDuplicateHandling:
    def test_republication_through_same_flow_is_versioned_overwrite(self, portal):
        flow = PublicationFlow(portal)
        assert flow.publish(valid_record()).success
        receipt = flow.publish(valid_record())
        assert receipt.success
        assert receipt.steps[-1].detail.endswith("v2")
        assert portal.version("run-1") == 2

    def test_collision_with_foreign_record_fails_without_clobbering(self, portal):
        foreign = valid_record()
        foreign.solver = "oracle"
        portal.ingest(foreign)
        flow = PublicationFlow(portal)
        mine = valid_record()
        mine.solver = "evolutionary"
        receipt = flow.publish(mine)
        # The duplicate guard holds for run_ids this flow never published:
        # a failed receipt, not an exception, and the stored record intact.
        assert not receipt.success
        assert receipt.steps[-1].name == "ingest"
        assert "already holds" in receipt.steps[-1].detail
        assert portal.get_run("run-1").solver == "oracle"
        assert portal.version("run-1") == 1
