"""Tests for run-record schemas."""

import json

import numpy as np

from repro.publish.records import ExperimentRecord, RunRecord, SampleRecord


def make_sample(index=0, score=25.0, well="A1"):
    return SampleRecord(
        sample_index=index,
        well=well,
        plate_barcode="plate-1",
        volumes_ul={"cyan": 10.0, "black": 5.0},
        measured_rgb=np.array([118.0, 121.0, 119.0]),
        score=score,
    )


class TestSampleRecord:
    def test_numpy_values_are_converted(self):
        sample = make_sample()
        assert isinstance(sample.measured_rgb, list)
        assert all(isinstance(v, float) for v in sample.measured_rgb)
        json.dumps(sample.to_dict())

    def test_volumes_coerced_to_float(self):
        sample = make_sample()
        assert isinstance(sample.volumes_ul["cyan"], float)


class TestRunRecord:
    def test_best_score_and_sample(self):
        record = RunRecord(
            experiment_id="exp",
            run_id="run-1",
            run_index=0,
            target_rgb=[120, 120, 120],
            samples=[make_sample(0, 30.0), make_sample(1, 12.0, "A2"), make_sample(2, 18.0, "A3")],
        )
        assert record.n_samples == 3
        assert record.best_score == 12.0
        assert record.best_sample.well == "A2"

    def test_empty_run_best_score_is_inf(self):
        record = RunRecord(experiment_id="exp", run_id="run", run_index=0, target_rgb=[0, 0, 0])
        assert record.best_score == float("inf")
        assert record.best_sample is None

    def test_dict_round_trip(self):
        record = RunRecord(
            experiment_id="exp",
            run_id="run-1",
            run_index=3,
            target_rgb=[120, 120, 120],
            solver="evolutionary",
            samples=[make_sample()],
            timings={"elapsed_s": 100.0},
            metadata={"batch_size": 4},
        )
        data = json.loads(json.dumps(record.to_dict()))
        rebuilt = RunRecord.from_dict(data)
        assert rebuilt.run_id == record.run_id
        assert rebuilt.run_index == 3
        assert rebuilt.n_samples == 1
        assert rebuilt.samples[0].well == "A1"
        assert rebuilt.metadata == {"batch_size": 4}


class TestExperimentRecord:
    def test_aggregates_runs(self):
        runs = [
            RunRecord(
                experiment_id="exp",
                run_id=f"run-{i}",
                run_index=i,
                target_rgb=[1, 2, 3],
                samples=[make_sample(j, 10.0 + i + j) for j in range(15)],
            )
            for i in range(12)
        ]
        experiment = ExperimentRecord(experiment_id="exp", runs=runs)
        assert experiment.n_runs == 12
        assert experiment.n_samples == 180
        assert experiment.best_score == 10.0
        json.dumps(experiment.to_dict())
