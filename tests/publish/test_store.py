"""Durable-store-specific tests: reopen, segments, compaction, snapshots.

The shared portal contract is enforced on this backend by the parametrized
suites in ``test_portal.py``/``test_flows.py`` and the parity property
suite; this file pins what only the durable store has -- on-disk layout,
reopen semantics, maintenance operations, fsync accounting.
"""

import json

import pytest

from repro.publish.portal import DuplicateRunError
from repro.publish.store import FSYNC_POLICIES, DurableDataPortal
from tests.publish.test_portal import make_record


def reopen(store):
    """Close ``store`` and open a fresh portal on the same directory."""
    store.close()
    return DurableDataPortal(store.directory, segment_max_bytes=store.segment_max_bytes)


class TestReopen:
    def test_reopen_preserves_records_and_insertion_order(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=2048)
        for experiment in ("exp-b", "exp-a"):
            for index in range(3):
                store.ingest(make_record(experiment, index))
        reopened = reopen(store)
        assert reopened.recovery.clean
        assert reopened.recovery.records_replayed == 6
        assert reopened.n_runs == 6
        # Insertion order of experiments survives, like the dict backend.
        assert reopened.experiment_ids() == ["exp-b", "exp-a"]
        assert [r.run_id for r in reopened.search()] == [r.run_id for r in store.search()]
        reopened.close()

    def test_reopen_preserves_versions_and_ingest_count(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record(best=30.0))
        store.ingest(make_record(best=20.0), overwrite=True)
        store.ingest(make_record(best=10.0), overwrite=True)
        assert store.ingest_count == 3
        reopened = reopen(store)
        assert reopened.version("exp-run0") == 3
        assert reopened.ingest_count == 3
        assert reopened.get_run("exp-run0").best_score == 10.0
        # The duplicate guard still counts from the persisted version.
        with pytest.raises(DuplicateRunError, match="version 3"):
            reopened.ingest(make_record())
        reopened.close()

    def test_reopen_continues_duplicate_protection_and_overwrites(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record())
        reopened = reopen(store)
        reopened.ingest(make_record(best=1.0), overwrite=True)
        assert reopened.version("exp-run0") == 2
        reopened.close()

    def test_cross_experiment_overwrite_survives_reopen(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        moved = make_record("exp-a")
        store.ingest(moved)
        replacement = make_record("exp-b")
        replacement.run_id = moved.run_id
        store.ingest(replacement, overwrite=True)
        reopened = reopen(store)
        assert reopened.experiment_ids() == ["exp-b"]
        assert reopened.get_run(moved.run_id).experiment_id == "exp-b"
        reopened.close()


class TestSegments:
    def test_ingest_rolls_segments_at_size_cap(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        for index in range(12):
            store.ingest(make_record("exp", index))
        segments = sorted(portal_store_dir.glob("segment-*.jsonl"))
        assert len(segments) > 1
        assert all(path.stat().st_size <= 2048 for path in segments)
        store.close()
        # Every line is valid JSON with the envelope keys.
        for path in segments:
            for line in path.read_text().splitlines():
                envelope = json.loads(line)
                assert set(envelope) == {"crc", "v", "version", "record"}

    def test_appends_after_reopen_extend_intact_tail_segment(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1 << 20)
        store.ingest(make_record("exp", 0))
        reopened = reopen(store)
        reopened.ingest(make_record("exp", 1))
        reopened.close()
        assert len(list(portal_store_dir.glob("segment-*.jsonl"))) == 1

    def test_oversized_record_gets_its_own_segment(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=64)
        store.ingest(make_record("exp", 0))  # larger than one segment
        store.ingest(make_record("exp", 1))
        assert store.n_runs == 2
        reopened = reopen(store)
        assert reopened.n_runs == 2
        reopened.close()


class TestCompactAndSnapshot:
    def test_compact_drops_superseded_versions_but_keeps_counters(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        for index in range(6):
            store.ingest(make_record("exp", index))
        for index in range(6):
            store.ingest(make_record("exp", index, best=1.0), overwrite=True)
        before = {r.run_id: r.to_dict() for r in store.search()}
        manifest = store.compact()
        assert manifest["records"] == 6
        assert {r.run_id: r.to_dict() for r in store.search()} == before
        assert store.version("exp-run0") == 2
        assert store.ingest_count == 12
        # One live envelope per run on disk now.
        lines = sum(
            len(path.read_text().splitlines())
            for path in portal_store_dir.glob("segment-*.jsonl")
        )
        assert lines == 6
        reopened = reopen(store)
        assert reopened.version("exp-run0") == 2
        assert {r.run_id: r.to_dict() for r in reopened.search()} == before
        reopened.close()

    def test_compact_is_usable_immediately_and_accepts_ingest(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record("exp", 0))
        store.compact()
        store.ingest(make_record("exp", 1))
        assert store.n_runs == 2
        store.close()

    def test_leftover_compact_tmp_is_discarded_on_open(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record())
        store.close()
        # Simulate a crash mid-compaction: a stale working directory.
        working = portal_store_dir / ".compact-tmp"
        working.mkdir()
        (working / "segment-000001.jsonl").write_text("garbage\n")
        reopened = DurableDataPortal(portal_store_dir)
        assert reopened.recovery.clean
        assert reopened.n_runs == 1
        assert not working.exists()
        reopened.close()

    def test_snapshot_copies_live_state_without_touching_store(self, portal_store_dir, tmp_path):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record("exp", 0))
        store.ingest(make_record("exp", 0, best=2.0), overwrite=True)
        store.ingest(make_record("exp", 1))
        segments_before = {
            path.name: path.stat().st_size
            for path in portal_store_dir.glob("segment-*.jsonl")
        }
        manifest = store.snapshot(tmp_path / "snap")
        assert manifest["records"] == 2
        assert {
            path.name: path.stat().st_size
            for path in portal_store_dir.glob("segment-*.jsonl")
        } == segments_before
        snapshot = DurableDataPortal(tmp_path / "snap")
        assert snapshot.recovery.clean
        assert snapshot.version("exp-run0") == 2
        assert [r.to_dict() for r in snapshot.search()] == [r.to_dict() for r in store.search()]
        snapshot.close()
        store.close()

    def test_snapshot_refuses_nonempty_target(self, portal_store_dir, tmp_path):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record())
        target = tmp_path / "snap"
        store.snapshot(target)
        with pytest.raises(ValueError, match="already contains"):
            store.snapshot(target)
        store.close()


class TestLifecycleAndStats:
    def test_invalid_construction_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_policy"):
            DurableDataPortal(tmp_path / "s", fsync_policy="sometimes")
        with pytest.raises(ValueError, match="segment_max_bytes"):
            DurableDataPortal(tmp_path / "s", segment_max_bytes=0)

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_fsync_policies_accounting(self, tmp_path, policy):
        store = DurableDataPortal(tmp_path / policy, fsync_policy=policy)
        for index in range(3):
            store.ingest(make_record("exp", index))
        store.close()
        if policy == "always":
            assert store.fsyncs >= 3
        elif policy == "segment":
            assert store.fsyncs == 1  # the close() seal
        else:
            assert store.fsyncs == 0

    def test_sync_is_an_explicit_fsync_point(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record())
        before = store.fsyncs
        store.sync()
        assert store.fsyncs == before + 1
        store.close()

    def test_closed_store_rejects_ingest_and_close_is_idempotent(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record())
        store.close()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.ingest(make_record("other"))

    def test_context_manager_closes(self, portal_store_dir):
        with DurableDataPortal(portal_store_dir) as store:
            store.ingest(make_record())
        with pytest.raises(RuntimeError, match="closed"):
            store.ingest(make_record("other"))

    def test_stats_shape(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record("exp", 0))
        store.ingest(make_record("exp", 0, best=1.0), overwrite=True)
        store.ingest(make_record("exp", 1))
        stats = store.stats()
        assert stats["backend"] == "durable"
        assert stats["n_runs"] == 2
        assert stats["n_experiments"] == 1
        assert stats["ingest_count"] == 3
        assert stats["overwritten_runs"] == 1
        assert stats["segments"] == 1
        assert stats["total_bytes"] > stats["live_bytes"] > 0
        # Default "segment" policy: creating the first segment also made
        # its directory entry durable.
        assert stats["dir_fsyncs"] >= 1
        assert stats["recovery"]["clean"] is True
        json.dumps(stats)
        store.close()
