"""Tests for the data portal contract, run against both backends.

Tests taking the ``portal`` fixture (see ``conftest.py``) run once per
backend -- in-memory and durable -- so the legacy contract pinned here
also governs the on-disk store.  Directory persistence and ``load()`` are
in-memory-backend features and keep constructing :class:`DataPortal`
directly; the durable store's own persistence is covered in
``test_store.py`` / ``test_store_recovery.py``.
"""

import pytest

from repro.publish.portal import DataPortal, DuplicateRunError, PortalQueryError
from repro.publish.records import RunRecord, SampleRecord


def make_record(experiment="exp", run_index=0, solver="evolutionary", best=20.0):
    return RunRecord(
        experiment_id=experiment,
        run_id=f"{experiment}-run{run_index}",
        run_index=run_index,
        target_rgb=[120, 120, 120],
        solver=solver,
        samples=[
            SampleRecord(
                sample_index=i,
                well=f"A{i + 1}",
                plate_barcode="p",
                volumes_ul={"cyan": 5.0},
                measured_rgb=[100 + i, 100, 100],
                score=best + i,
            )
            for i in range(3)
        ],
        metadata={"batch_size": 1},
    )


class TestIngestAndQuery:
    def test_ingest_and_get(self, portal):
        record = make_record()
        portal.ingest(record)
        assert portal.n_runs == 1
        assert portal.n_experiments == 1
        assert portal.get_run(record.run_id).run_id == record.run_id

    def test_duplicate_run_id_raises(self, portal):
        portal.ingest(make_record(best=30.0))
        with pytest.raises(DuplicateRunError, match="exp-run0"):
            portal.ingest(make_record(best=10.0))
        # The stored record is untouched by the rejected ingest.
        assert portal.n_runs == 1
        assert portal.get_run("exp-run0").best_score == 30.0
        assert portal.version("exp-run0") == 1

    def test_overwrite_is_an_explicit_versioned_replace(self, portal):
        portal.ingest(make_record(best=30.0))
        portal.ingest(make_record(best=10.0), overwrite=True)
        assert portal.n_runs == 1
        assert portal.get_run("exp-run0").best_score == 10.0
        assert portal.version("exp-run0") == 2

    def test_version_of_unknown_run_raises(self, portal):
        with pytest.raises(PortalQueryError):
            portal.version("nope")

    def test_overwrite_across_experiments_leaves_no_stale_state(self, portal):
        moved = make_record("exp-a")
        portal.ingest(moved)
        replacement = make_record("exp-b")
        replacement.run_id = moved.run_id
        portal.ingest(replacement, overwrite=True)
        assert portal.experiment_ids() == ["exp-b"]
        assert portal.n_experiments == 1
        assert portal.get_run(moved.run_id).experiment_id == "exp-b"
        with pytest.raises(PortalQueryError):
            portal.get_experiment("exp-a")

    def test_overwrite_across_experiments_cleans_memory_directory(self, tmp_path):
        directory = tmp_path / "portal"
        portal = DataPortal(directory=directory)
        moved = make_record("exp-a")
        portal.ingest(moved)
        replacement = make_record("exp-b")
        replacement.run_id = moved.run_id
        portal.ingest(replacement, overwrite=True)
        # The old experiment disappears on disk too...
        assert not (directory / "exp-a" / f"{moved.run_id}.json").exists()
        # ...so the directory the portal wrote is always reloadable.
        reloaded = DataPortal.load(directory)
        assert reloaded.n_runs == 1
        assert reloaded.get_run(moved.run_id).experiment_id == "exp-b"

    def test_overwrite_rewrites_persisted_record(self, tmp_path):
        directory = tmp_path / "portal"
        portal = DataPortal(directory=directory)
        portal.ingest(make_record(best=30.0))
        portal.ingest(make_record(best=10.0), overwrite=True)
        reloaded = DataPortal.load(directory)
        # Disk keeps only the latest version; version counters restart at 1.
        assert reloaded.get_run("exp-run0").best_score == 10.0
        assert reloaded.version("exp-run0") == 1

    def test_unknown_queries_raise(self, portal):
        with pytest.raises(PortalQueryError):
            portal.get_run("nope")
        with pytest.raises(PortalQueryError):
            portal.get_experiment("nope")

    def test_invalid_record_rejected(self, portal):
        with pytest.raises(ValueError):
            portal.ingest(RunRecord(experiment_id="", run_id="x", run_index=0, target_rgb=[0, 0, 0]))

    def test_search_filters(self, portal):
        portal.ingest(make_record("exp-a", 0, solver="evolutionary", best=5.0))
        portal.ingest(make_record("exp-a", 1, solver="bayesian", best=50.0))
        portal.ingest(make_record("exp-b", 0, solver="evolutionary", best=8.0))
        assert len(portal.search(experiment_id="exp-a")) == 2
        assert len(portal.search(solver="evolutionary")) == 2
        assert len(portal.search(max_best_score=10.0)) == 2
        assert len(portal.search(experiment_id="exp-a", solver="bayesian")) == 1
        assert len(portal.search(metadata={"batch_size": 1})) == 3
        assert portal.search(metadata={"batch_size": 64}) == []


class TestPagination:
    def test_pages_cover_the_result_set_exactly_once(self, portal):
        for experiment in ("exp-a", "exp-b"):
            for index in range(5):
                portal.ingest(make_record(experiment, index))
        seen = []
        cursor = None
        pages = 0
        while True:
            page = portal.search_page(limit=3, cursor=cursor)
            assert len(page) <= 3
            seen.extend(record.run_id for record in page)
            pages += 1
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
        assert pages == 4
        assert seen == sorted(record.run_id for record in portal.search())
        assert len(set(seen)) == 10

    def test_page_order_is_stable_total_order(self, portal):
        # Ingest out of order; pages come back in (experiment, run_index, run_id).
        portal.ingest(make_record("exp-b", 1))
        portal.ingest(make_record("exp-a", 2))
        portal.ingest(make_record("exp-a", 0))
        page = portal.search_page(limit=10)
        assert [record.run_id for record in page] == ["exp-a-run0", "exp-a-run2", "exp-b-run1"]
        assert page.next_cursor is None

    def test_filters_apply_within_pages(self, portal):
        for index in range(6):
            portal.ingest(make_record("exp", index, solver="bayesian" if index % 2 else "evolutionary"))
        page = portal.search_page(solver="bayesian", limit=2)
        assert [record.run_index for record in page] == [1, 3]
        rest = portal.search_page(solver="bayesian", limit=2, cursor=page.next_cursor)
        assert [record.run_index for record in rest] == [5]
        assert rest.next_cursor is None

    def test_exact_final_page_has_no_next_cursor(self, portal):
        for index in range(4):
            portal.ingest(make_record("exp", index))
        page = portal.search_page(limit=4)
        assert len(page) == 4
        assert page.next_cursor is None

    def test_ingest_between_pages_never_duplicates(self, portal):
        for index in range(4):
            portal.ingest(make_record("exp-b", index))
        first = portal.search_page(limit=2)
        # New records land both before and after the cursor position.
        portal.ingest(make_record("exp-a", 0))
        portal.ingest(make_record("exp-c", 0))
        rest = []
        cursor = first.next_cursor
        while cursor is not None:
            page = portal.search_page(limit=2, cursor=cursor)
            rest.extend(record.run_id for record in page)
            cursor = page.next_cursor
        walked = [record.run_id for record in first] + rest
        # Each record at most once; everything at-or-after the cursor seen.
        assert len(walked) == len(set(walked))
        assert "exp-c-run0" in walked
        assert "exp-b-run3" in walked

    def test_bad_limit_rejected(self, portal):
        with pytest.raises(ValueError):
            portal.search_page(limit=0)

    def test_malformed_cursor_raises_query_error(self, portal):
        portal.ingest(make_record())
        with pytest.raises(PortalQueryError):
            portal.search_page(cursor="not-a-cursor")

    def test_page_to_dict_is_json_shaped(self, portal):
        portal.ingest(make_record())
        payload = portal.search_page(limit=1).to_dict()
        assert payload["next_cursor"] is None
        assert payload["records"][0]["run_id"] == "exp-run0"


class TestViews:
    def test_experiment_summary_matches_figure3_shape(self, portal):
        for index in range(12):
            portal.ingest(make_record("acdc", index))
        summary = portal.summary_view("acdc")
        assert summary["n_runs"] == 12
        assert summary["total_samples"] == 36
        assert summary["samples_per_run"] == [3] * 12
        assert summary["solvers"] == ["evolutionary"]

    def test_detail_view_lists_samples(self, portal):
        record = make_record()
        portal.ingest(record)
        detail = portal.detail_view(record.run_id)
        assert detail["n_samples"] == 3
        assert detail["best_sample"]["well"] == "A1"
        assert len(detail["samples"]) == 3

    def test_experiment_runs_sorted_by_index(self, portal):
        portal.ingest(make_record("exp", 2))
        portal.ingest(make_record("exp", 0))
        portal.ingest(make_record("exp", 1))
        experiment = portal.get_experiment("exp")
        assert [run.run_index for run in experiment.runs] == [0, 1, 2]


class TestPersistence:
    def test_round_trip_through_directory(self, tmp_path):
        directory = tmp_path / "portal"
        portal = DataPortal(directory=directory)
        for index in range(3):
            portal.ingest(make_record("exp", index))
        reloaded = DataPortal.load(directory)
        assert reloaded.n_runs == 3
        assert reloaded.get_experiment("exp").n_samples == 9

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DataPortal.load(tmp_path / "does-not-exist")
