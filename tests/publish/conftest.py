"""Fixtures running the publish-layer tests against both portal backends.

Any test taking the ``portal`` fixture runs twice -- once on the in-memory
:class:`~repro.publish.portal.DataPortal` and once on the durable
:class:`~repro.publish.store.DurableDataPortal` -- so the full legacy
portal contract is enforced on the on-disk store by the same assertions
that pinned it for the dict.

Durable stores are created under ``portal_store_dir`` (root ``conftest``),
which captures the exact segment bytes as CI artifacts when a test fails.
"""

import pytest

from repro.publish.portal import DataPortal
from repro.publish.store import DurableDataPortal

#: The two implementations of the one portal contract.
PORTAL_BACKENDS = ("memory", "durable")


@pytest.fixture(params=PORTAL_BACKENDS)
def portal_backend(request):
    """The backend name under test (parametrizes the ``portal`` fixture)."""
    return request.param


@pytest.fixture
def portal(portal_backend, portal_store_dir):
    """A fresh, empty portal of each backend; durable stores use a small
    segment size so even short tests exercise segment rolling."""
    if portal_backend == "memory":
        yield DataPortal()
        return
    store = DurableDataPortal(portal_store_dir, segment_max_bytes=4096)
    yield store
    store.close()
