"""Crash-recovery tests for the durable portal store.

A crash can leave the newest segment torn mid-record; bad disks or editors
can corrupt any line.  The contract: **open never raises** -- replay
recovers every complete record, reports each damaged byte range in
``recovery`` (the torn tail explicitly), new appends go to a fresh
segment rather than extending damage, and ``compact()`` restores a clean
store.  No silent data loss: what was durably written and intact is
always served.

Stores are created through ``portal_store_dir`` so a failing test's exact
segment bytes are captured as artifacts in CI (see ``conftest.py``).
"""

import json

from repro.publish.store import DurableDataPortal
from tests.publish.test_portal import make_record


def build_store(directory, n_records=6, segment_max_bytes=1024):
    """A small multi-segment store; returns the run_ids written."""
    store = DurableDataPortal(directory, segment_max_bytes=segment_max_bytes)
    run_ids = []
    for index in range(n_records):
        record = make_record("exp", index)
        store.ingest(record)
        run_ids.append(record.run_id)
    store.close()
    return run_ids


def segments(directory):
    return sorted(directory.glob("segment-*.jsonl"))


def truncate_tail(path, keep_fraction=0.5):
    """Chop the last line of ``path`` mid-record (no trailing newline)."""
    data = path.read_bytes()
    last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
    cut = last_line_start + max(1, int((len(data) - last_line_start) * keep_fraction))
    path.write_bytes(data[:cut])
    return data[last_line_start:]


class TestTornTail:
    def test_truncated_final_record_is_reported_not_fatal(self, portal_store_dir):
        run_ids = build_store(portal_store_dir)
        tail = segments(portal_store_dir)[-1]
        truncate_tail(tail)
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        # Open never raises; every *complete* record is served.
        assert not store.recovery.clean
        torn = store.recovery.torn_tail
        assert torn is not None and torn.segment == tail.name
        assert "torn tail" in torn.reason
        recovered = {record.run_id for record in store.search()}
        assert recovered == set(run_ids) - {run_ids[-1]}
        store.close()

    def test_truncation_on_segment_boundary_loses_nothing(self, portal_store_dir):
        run_ids = build_store(portal_store_dir)
        paths = segments(portal_store_dir)
        assert len(paths) > 1
        # Crash exactly between segments: the newest segment vanishes whole.
        lost = [
            json.loads(line)["record"]["run_id"]
            for line in paths[-1].read_text().splitlines()
        ]
        paths[-1].unlink()
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        # Clean open: every surviving byte is a complete record.
        assert store.recovery.clean
        assert {record.run_id for record in store.search()} == set(run_ids) - set(lost)
        store.close()

    def test_new_appends_after_torn_tail_start_a_fresh_segment(self, portal_store_dir):
        build_store(portal_store_dir)
        damaged = segments(portal_store_dir)[-1]
        truncate_tail(damaged)
        damaged_bytes = damaged.read_bytes()
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        store.ingest(make_record("fresh", 0))
        store.close()
        # The damaged segment was not extended; the write went elsewhere.
        assert damaged.read_bytes() == damaged_bytes
        assert len(segments(portal_store_dir)) >= 2
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert "fresh-run0" in {record.run_id for record in reopened.search()}
        reopened.close()

    def test_torn_overwrite_serves_previous_version(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record(best=30.0))
        store.ingest(make_record(best=10.0), overwrite=True)
        store.close()
        tail = segments(portal_store_dir)[-1]
        truncate_tail(tail)  # tear the overwrite envelope
        store = DurableDataPortal(portal_store_dir)
        # The overwrite never became durable; the run rolls back one version.
        assert store.get_run("exp-run0").best_score == 30.0
        assert store.version("exp-run0") == 1
        store.close()


class TestCorruption:
    def test_corrupt_middle_line_skipped_and_reported(self, portal_store_dir):
        run_ids = build_store(portal_store_dir, segment_max_bytes=1 << 20)
        path = segments(portal_store_dir)[0]
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"@@@ not json @@@\n"
        path.write_bytes(b"".join(lines))
        store = DurableDataPortal(portal_store_dir)
        assert len(store.recovery.faults) == 1
        fault = store.recovery.faults[0]
        assert fault.reason == "unparseable envelope line"
        assert not fault.at_tail
        assert {record.run_id for record in store.search()} == set(run_ids) - {run_ids[2]}
        store.close()

    def test_bitflip_fails_crc_and_is_skipped(self, portal_store_dir):
        run_ids = build_store(portal_store_dir, segment_max_bytes=1 << 20)
        path = segments(portal_store_dir)[0]
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip one payload character: still valid JSON, wrong checksum.
        lines[1] = lines[1].replace(b'"well":"A1"', b'"well":"Z9"', 1)
        path.write_bytes(b"".join(lines))
        store = DurableDataPortal(portal_store_dir)
        assert [fault.reason for fault in store.recovery.faults] == ["record checksum mismatch"]
        assert {record.run_id for record in store.search()} == set(run_ids) - {run_ids[1]}
        store.close()

    def test_replay_resumes_after_damage(self, portal_store_dir):
        run_ids = build_store(portal_store_dir, segment_max_bytes=1 << 20)
        path = segments(portal_store_dir)[0]
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"{\n"  # damage the *first* line
        path.write_bytes(b"".join(lines))
        store = DurableDataPortal(portal_store_dir)
        # Everything after the damaged line still replays.
        assert {record.run_id for record in store.search()} == set(run_ids) - {run_ids[0]}
        store.close()


class TestCompactHeals:
    def test_compact_restores_a_clean_store(self, portal_store_dir):
        run_ids = build_store(portal_store_dir)
        tail = segments(portal_store_dir)[-1]
        truncate_tail(tail)
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        survivors = {record.run_id: record.to_dict() for record in store.search()}
        assert not store.recovery.clean
        store.compact()
        # The reloaded-in-place store is clean and byte-identical in content.
        assert store.recovery.clean
        assert {record.run_id: record.to_dict() for record in store.search()} == survivors
        store.close()
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert reopened.recovery.clean
        assert reopened.recovery.records_replayed == len(run_ids) - 1
        assert {record.run_id: record.to_dict() for record in reopened.search()} == survivors
        reopened.close()
