"""Crash-recovery tests for the durable portal store.

A crash can leave the newest segment torn mid-record; bad disks or editors
can corrupt any line.  The contract: **open never raises** -- replay
recovers every complete record, reports each damaged byte range in
``recovery`` (the torn tail explicitly), new appends go to a fresh
segment rather than extending damage, and ``compact()`` restores a clean
store.  No silent data loss: what was durably written and intact is
always served.

Stores are created through ``portal_store_dir`` so a failing test's exact
segment bytes are captured as artifacts in CI (see ``conftest.py``).
"""

import json

from repro.publish.store import DurableDataPortal
from tests.publish.test_portal import make_record


def build_store(directory, n_records=6, segment_max_bytes=1024):
    """A small multi-segment store; returns the run_ids written."""
    store = DurableDataPortal(directory, segment_max_bytes=segment_max_bytes)
    run_ids = []
    for index in range(n_records):
        record = make_record("exp", index)
        store.ingest(record)
        run_ids.append(record.run_id)
    store.close()
    return run_ids


def segments(directory):
    return sorted(directory.glob("segment-*.jsonl"))


def truncate_tail(path, keep_fraction=0.5):
    """Chop the last line of ``path`` mid-record (no trailing newline)."""
    data = path.read_bytes()
    last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
    cut = last_line_start + max(1, int((len(data) - last_line_start) * keep_fraction))
    path.write_bytes(data[:cut])
    return data[last_line_start:]


class TestTornTail:
    def test_truncated_final_record_is_reported_not_fatal(self, portal_store_dir):
        run_ids = build_store(portal_store_dir)
        tail = segments(portal_store_dir)[-1]
        truncate_tail(tail)
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        # Open never raises; every *complete* record is served.
        assert not store.recovery.clean
        torn = store.recovery.torn_tail
        assert torn is not None and torn.segment == tail.name
        assert "torn tail" in torn.reason
        recovered = {record.run_id for record in store.search()}
        assert recovered == set(run_ids) - {run_ids[-1]}
        store.close()

    def test_truncation_on_segment_boundary_loses_nothing(self, portal_store_dir):
        run_ids = build_store(portal_store_dir)
        paths = segments(portal_store_dir)
        assert len(paths) > 1
        # Crash exactly between segments: the newest segment vanishes whole.
        lost = [
            json.loads(line)["record"]["run_id"]
            for line in paths[-1].read_text().splitlines()
        ]
        paths[-1].unlink()
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        # Clean open: every surviving byte is a complete record.
        assert store.recovery.clean
        assert {record.run_id for record in store.search()} == set(run_ids) - set(lost)
        store.close()

    def test_new_appends_after_torn_tail_start_a_fresh_segment(self, portal_store_dir):
        build_store(portal_store_dir)
        damaged = segments(portal_store_dir)[-1]
        truncate_tail(damaged)
        damaged_bytes = damaged.read_bytes()
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        store.ingest(make_record("fresh", 0))
        store.close()
        # The damaged segment was not extended; the write went elsewhere.
        assert damaged.read_bytes() == damaged_bytes
        assert len(segments(portal_store_dir)) >= 2
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert "fresh-run0" in {record.run_id for record in reopened.search()}
        reopened.close()

    def test_torn_overwrite_serves_previous_version(self, portal_store_dir):
        store = DurableDataPortal(portal_store_dir)
        store.ingest(make_record(best=30.0))
        store.ingest(make_record(best=10.0), overwrite=True)
        store.close()
        tail = segments(portal_store_dir)[-1]
        truncate_tail(tail)  # tear the overwrite envelope
        store = DurableDataPortal(portal_store_dir)
        # The overwrite never became durable; the run rolls back one version.
        assert store.get_run("exp-run0").best_score == 30.0
        assert store.version("exp-run0") == 1
        store.close()


class TestCorruption:
    def test_corrupt_middle_line_skipped_and_reported(self, portal_store_dir):
        run_ids = build_store(portal_store_dir, segment_max_bytes=1 << 20)
        path = segments(portal_store_dir)[0]
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"@@@ not json @@@\n"
        path.write_bytes(b"".join(lines))
        store = DurableDataPortal(portal_store_dir)
        assert len(store.recovery.faults) == 1
        fault = store.recovery.faults[0]
        assert fault.reason == "unparseable envelope line"
        assert not fault.at_tail
        assert {record.run_id for record in store.search()} == set(run_ids) - {run_ids[2]}
        store.close()

    def test_bitflip_fails_crc_and_is_skipped(self, portal_store_dir):
        run_ids = build_store(portal_store_dir, segment_max_bytes=1 << 20)
        path = segments(portal_store_dir)[0]
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip one payload character: still valid JSON, wrong checksum.
        lines[1] = lines[1].replace(b'"well":"A1"', b'"well":"Z9"', 1)
        path.write_bytes(b"".join(lines))
        store = DurableDataPortal(portal_store_dir)
        assert [fault.reason for fault in store.recovery.faults] == ["record checksum mismatch"]
        assert {record.run_id for record in store.search()} == set(run_ids) - {run_ids[1]}
        store.close()

    def test_replay_resumes_after_damage(self, portal_store_dir):
        run_ids = build_store(portal_store_dir, segment_max_bytes=1 << 20)
        path = segments(portal_store_dir)[0]
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"{\n"  # damage the *first* line
        path.write_bytes(b"".join(lines))
        store = DurableDataPortal(portal_store_dir)
        # Everything after the damaged line still replays.
        assert {record.run_id for record in store.search()} == set(run_ids) - {run_ids[0]}
        store.close()


class TestCompactCrash:
    """A crash at *any* phase of compact()'s commit-marker protocol must
    leave exactly one complete copy: before the fsynced ``compact-commit``
    marker the renamed-aside originals win (roll back), after it the
    staged ``.compact-tmp`` segments win (roll forward)."""

    def build_with_overwrites(self, directory):
        """6 runs, each overwritten once -- so the compacted form has
        measurably fewer envelope lines (6) than the original (12)."""
        store = DurableDataPortal(directory, segment_max_bytes=1024)
        for index in range(6):
            store.ingest(make_record("exp", index))
        for index in range(6):
            store.ingest(make_record("exp", index, best=1.0), overwrite=True)
        expected = {record.run_id: record.to_dict() for record in store.search()}
        return store, expected

    def stage_compaction(self, store):
        """A complete, fsynced staging directory -- compact()'s phase 1."""
        working = store.directory / ".compact-tmp"
        store.snapshot(working)
        return working

    def assert_no_protocol_residue(self, directory):
        assert not (directory / ".compact-tmp").exists()
        assert not (directory / "compact-commit").exists()
        assert not list(directory.glob("segment-*.jsonl.old"))

    def test_crash_mid_rename_aside_rolls_back(self, portal_store_dir):
        store, expected = self.build_with_overwrites(portal_store_dir)
        self.stage_compaction(store)
        store.close()
        # Crash mid-phase-2: some originals renamed aside, some not.
        live = segments(portal_store_dir)
        assert len(live) > 1
        for path in live[::2]:
            path.rename(path.with_name(path.name + ".old"))
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert reopened.recovery.clean
        assert {r.run_id: r.to_dict() for r in reopened.search()} == expected
        assert reopened.version("exp-run0") == 2
        self.assert_no_protocol_residue(portal_store_dir)
        reopened.close()

    def test_crash_with_torn_staging_rolls_back(self, portal_store_dir):
        store, expected = self.build_with_overwrites(portal_store_dir)
        store.close()
        # Crash mid-phase-1: the staging directory is garbage, no marker.
        working = portal_store_dir / ".compact-tmp"
        working.mkdir()
        (working / "segment-000001.jsonl").write_bytes(b'{"torn')
        for path in segments(portal_store_dir):
            path.rename(path.with_name(path.name + ".old"))
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert reopened.recovery.clean
        assert {r.run_id: r.to_dict() for r in reopened.search()} == expected
        self.assert_no_protocol_residue(portal_store_dir)
        reopened.close()

    def test_crash_after_commit_marker_rolls_forward(self, portal_store_dir):
        store, expected = self.build_with_overwrites(portal_store_dir)
        self.stage_compaction(store)
        store.close()
        # Crash right after phase 3: marker durable, nothing renamed in.
        for path in segments(portal_store_dir):
            path.rename(path.with_name(path.name + ".old"))
        (portal_store_dir / "compact-commit").write_bytes(b"commit\n")
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert reopened.recovery.clean
        assert {r.run_id: r.to_dict() for r in reopened.search()} == expected
        assert reopened.version("exp-run0") == 2
        assert reopened.ingest_count == 12
        # The compacted form won: one live envelope per run.
        lines = sum(len(p.read_text().splitlines()) for p in segments(portal_store_dir))
        assert lines == 6
        self.assert_no_protocol_residue(portal_store_dir)
        reopened.close()

    def test_crash_mid_rename_in_rolls_forward(self, portal_store_dir):
        store, expected = self.build_with_overwrites(portal_store_dir)
        working = self.stage_compaction(store)
        store.close()
        for path in segments(portal_store_dir):
            path.rename(path.with_name(path.name + ".old"))
        (portal_store_dir / "compact-commit").write_bytes(b"commit\n")
        # Crash mid-phase-4: the first staged segment already renamed in.
        staged = sorted(working.glob("segment-*.jsonl"))
        staged[0].rename(portal_store_dir / staged[0].name)
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert reopened.recovery.clean
        assert {r.run_id: r.to_dict() for r in reopened.search()} == expected
        self.assert_no_protocol_residue(portal_store_dir)
        reopened.close()


class TestEnvelopeValidation:
    def test_bool_or_nonpositive_version_is_rejected(self, portal_store_dir):
        run_ids = build_store(portal_store_dir, n_records=3, segment_max_bytes=1 << 20)
        path = segments(portal_store_dir)[0]
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        # The CRC covers only the record, so these envelopes still checksum:
        # the version *type* check alone must reject them.
        lines[0]["version"] = True
        lines[1]["version"] = 0
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        store = DurableDataPortal(portal_store_dir)
        assert [fault.reason for fault in store.recovery.faults] == [
            "envelope version invalid (True)",
            "envelope version invalid (0)",
        ]
        assert {record.run_id for record in store.search()} == {run_ids[2]}
        store.close()


class TestCompactHeals:
    def test_compact_restores_a_clean_store(self, portal_store_dir):
        run_ids = build_store(portal_store_dir)
        tail = segments(portal_store_dir)[-1]
        truncate_tail(tail)
        store = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        survivors = {record.run_id: record.to_dict() for record in store.search()}
        assert not store.recovery.clean
        store.compact()
        # The reloaded-in-place store is clean and byte-identical in content.
        assert store.recovery.clean
        assert {record.run_id: record.to_dict() for record in store.search()} == survivors
        store.close()
        reopened = DurableDataPortal(portal_store_dir, segment_max_bytes=1024)
        assert reopened.recovery.clean
        assert reopened.recovery.records_replayed == len(run_ids) - 1
        assert {record.run_id: record.to_dict() for record in reopened.search()} == survivors
        reopened.close()
