"""End-to-end integration tests spanning every subsystem.

These exercise the complete pipeline the paper describes -- declarative
workcell, WEI workflows, simulated robots, camera + vision, solver, metrics,
publication -- in one run, including a vision-mode run and a fault-injected
resiliency run.
"""

import numpy as np
import pytest

from repro import (
    ColorPickerApp,
    DataPortal,
    ExperimentConfig,
    build_color_picker_workcell,
    run_batch_sweep,
)
from repro.analysis.figure4 import check_figure4_shape
from repro.core.metrics import PAPER_TABLE1
from repro.sim.faults import FaultPolicy
from repro.wei.engine import WorkflowError
from repro.wei.workcell import Workcell


class TestFullPipelineDirectMode:
    @pytest.fixture(scope="class")
    def outcome(self):
        portal = DataPortal()
        config = ExperimentConfig(
            n_samples=32, batch_size=4, seed=123, measurement="direct", publish=True
        )
        workcell = build_color_picker_workcell(seed=123)
        app = ColorPickerApp(config, workcell=workcell, portal=portal)
        result = app.run()
        return config, workcell, portal, result

    def test_sample_budget_exactly_met(self, outcome):
        _, _, _, result = outcome
        assert result.n_samples == 32

    def test_solver_improves_over_first_batch(self, outcome):
        _, _, _, result = outcome
        scores = result.scores()
        assert result.best_score < scores[:4].min()
        assert result.best_score < 40.0

    def test_metrics_consistent_with_clock(self, outcome):
        _, workcell, _, result = outcome
        assert result.metrics.time_without_humans_s == pytest.approx(workcell.clock.now(), rel=1e-6)
        assert result.metrics.total_colors == 32

    def test_portal_record_matches_result(self, outcome):
        config, _, portal, result = outcome
        record = portal.get_run(config.run_id)
        assert record.n_samples == result.n_samples
        assert record.best_score == pytest.approx(result.best_score)

    def test_every_sample_well_contains_what_was_requested(self, outcome):
        _, workcell, _, result = outcome
        plates = {plate.barcode: plate for plate in workcell.deck.trashed_plates}
        for sample in result.samples:
            well = plates[sample.plate_barcode].well(sample.well)
            for dye, volume in sample.volumes_ul.items():
                if volume > 0:
                    assert well.contents.get(dye, 0.0) == pytest.approx(volume)


class TestFullPipelineVisionMode:
    def test_vision_and_direct_measurements_agree(self):
        """The camera+vision path should read colours close to the chemistry truth."""
        config = ExperimentConfig(
            n_samples=8, batch_size=4, seed=77, measurement="vision", publish=False
        )
        workcell = build_color_picker_workcell(seed=77)
        app = ColorPickerApp(config, workcell=workcell)
        result = app.run()
        chemistry = workcell.chemistry
        for sample in result.samples:
            volumes = np.array(
                [sample.volumes_ul.get(dye, 0.0) for dye in chemistry.dyes.names]
            )
            truth = chemistry.mix(volumes)
            assert np.linalg.norm(sample.measured_rgb - truth) < 25.0


class TestYamlWorkcellEndToEnd:
    WORKCELL_YAML = """
name: rpl_colorpicker_from_yaml
modules:
  - name: sciclops
    type: sciclops
  - name: pf400
    type: pf400
  - name: ot2
    type: ot2
  - name: barty
    type: barty
  - name: camera
    type: camera
"""

    def test_workcell_from_yaml_runs_experiment(self):
        workcell = Workcell.from_yaml(self.WORKCELL_YAML, seed=5)
        config = ExperimentConfig(n_samples=6, batch_size=3, seed=5, publish=False)
        result = ColorPickerApp(config, workcell=workcell).run()
        assert result.n_samples == 6
        assert workcell.name == "rpl_colorpicker_from_yaml"


class TestResiliency:
    def test_recoverable_faults_do_not_stop_the_run(self):
        workcell = build_color_picker_workcell(
            seed=31, fault_policy=FaultPolicy.uniform(0.05, unrecoverable_fraction=0.0)
        )
        config = ExperimentConfig(n_samples=16, batch_size=4, seed=31, publish=False)
        app = ColorPickerApp(config, workcell=workcell)
        result = app.run()
        assert result.n_samples == 16
        retries = sum(
            step.retries for run in app.run_logger.runs for step in run.steps
        )
        assert retries > 0
        # Failed command attempts are excluded from CCWH.
        failed = sum(
            1
            for device in [m.device for m in workcell.modules.values()]
            for record in device.action_log
            if not record.success
        )
        assert failed > 0

    def test_unrecoverable_fault_aborts_with_workflow_error(self):
        workcell = build_color_picker_workcell(
            seed=32, fault_policy=FaultPolicy.uniform(0.7, unrecoverable_fraction=1.0)
        )
        config = ExperimentConfig(n_samples=8, batch_size=2, seed=32, publish=False)
        app = ColorPickerApp(config, workcell=workcell)
        with pytest.raises(WorkflowError):
            app.run()


class TestReducedFigure4Shape:
    def test_reduced_sweep_reproduces_headline_trends(self):
        sweep = run_batch_sweep(batch_sizes=(1, 8, 32), n_samples=32, seed=2023)
        checks = check_figure4_shape(sweep)
        assert checks["small_batches_slower"]
        assert checks["all_within_budget"]
        # Time per colour for B=1 should be in the ballpark of the paper's 4 minutes.
        b1 = sweep.experiments[1]
        assert b1.metrics.time_per_color_s == pytest.approx(
            PAPER_TABLE1["time_per_color_s"], rel=0.25
        )
