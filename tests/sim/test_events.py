"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(5.0, lambda: order.append("late"))
        scheduler.schedule_at(1.0, lambda: order.append("early"))
        scheduler.schedule_at(3.0, lambda: order.append("middle"))
        scheduler.run()
        assert order == ["early", "middle", "late"]

    def test_clock_advances_to_event_times(self):
        clock = SimClock()
        scheduler = EventScheduler(clock)
        times = []
        scheduler.schedule_at(2.0, lambda: times.append(clock.now()))
        scheduler.schedule_at(7.0, lambda: times.append(clock.now()))
        scheduler.run()
        assert times == [2.0, 7.0]

    def test_ties_run_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(1.0, lambda: order.append("first"))
        scheduler.schedule_at(1.0, lambda: order.append("second"))
        scheduler.run()
        assert order == ["first", "second"]

    def test_schedule_after_uses_current_time(self):
        scheduler = EventScheduler()
        scheduler.clock.advance(10.0)
        event = scheduler.schedule_after(5.0, lambda: None)
        assert event.time == 15.0

    def test_scheduling_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.clock.advance(10.0)
        with pytest.raises(ValueError):
            scheduler.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            scheduler.schedule_after(-1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        scheduler = EventScheduler()
        seen = []

        def chain(step):
            seen.append(step)
            if step < 3:
                scheduler.schedule_after(1.0, lambda: chain(step + 1))

        scheduler.schedule_at(0.0, lambda: chain(0))
        scheduler.run()
        assert seen == [0, 1, 2, 3]
        assert scheduler.clock.now() == 3.0


class TestControl:
    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(1.0, lambda: fired.append("a"))
        scheduler.schedule_at(2.0, lambda: fired.append("b"))
        event.cancel()
        scheduler.run()
        assert fired == ["b"]

    def test_run_until_stops_before_later_events(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append(1))
        scheduler.schedule_at(10.0, lambda: fired.append(10))
        executed = scheduler.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert scheduler.pending == 1
        assert scheduler.clock.now() == pytest.approx(1.0)

    def test_run_until_idles_clock_when_queue_empty(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.run(until=30.0)
        assert scheduler.clock.now() == 30.0

    def test_max_events_limit(self):
        scheduler = EventScheduler()
        for t in range(5):
            scheduler.schedule_at(float(t), lambda: None)
        assert scheduler.run(max_events=3) == 3
        assert scheduler.pending == 2

    def test_step_returns_none_when_empty(self):
        assert EventScheduler().step() is None

    def test_processed_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.run()
        assert scheduler.processed == 2


class TestCancelledAccounting:
    """``pending``/``active`` exclude lazily-deleted events (the old
    ``pending`` counted them, so an all-cancelled queue looked busy)."""

    def test_pending_excludes_cancelled(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule_at(float(t + 1), lambda: None) for t in range(4)]
        events[0].cancel()
        events[2].cancel()
        assert scheduler.pending == 2
        assert scheduler.active == 2
        assert scheduler.queue_size == 4  # husks still on the heap

    def test_double_cancel_counted_once(self):
        scheduler = EventScheduler()
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert scheduler.pending == 1

    def test_all_cancelled_queue_reports_idle(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule_at(float(t + 1), lambda: None) for t in range(10)]
        for event in events:
            event.cancel()
        assert scheduler.pending == 0
        assert scheduler.active == 0
        assert scheduler.next_time() is None
        assert scheduler.step() is None

    def test_merge_loop_does_not_idle_on_all_cancelled_shard(self):
        """Regression: a coordinator merging shards by earliest ``next_time``
        must see a shard whose queue holds nothing but cancelled events as
        done, not repeatedly select it (or spin forever waiting for it)."""
        busy = EventScheduler()
        dead = EventScheduler()
        fired = []
        for t in range(3):
            busy.schedule_at(float(t + 1), lambda t=t: fired.append(t))
        for t in range(50):
            dead.schedule_at(0.5 + t * 0.01, lambda: fired.append("dead")).cancel()
        # The coordinator's _run_merged loop, verbatim in miniature.
        steps = 0
        while steps < 100:
            best, best_time = None, None
            for shard in (dead, busy):
                pending = shard.next_time()
                if pending is None:
                    continue
                if best_time is None or pending < best_time:
                    best, best_time = shard, pending
            if best is None:
                break
            best.step()
            steps += 1
        assert fired == [0, 1, 2]
        assert steps == 3  # never burned an iteration on the dead shard

    def test_compaction_drops_cancelled_majority(self):
        scheduler = EventScheduler()
        keep = [scheduler.schedule_at(1000.0 + t, lambda: None) for t in range(10)]
        doomed = [scheduler.schedule_at(float(t + 1), lambda: None) for t in range(200)]
        for event in doomed:
            event.cancel()
        # Cancelled entries dominated, so the heap was rebuilt without most
        # of them; at most a sub-threshold tail of husks may remain.
        assert scheduler.pending == len(keep)
        assert scheduler.queue_size - scheduler.pending < 64
        assert scheduler.next_time() == 1000.0

    def test_cancelled_event_popped_then_compaction_still_consistent(self):
        scheduler = EventScheduler()
        first = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        first.cancel()
        assert scheduler.next_time() == 2.0  # peek pops the cancelled head
        assert scheduler.pending == 1
        assert scheduler.queue_size == 1
        assert scheduler.run() == 1
