"""Tests for action-duration models."""

import numpy as np
import pytest

from repro.sim.durations import (
    DurationModel,
    DurationTable,
    ModuleSpeedProfile,
    paper_calibrated_durations,
)


class TestDurationModel:
    def test_mean_includes_per_unit(self):
        model = DurationModel(base_s=10.0, per_unit_s=2.0)
        assert model.mean(units=5) == 20.0

    def test_zero_jitter_is_deterministic(self):
        model = DurationModel(base_s=10.0, jitter_cv=0.0)
        assert model.sample() == 10.0

    def test_sample_respects_minimum(self):
        model = DurationModel(base_s=0.0, per_unit_s=0.0, minimum_s=1.0)
        assert model.sample() == 1.0

    def test_jitter_mean_close_to_nominal(self):
        model = DurationModel(base_s=100.0, jitter_cv=0.1)
        rng = np.random.default_rng(0)
        samples = np.array([model.sample(rng) for _ in range(3000)])
        assert samples.mean() == pytest.approx(100.0, rel=0.02)
        assert samples.std() == pytest.approx(10.0, rel=0.15)

    def test_samples_always_positive(self):
        model = DurationModel(base_s=5.0, jitter_cv=0.5)
        rng = np.random.default_rng(1)
        assert all(model.sample(rng) > 0 for _ in range(200))

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            DurationModel(base_s=-1.0)


class TestDurationTable:
    def test_specific_entry_wins(self):
        table = DurationTable()
        table.set("ot2", "run_protocol", DurationModel(base_s=100.0, jitter_cv=0.0))
        table.set_module_default("ot2", DurationModel(base_s=5.0, jitter_cv=0.0))
        assert table.mean("ot2", "run_protocol") == 100.0
        assert table.mean("ot2", "anything_else") == 5.0

    def test_global_default_fallback(self):
        table = DurationTable(default=DurationModel(base_s=7.0, jitter_cv=0.0))
        assert table.mean("unknown", "whatever") == 7.0

    def test_copy_is_independent(self):
        table = paper_calibrated_durations()
        clone = table.copy()
        clone.set("pf400", "transfer", DurationModel(base_s=1.0))
        assert table.mean("pf400", "transfer") != 1.0

    def test_scaled(self):
        table = paper_calibrated_durations()
        fast = table.scaled(0.5)
        assert fast.mean("pf400", "transfer") == pytest.approx(table.mean("pf400", "transfer") * 0.5)
        with pytest.raises(ValueError):
            table.scaled(0.0)

    def test_sample_uses_units(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        single = table.sample("ot2", "run_protocol", units=1)
        batch = table.sample("ot2", "run_protocol", units=8)
        assert batch > single


class TestPerModuleScaling:
    """``DurationTable.scaled`` with a per-module factor mapping."""

    def test_named_module_scaled_others_untouched(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        slow_ot2 = table.scaled({"ot2": 2.0})
        assert slow_ot2.mean("ot2", "run_protocol", units=4) == pytest.approx(
            2.0 * table.mean("ot2", "run_protocol", units=4)
        )
        assert slow_ot2.mean("pf400", "transfer") == table.mean("pf400", "transfer")
        assert slow_ot2.mean("camera", "take_picture") == table.mean("camera", "take_picture")

    def test_mapped_module_without_default_gets_scaled_global_default(self):
        table = DurationTable(default=DurationModel(base_s=8.0, jitter_cv=0.0))
        scaled = table.scaled({"mystery": 3.0})
        # The mapped module now has its own (scaled) default...
        assert scaled.mean("mystery", "anything") == pytest.approx(24.0)
        # ...while unmapped modules still fall through to the unscaled global.
        assert scaled.mean("other", "anything") == pytest.approx(8.0)

    def test_invalid_factors_rejected(self):
        table = paper_calibrated_durations()
        for bad in ({"ot2": 0.0}, {"ot2": -1.0}, {"ot2": float("nan")}, {"ot2": float("inf")}):
            with pytest.raises(ValueError):
                table.scaled(bad)

    def test_modules_listing(self):
        table = paper_calibrated_durations()
        modules = table.modules()
        assert "ot2" in modules and "pf400" in modules and "barty" in modules
        assert list(modules) == sorted(modules)


class TestModuleSpeedProfile:
    def test_apply_divides_durations_by_speed(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        fast = ModuleSpeedProfile({"ot2": 2.0}).apply(table)
        assert fast.mean("ot2", "run_protocol", units=1) == pytest.approx(
            table.mean("ot2", "run_protocol", units=1) / 2.0
        )
        assert fast.mean("pf400", "transfer") == table.mean("pf400", "transfer")

    def test_parse_round_trips(self):
        profile = ModuleSpeedProfile.parse("ot2=2.5, pf400=0.5")
        assert profile.to_dict() == {"ot2": 2.5, "pf400": 0.5}
        assert ModuleSpeedProfile.parse("").is_identity

    def test_parse_rejects_malformed_specs(self):
        for bad in ("ot2", "ot2=fast", "=2.0", "ot2=0", "ot2=-1", "ot2=inf", "ot2=nan"):
            with pytest.raises(ValueError):
                ModuleSpeedProfile.parse(bad)

    def test_coerce_accepts_profile_str_and_mapping(self):
        profile = ModuleSpeedProfile({"ot2": 2.0})
        assert ModuleSpeedProfile.coerce(profile) is profile
        assert ModuleSpeedProfile.coerce("ot2=2.0").to_dict() == {"ot2": 2.0}
        assert ModuleSpeedProfile.coerce({"ot2": 2.0}).to_dict() == {"ot2": 2.0}
        assert ModuleSpeedProfile.coerce(None).is_identity
        with pytest.raises(TypeError):
            ModuleSpeedProfile.coerce(3.0)

    def test_broadcast_single_spec_to_fleet(self):
        profiles = ModuleSpeedProfile.broadcast("ot2=2.0", 3)
        assert len(profiles) == 3
        assert all(p.to_dict() == {"ot2": 2.0} for p in profiles)

    def test_broadcast_per_shard_list_must_match_length(self):
        profiles = ModuleSpeedProfile.broadcast([{"ot2": 1.0}, {"ot2": 2.0}], 2)
        assert [p.to_dict() for p in profiles] == [{"ot2": 1.0}, {"ot2": 2.0}]
        with pytest.raises(ValueError):
            ModuleSpeedProfile.broadcast([{"ot2": 1.0}], 2)

    def test_identity_apply_returns_equivalent_table(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        same = ModuleSpeedProfile({}).apply(table)
        assert same.mean("ot2", "run_protocol", units=1) == table.mean(
            "ot2", "run_protocol", units=1
        )


class TestPaperCalibration:
    """The calibration targets of DESIGN.md Section 5."""

    def test_single_well_protocol_near_145_seconds(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        assert table.mean("ot2", "run_protocol", units=1) == pytest.approx(144.0, abs=10.0)

    def test_transfer_near_40_seconds(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        assert table.mean("pf400", "transfer") == pytest.approx(40.0, abs=5.0)

    def test_b1_iteration_close_to_4_minutes(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        iteration = (
            table.mean("ot2", "run_protocol", units=1)
            + 2 * table.mean("pf400", "transfer")
            + table.mean("camera", "take_picture")
            + table.mean("compute", "solver")
            + table.mean("compute", "image_processing")
            + table.mean("publish", "upload")
        )
        assert iteration == pytest.approx(4 * 60, rel=0.1)

    def test_b1_full_run_close_to_table1_total(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        iteration = (
            table.mean("ot2", "run_protocol", units=1)
            + 2 * table.mean("pf400", "transfer")
            + table.mean("camera", "take_picture")
            + table.mean("compute", "solver")
            + table.mean("compute", "image_processing")
            + table.mean("publish", "upload")
        )
        total_hours = iteration * 128 / 3600
        assert 7.5 <= total_hours <= 9.0  # paper: 8 h 12 m

    def test_synthesis_fraction_near_paper(self):
        table = paper_calibrated_durations(jitter_cv=0.0)
        synthesis = table.mean("ot2", "run_protocol", units=1)
        iteration = (
            synthesis
            + 2 * table.mean("pf400", "transfer")
            + table.mean("camera", "take_picture")
            + table.mean("compute", "solver")
            + table.mean("compute", "image_processing")
            + table.mean("publish", "upload")
        )
        assert synthesis / iteration == pytest.approx(0.63, abs=0.07)
