"""Tests for resource timelines."""

import pytest

from repro.sim.resources import ResourceBusyError, ResourceTimeline


class TestReserve:
    def test_first_reservation_starts_on_request(self):
        timeline = ResourceTimeline("ot2")
        assert timeline.reserve(5.0, 10.0) == (5.0, 15.0)

    def test_overlapping_request_is_pushed_back(self):
        timeline = ResourceTimeline("ot2")
        timeline.reserve(0.0, 10.0)
        start, end = timeline.reserve(4.0, 5.0)
        assert start == 10.0 and end == 15.0

    def test_non_overlapping_request_keeps_time(self):
        timeline = ResourceTimeline("ot2")
        timeline.reserve(0.0, 10.0)
        assert timeline.reserve(20.0, 5.0) == (20.0, 25.0)

    def test_busy_time_and_counts(self):
        timeline = ResourceTimeline("pf400")
        timeline.reserve(0.0, 3.0)
        timeline.reserve(10.0, 2.0)
        assert timeline.busy_time == 5.0
        assert timeline.reservations == 2
        assert timeline.available_at == 12.0

    def test_negative_inputs_rejected(self):
        timeline = ResourceTimeline("x")
        with pytest.raises(ValueError):
            timeline.reserve(-1.0, 1.0)
        with pytest.raises(ValueError):
            timeline.reserve(0.0, -1.0)


class TestTryReserve:
    def test_raises_when_busy(self):
        timeline = ResourceTimeline("camera")
        timeline.reserve(0.0, 10.0)
        with pytest.raises(ResourceBusyError):
            timeline.try_reserve(5.0, 1.0)

    def test_succeeds_when_free(self):
        timeline = ResourceTimeline("camera")
        timeline.reserve(0.0, 10.0)
        assert timeline.try_reserve(10.0, 1.0) == (10.0, 11.0)


class TestUtilisation:
    def test_utilisation_fraction(self):
        timeline = ResourceTimeline("ot2")
        timeline.reserve(0.0, 50.0)
        assert timeline.utilisation(100.0) == pytest.approx(0.5)

    def test_utilisation_requires_positive_horizon(self):
        with pytest.raises(ValueError):
            ResourceTimeline("ot2").utilisation(0.0)

    def test_idle_gaps(self):
        timeline = ResourceTimeline("ot2")
        timeline.reserve(5.0, 5.0)
        timeline.reserve(20.0, 5.0)
        assert timeline.idle_gaps() == [(0.0, 5.0), (10.0, 20.0)]

    def test_no_gaps_when_contiguous(self):
        timeline = ResourceTimeline("ot2")
        timeline.reserve(0.0, 5.0)
        timeline.reserve(0.0, 5.0)
        assert timeline.idle_gaps() == []
