"""Tests for simulation and wall clocks."""

import pytest

from repro.sim.clock import Clock, SimClock, WallClock


class TestWallClockAdvanceTo:
    def test_advance_to_future_accounts_time(self):
        clock = WallClock(sleep=False)
        clock.advance_to(5.0)
        assert clock.now() >= 5.0

    def test_advance_to_past_is_a_no_op(self):
        # Wall time moves on its own; a timestamp already passed is not an
        # error (the event-driven engine relies on this).
        clock = WallClock(sleep=False)
        clock.advance(10.0)
        before = clock.now()
        clock.advance_to(3.0)
        assert clock.now() >= before

    def test_advance_to_returns_current_time(self):
        clock = WallClock(sleep=False)
        returned = clock.advance_to(2.0)
        assert returned >= 2.0
        assert clock.now() >= returned


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=100.0).now() == 100.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now() == pytest.approx(12.5)

    def test_advance_returns_new_time(self):
        assert SimClock().advance(5.0) == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(42.0)
        assert clock.now() == 42.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_satisfies_clock_protocol(self):
        assert isinstance(SimClock(), Clock)


class TestWallClock:
    def test_no_sleep_mode_accounts_time(self):
        clock = WallClock(sleep=False)
        before = clock.now()
        clock.advance(100.0)
        assert clock.now() - before >= 100.0

    def test_sleeping_advance(self):
        clock = WallClock(sleep=True)
        before = clock.now()
        clock.advance(0.01)
        assert clock.now() - before >= 0.009

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            WallClock(sleep=False).advance(-0.1)

    def test_satisfies_clock_protocol(self):
        assert isinstance(WallClock(sleep=False), Clock)
