"""Tests for fault injection."""

import numpy as np
import pytest

from repro.sim.faults import CommandFailure, FaultInjector, FaultPolicy


class TestFaultPolicy:
    def test_none_policy_never_fails(self):
        injector = FaultInjector(FaultPolicy.none(), rng=np.random.default_rng(0))
        for _ in range(500):
            injector.check("ot2", "run_protocol")
        assert injector.injected_failures == 0

    def test_uniform_policy_applies_to_all_modules(self):
        policy = FaultPolicy.uniform(0.5)
        assert policy.probability_for("ot2") == 0.5
        assert policy.probability_for("anything") == 0.5

    def test_per_module_overrides(self):
        policy = FaultPolicy(command_failure={"pf400": 0.2}, default_failure=0.0)
        assert policy.probability_for("pf400") == 0.2
        assert policy.probability_for("ot2") == 0.0

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(default_failure=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(command_failure={"ot2": -0.1})


class TestFaultInjector:
    def test_failure_rate_matches_probability(self):
        injector = FaultInjector(FaultPolicy.uniform(0.3), rng=np.random.default_rng(7))
        failures = 0
        trials = 2000
        for _ in range(trials):
            try:
                injector.check("ot2", "run_protocol")
            except CommandFailure:
                failures += 1
        assert failures / trials == pytest.approx(0.3, abs=0.03)
        assert injector.injected_failures == failures

    def test_failure_carries_module_and_action(self):
        injector = FaultInjector(FaultPolicy.uniform(1.0), rng=np.random.default_rng(1))
        with pytest.raises(CommandFailure) as excinfo:
            injector.check("pf400", "transfer")
        assert excinfo.value.module == "pf400"
        assert excinfo.value.action == "transfer"

    def test_unrecoverable_fraction(self):
        policy = FaultPolicy.uniform(1.0, unrecoverable_fraction=0.4)
        injector = FaultInjector(policy, rng=np.random.default_rng(3))
        unrecoverable = 0
        trials = 1000
        for _ in range(trials):
            try:
                injector.check("ot2", "x")
            except CommandFailure as failure:
                if not failure.recoverable:
                    unrecoverable += 1
        assert unrecoverable / trials == pytest.approx(0.4, abs=0.05)

    def test_history_records_every_failure(self):
        injector = FaultInjector(FaultPolicy.uniform(1.0), rng=np.random.default_rng(2))
        for _ in range(3):
            with pytest.raises(CommandFailure):
                injector.check("camera", "take_picture")
        assert len(injector.history) == 3
        assert all(entry[0] == "camera" for entry in injector.history)
