"""Tests for the concurrency-contract linter (``repro.analysis.lint``).

One positive and one negative fixture snippet per rule, the JSON output
schema the CI ``analysis`` job archives, baseline suppression semantics
(including the justification requirement), and the acceptance criterion
itself: ``python -m repro lint src`` over the real tree is clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULES,
    Baseline,
    lint_file,
    run_lint,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def lint_snippet(tmp_path, code, *, relpath="pkg/mod.py"):
    """Write ``code`` at ``relpath`` under ``tmp_path``; return its rule hits."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(code, encoding="utf-8")
    return lint_file(target)


def rules_of(violations):
    return [v.rule for v in violations]


class TestRPR001StraySleep:
    def test_time_sleep_flagged(self, tmp_path):
        hits = lint_snippet(tmp_path, "import time\ntime.sleep(1)\n")
        assert rules_of(hits) == ["RPR001"]

    def test_aliased_and_from_imports_flagged(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            "import time as _t\nfrom time import sleep as zzz\n_t.sleep(1)\nzzz(2)\n",
        )
        assert rules_of(hits) == ["RPR001", "RPR001"]

    def test_wall_clock_module_is_whitelisted(self, tmp_path):
        hits = lint_snippet(
            tmp_path, "import time\ntime.sleep(1)\n", relpath="repro/sim/clock.py"
        )
        assert hits == []

    def test_unrelated_sleep_attribute_not_flagged(self, tmp_path):
        # Only the time module's sleep counts; a driver method named sleep
        # on some other object is not rule RPR001's business.
        hits = lint_snippet(tmp_path, "def f(dev):\n    dev.sleep(1)\n")
        assert hits == []


class TestRPR002BlockingUnderLock:
    def test_join_queue_get_and_foreign_wait_flagged(self, tmp_path):
        code = (
            "import threading\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def bad(self, thread, q, event):\n"
            "        with self._lock:\n"
            "            thread.join()\n"
            "            q.get()\n"
            "            event.wait()\n"
        )
        hits = lint_snippet(tmp_path, code)
        assert rules_of(hits) == ["RPR002", "RPR002", "RPR002"]

    def test_waiting_on_the_held_condition_is_allowed(self, tmp_path):
        code = (
            "import threading\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "    def ok(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait(1.0)\n"
            "            self._cond.wait_for(lambda: True, timeout=1.0)\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_str_join_and_dict_get_not_flagged(self, tmp_path):
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def ok(d):\n"
            "    with lock:\n"
            "        a = ', '.join(['x'])\n"
            "        b = d.get('key')\n"
            "        c = d.get('key', None)\n"
            "    return a, b, c\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_timeouted_queue_get_allowed(self, tmp_path):
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def ok(q):\n"
            "    with lock:\n"
            "        return q.get(timeout=0.5)\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_nested_function_body_does_not_inherit_the_lock(self, tmp_path):
        # A closure defined under the lock runs later, lock not held.
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def ok(q):\n"
            "    with lock:\n"
            "        def later():\n"
            "            return q.get()\n"
            "    return later\n"
        )
        assert lint_snippet(tmp_path, code) == []


class TestRPR003BareAcquire:
    def test_bare_acquire_flagged(self, tmp_path):
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def bad():\n"
            "    lock.acquire()\n"
            "    print('leaks on exception')\n"
        )
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR003"]

    def test_acquire_result_without_release_flagged(self, tmp_path):
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def bad():\n"
            "    got = lock.acquire(timeout=1)\n"
            "    return got\n"
        )
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR003"]

    def test_acquire_then_try_finally_release_allowed(self, tmp_path):
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def ok():\n"
            "    lock.acquire()\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_acquire_inside_try_with_finally_release_allowed(self, tmp_path):
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def ok():\n"
            "    try:\n"
            "        lock.acquire()\n"
            "        pass\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_acquire_inside_the_finally_itself_flagged(self, tmp_path):
        # The release may already have run by the time this acquire executes;
        # sharing a finally with a release() is not a release guarantee.
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def bad():\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        lock.release()\n"
            "        lock.acquire()\n"
        )
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR003"]

    def test_acquire_in_orelse_not_covered_by_pattern_one(self, tmp_path):
        code = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def bad(x):\n"
            "    try:\n"
            "        pass\n"
            "    except ValueError:\n"
            "        pass\n"
            "    else:\n"
            "        lock.acquire(timeout=x)\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR003"]

    def test_non_lock_receiver_not_flagged(self, tmp_path):
        assert lint_snippet(tmp_path, "def f(camera):\n    camera.acquire()\n") == []


class TestRPR004AnonymousThreads:
    def test_missing_name_and_daemon_flagged(self, tmp_path):
        code = "import threading\nt = threading.Thread(target=print)\n"
        hits = lint_snippet(tmp_path, code)
        assert rules_of(hits) == ["RPR004"]
        assert "name=" in hits[0].message and "daemon=" in hits[0].message

    def test_missing_only_daemon_flagged(self, tmp_path):
        code = "import threading\nt = threading.Thread(target=print, name='x')\n"
        hits = lint_snippet(tmp_path, code)
        assert rules_of(hits) == ["RPR004"]
        assert "missing explicit daemon=" in hits[0].message

    def test_named_daemon_thread_allowed(self, tmp_path):
        code = (
            "from threading import Thread\n"
            "t = Thread(target=print, name='worker-1', daemon=True)\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_kwargs_splat_is_statically_unknowable_and_allowed(self, tmp_path):
        code = "import threading\ndef f(kw):\n    return threading.Thread(**kw)\n"
        assert lint_snippet(tmp_path, code) == []


class TestRPR005StdlibRandom:
    def test_unseeded_random_and_global_functions_flagged(self, tmp_path):
        code = (
            "import random\n"
            "from random import randint\n"
            "r = random.Random()\n"
            "x = random.random()\n"
            "y = randint(0, 5)\n"
        )
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR005", "RPR005", "RPR005"]

    def test_seeded_random_instance_allowed(self, tmp_path):
        assert lint_snippet(tmp_path, "import random\nr = random.Random(42)\n") == []

    def test_numpy_generators_not_rule_business(self, tmp_path):
        code = "import numpy as np\nrng = np.random.default_rng(7)\nx = rng.random()\n"
        assert lint_snippet(tmp_path, code) == []


class TestRPR006BridgePostContainment:
    def test_post_reference_outside_drivers_flagged(self, tmp_path):
        code = "def leak(bridge, completion):\n    bridge.post(completion)\n"
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR006"]

    def test_passing_bridge_post_as_callback_flagged(self, tmp_path):
        code = "def leak(driver, bridge):\n    driver.on_completion(bridge.post)\n"
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR006"]

    def test_driver_layer_is_whitelisted(self, tmp_path):
        code = "def fine(self, completion):\n    self.bridge.post(completion)\n"
        hits = lint_snippet(tmp_path, code, relpath="repro/wei/drivers/registry.py")
        assert hits == []

    def test_unrelated_post_receivers_not_flagged(self, tmp_path):
        code = "def fine(portal, record):\n    portal.post(record)\n"
        assert lint_snippet(tmp_path, code) == []


class TestRPR007BareStartSpan:
    def test_bare_start_span_flagged(self, tmp_path):
        code = "def leak(tracer):\n    span = tracer.start_span('work')\n    span.attrs['x'] = 1\n"
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR007"]

    def test_start_span_as_expression_flagged(self, tmp_path):
        code = "def leak(tracer):\n    tracer.start_span('work')\n"
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR007"]

    def test_try_finally_without_end_span_still_flagged(self, tmp_path):
        code = (
            "def leak(tracer):\n"
            "    span = tracer.start_span('work')\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        assert rules_of(lint_snippet(tmp_path, code)) == ["RPR007"]

    def test_start_span_then_try_finally_end_span_allowed(self, tmp_path):
        code = (
            "def fine(tracer):\n"
            "    span = tracer.start_span('work')\n"
            "    try:\n"
            "        do_work()\n"
            "    finally:\n"
            "        tracer.end_span(span)\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_start_span_inside_try_with_finally_end_span_allowed(self, tmp_path):
        code = (
            "def fine(tracer):\n"
            "    span = None\n"
            "    try:\n"
            "        span = tracer.start_span('work')\n"
            "        do_work()\n"
            "    finally:\n"
            "        if span is not None:\n"
            "            tracer.end_span(span)\n"
        )
        assert lint_snippet(tmp_path, code) == []

    def test_with_tracer_span_is_the_blessed_idiom(self, tmp_path):
        code = "def fine(tracer):\n    with tracer.span('work'):\n        do_work()\n"
        assert lint_snippet(tmp_path, code) == []

    def test_obs_layer_is_whitelisted(self, tmp_path):
        code = "def span(self, name):\n    opened = self.start_span(name)\n    return opened\n"
        hits = lint_snippet(tmp_path, code, relpath="repro/obs/tracer.py")
        assert hits == []


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\ntime.sleep(1)\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 1
        assert "RPR001" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", str(tmp_path / "nope")])

    def test_json_schema(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\ntime.sleep(1)\n", encoding="utf-8")
        main(["lint", str(tmp_path), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {
            "version",
            "checked_files",
            "violations",
            "suppressed",
            "counts",
            "ok",
        }
        assert report["version"] == 1
        assert report["checked_files"] == 1
        assert report["ok"] is False
        assert report["counts"] == {"RPR001": 1}
        (violation,) = report["violations"]
        assert set(violation) == {"rule", "path", "line", "col", "message", "snippet"}
        assert violation["rule"] == "RPR001"
        assert violation["line"] == 2
        assert violation["snippet"] == "time.sleep(1)"

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_syntax_error_reported_as_rpr000(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 1
        assert "RPR000" in capsys.readouterr().out


class TestBaseline:
    def write_bad(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\ntime.sleep(1)\n", encoding="utf-8")
        return bad

    @staticmethod
    def justify(baseline_path, text="legacy pacing; tracked in #42"):
        """The required post-bootstrap step: replace placeholder justifications."""
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        for entry in data["suppressions"]:
            entry["justification"] = text
        baseline_path.write_text(json.dumps(data), encoding="utf-8")

    def test_baseline_suppresses_matching_violation(self, tmp_path, capsys):
        self.write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(tmp_path), "--write-baseline", str(baseline)])
        self.justify(baseline)
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_baseline_survives_line_drift_but_not_new_violations(self, tmp_path, capsys):
        bad = self.write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(tmp_path), "--write-baseline", str(baseline)])
        self.justify(baseline)
        # Same violation, shifted two lines down: still suppressed.
        bad.write_text("import time\n\n\ntime.sleep(1)\n", encoding="utf-8")
        assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
        # A *new* violation is not covered by the old baseline.
        bad.write_text("import time\ntime.sleep(1)\ntime.sleep(99)\n", encoding="utf-8")
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 1
        assert "time.sleep(99)" not in json.dumps(
            Baseline.load(baseline).entries
        )

    def test_bootstrapped_baseline_is_rejected_until_justified(self, tmp_path, capsys):
        # --write-baseline stamps a placeholder justification; loading it
        # verbatim must fail so a bootstrap file cannot be merged as-is.
        self.write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(tmp_path), "--write-baseline", str(baseline)])
        assert "edit each justification" in capsys.readouterr().out
        with pytest.raises(ValueError, match="placeholder"):
            Baseline.load(baseline)
        with pytest.raises(SystemExit, match="placeholder"):
            main(["lint", str(tmp_path), "--baseline", str(baseline)])

    def test_baseline_entries_require_justification(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {"rule": "RPR001", "path": "x.py", "snippet": "time.sleep(1)"}
                    ],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(baseline)

    def test_cli_rejects_unjustified_baseline(self, tmp_path):
        self.write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressions": [
                        {"rule": "RPR001", "path": "bad.py", "snippet": "time.sleep(1)"}
                    ],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(SystemExit, match="justification"):
            main(["lint", str(tmp_path), "--baseline", str(baseline)])


class TestRepoIsClean:
    def test_src_tree_has_no_violations(self):
        """The acceptance criterion: the shipped tree lints clean, unbaselined."""
        active, suppressed, checked = run_lint([REPO_ROOT / "src"])
        assert checked > 50
        assert active == [], "\n".join(
            f"{v.path}:{v.line}: {v.rule} {v.message}" for v in active
        )
        assert suppressed == []

    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        assert baseline.entries == []
