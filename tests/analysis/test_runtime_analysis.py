"""Tests for the runtime concurrency detectors (``repro.analysis.runtime``).

The contrived cases: a seeded ABBA interleaving must produce a lock-order
cycle, consistent orderings must not, and a foreign thread touching an
engine-owned structure must raise.  The real case (the acceptance
criterion): a wire-protocol campaign under chaos, run with every driver-layer
lock instrumented, must exercise the graph and report **no** cycles.
"""

import threading

import pytest

from repro.analysis import runtime
from repro.analysis.runtime import (
    InstrumentedCondition,
    InstrumentedLock,
    LockOrderGraph,
    LockOrderViolation,
    OwnershipViolation,
    ThreadOwnershipChecker,
)


def run_in_thread(fn, name):
    """Run ``fn`` on a named thread to completion, re-raising its error."""
    failures = []

    def wrapped():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - test harness relay
            failures.append(exc)

    thread = threading.Thread(target=wrapped, name=name, daemon=True)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive(), f"thread {name} hung"
    if failures:
        raise failures[0]


class TestLockOrderGraph:
    def test_abba_interleaving_is_detected(self):
        graph = LockOrderGraph()
        a = InstrumentedLock("A", graph)
        b = InstrumentedLock("B", graph)

        def a_then_b():
            with a:
                with b:
                    pass

        def b_then_a():
            with b:
                with a:
                    pass

        # Sequential execution is enough: the *ordering* is the hazard, the
        # detector must not need an actual deadlock to fire.
        run_in_thread(a_then_b, "abba-1")
        run_in_thread(b_then_a, "abba-2")
        cycles = graph.find_cycles()
        assert cycles, "ABBA ordering went undetected"
        assert sorted(cycles[0][:-1]) == ["A", "B"]
        with pytest.raises(LockOrderViolation, match="A -> B"):
            graph.assert_acyclic()

    def test_consistent_order_is_cycle_free(self):
        graph = LockOrderGraph()
        a = InstrumentedLock("A", graph)
        b = InstrumentedLock("B", graph)

        def ordered():
            with a:
                with b:
                    pass

        run_in_thread(ordered, "ordered-1")
        run_in_thread(ordered, "ordered-2")
        assert [e.to_dict()["held"] + "->" + e.to_dict()["acquired"] for e in graph.edges()] == [
            "A->B"
        ]
        assert graph.find_cycles() == []
        graph.assert_acyclic()

    def test_three_lock_cycle_detected(self):
        graph = LockOrderGraph()
        locks = {name: InstrumentedLock(name, graph) for name in "ABC"}
        for held, acquired in (("A", "B"), ("B", "C"), ("C", "A")):
            def nest(h=held, acq=acquired):
                with locks[h]:
                    with locks[acq]:
                        pass

            run_in_thread(nest, f"cycle-{held}{acquired}")
        cycles = graph.find_cycles()
        assert len(cycles) == 1
        assert sorted(cycles[0][:-1]) == ["A", "B", "C"]

    def test_reentrant_same_instance_is_not_an_edge(self):
        # Condition wraps an RLock, so re-entering the *same* instance is
        # legal and orders nothing.
        graph = LockOrderGraph()
        cond = InstrumentedCondition("shared", graph)
        with cond:
            with cond:
                pass
        assert graph.edges() == []
        assert graph.find_cycles() == []

    def test_same_role_distinct_instances_record_a_self_edge(self):
        # Two byte-pipe locks nested is the same-role ABBA hazard: thread 1
        # holds pipe A and takes pipe B while thread 2 does the reverse, and
        # collapsing to roles must not hide it.  One observed nesting is
        # already the cycle (the reverse order is symmetric by role).
        graph = LockOrderGraph()
        pipe_a = InstrumentedLock("byte-pipe", graph)
        pipe_b = InstrumentedLock("byte-pipe", graph)
        with pipe_a:
            with pipe_b:
                pass
        assert [(e.held, e.acquired) for e in graph.edges()] == [("byte-pipe", "byte-pipe")]
        assert graph.find_cycles() == [["byte-pipe", "byte-pipe"]]
        with pytest.raises(LockOrderViolation, match="byte-pipe -> byte-pipe"):
            graph.assert_acyclic()

    def test_condition_wait_releases_the_held_stack(self):
        # While a thread is parked in cond.wait() the lock is NOT held, so
        # another lock acquired right after wake must not create an edge
        # from a phantom holder.
        graph = LockOrderGraph()
        cond = InstrumentedCondition("cond", graph)
        other = InstrumentedLock("other", graph)

        def waiter():
            with cond:
                cond.wait(timeout=0.01)
            with other:
                pass

        run_in_thread(waiter, "waiter")
        assert [(e.held, e.acquired) for e in graph.edges()] == []

    def test_failed_wait_leaves_no_phantom_held_entry(self):
        # Waiting on an un-acquired condition raises inside the inner wait
        # before anything was released; the held stack must come back empty,
        # not with a phantom entry that poisons every later acquisition.
        graph = LockOrderGraph()
        cond = InstrumentedCondition("cond", graph)
        other = InstrumentedLock("other", graph)
        with pytest.raises(RuntimeError):
            cond.wait(timeout=0.01)
        with other:
            pass
        assert [(e.held, e.acquired) for e in graph.edges()] == []

    def test_report_shape(self):
        graph = LockOrderGraph()
        a = InstrumentedLock("A", graph)
        b = InstrumentedLock("B", graph)
        with a:
            with b:
                pass
        report = graph.to_dict()
        assert set(report) == {"acquisitions", "edges", "cycles"}
        assert report["acquisitions"] >= 2
        assert report["edges"] == [{"held": "A", "acquired": "B", "thread": "MainThread"}]
        assert report["cycles"] == []


class TestThreadOwnership:
    def test_first_touch_claims_then_foreign_thread_raises(self):
        checker = ThreadOwnershipChecker()
        owned = object()
        checker.touch(owned, "engine-side")
        checker.touch(owned, "engine-side")  # same thread: fine

        def foreign():
            with pytest.raises(OwnershipViolation, match="engine-side"):
                checker.touch(owned, "engine-side")

        run_in_thread(foreign, "foreign-toucher")
        assert checker.to_dict()["violations"] == [
            {
                "role": "engine-side",
                "object": "object",
                "owner_thread": "MainThread",
                "touching_thread": "foreign-toucher",
            }
        ]

    def test_distinct_instances_have_independent_owners(self):
        checker = ThreadOwnershipChecker()
        first, second = object(), object()
        checker.touch(first, "engine-side")

        def other_owner():
            checker.touch(second, "engine-side")

        run_in_thread(other_owner, "second-owner")
        assert checker.to_dict()["violations"] == []

    def test_bridge_engine_side_is_ownership_checked(self, instrumented_locks):
        from repro.wei.drivers.base import TransportTicket
        from repro.wei.drivers.bridge import CompletionBridge

        bridge = CompletionBridge()
        ticket = TransportTicket(
            ticket_id="t0", module="ot2", action="mix", duration_s=1.0
        )
        bridge.register(ticket)  # main thread claims the engine side

        def foreign_wait():
            with pytest.raises(OwnershipViolation):
                bridge.wait_for(ticket, timeout_s=0.01)

        run_in_thread(foreign_wait, "not-the-engine")
        assert instrumented_locks.ownership.violations


class TestActivationPlumbing:
    def test_factories_return_plain_primitives_when_disabled(self):
        assert runtime.current() is None or pytest.skip(
            "REPRO_ANALYSIS active process-wide"
        )
        lock = runtime.make_lock("x")
        cond = runtime.make_condition("x")
        assert isinstance(lock, type(threading.Lock()))
        assert isinstance(cond, threading.Condition)

    def test_factories_return_instrumented_primitives_when_active(
        self, instrumented_locks
    ):
        lock = runtime.make_lock("x")
        cond = runtime.make_condition("y")
        assert isinstance(lock, InstrumentedLock)
        assert isinstance(cond, InstrumentedCondition)
        assert lock.graph is instrumented_locks.graph
        assert cond.graph is instrumented_locks.graph

    def test_owner_check_is_a_noop_when_disabled(self):
        if runtime.current() is not None:
            pytest.skip("REPRO_ANALYSIS active process-wide")
        runtime.owner_check(object(), "anything")  # must not raise

    def test_instrumentation_context_manager(self):
        previous = runtime.current()
        with runtime.instrumentation() as instr:
            assert runtime.current() is instr
        assert runtime.current() is None
        if previous is not None:
            runtime.install(previous)


class TestRealLockGraphIsCycleFree:
    """The acceptance criterion: the shipped driver stack, instrumented."""

    def test_chaotic_wire_campaign_records_edges_and_no_cycles(
        self, instrumented_locks
    ):
        from repro.core.campaign import run_campaign
        from repro.wei.chaos import ChaosSchedule

        campaign = run_campaign(
            n_runs=2,
            samples_per_run=3,
            batch_size=3,
            seed=42,
            n_workcells=2,
            transport="wire",
            speedup=1_000_000.0,
            completion_timeout_s=60.0,
            chaos=ChaosSchedule(20230816),
        )
        assert campaign.n_runs == 2
        graph = instrumented_locks.graph
        # The campaign really ran through the instrumented stack ...
        assert graph.acquisitions > 100
        held = {edge.held for edge in graph.edges()} | {
            edge.acquired for edge in graph.edges()
        }
        assert {"byte-pipe"} <= held  # nested orderings were observed
        # ... and the shipped lock graph orders cleanly: no ABBA anywhere.
        assert graph.find_cycles() == []
        graph.assert_acyclic()
        # The engine side stayed single-threaded under chaos, too.
        assert instrumented_locks.ownership.violations == []

    def test_paced_transport_graph_is_cycle_free(self, instrumented_locks):
        from repro.core.campaign import run_campaign

        run_campaign(
            n_runs=2,
            samples_per_run=2,
            seed=7,
            transport="paced",
            speedup=1_000_000.0,
        )
        graph = instrumented_locks.graph
        assert graph.acquisitions > 0
        assert graph.find_cycles() == []


class TestDurablePortalConcurrency:
    """The durable store's lock joins the instrumented graph cleanly.

    8 threads ingest disjoint shard streams through ONE durable portal
    (the coordinator's streaming-ingest shape at fleet scale): every
    record must be visible exactly once, with zero lock-order violations
    and a cycle-free graph -- including when the ingest path interleaves
    with queries, compaction and an instrumented campaign.
    """

    N_THREADS = 8
    RUNS_PER_THREAD = 25

    def _shard_records(self, shard):
        from repro.publish.records import RunRecord, SampleRecord

        return [
            RunRecord(
                experiment_id=f"shard-exp-{shard}",
                run_id=f"shard{shard}-run{index}",
                run_index=index,
                target_rgb=[10.0, 20.0, 30.0],
                solver="evolutionary",
                samples=[
                    SampleRecord(
                        sample_index=0,
                        well="A1",
                        plate_barcode=f"plate-{shard}-{index}",
                        volumes_ul={"cyan": 4.0},
                        measured_rgb=[1.0, 2.0, 3.0],
                        score=float(index),
                    )
                ],
                metadata={"workcell": f"workcell-{shard}", "lane": shard},
            )
            for index in range(self.RUNS_PER_THREAD)
        ]

    def test_eight_shard_threads_ingest_exactly_once(
        self, instrumented_locks, portal_store_dir
    ):
        from repro.publish.store import DurableDataPortal

        store = DurableDataPortal(portal_store_dir, segment_max_bytes=8192)
        assert isinstance(store._lock, InstrumentedLock)
        failures = []
        barrier = threading.Barrier(self.N_THREADS)

        def shard_stream(shard):
            # Each shard serialises its own stream with a lane lock held
            # around ingest (the coordinator-shard shape), so the store's
            # lock nests under it and the ordering lands in the graph.
            lane_lock = runtime.make_lock("shard-lane")
            try:
                barrier.wait(timeout=10.0)
                for record in self._shard_records(shard):
                    with lane_lock:
                        store.ingest(record)
                    # Interleave reads with writes: queries must always see
                    # a record the moment its ingest returned.
                    assert store.version(record.run_id) == 1
                    assert store.get_run(record.run_id).run_id == record.run_id
            except BaseException as exc:  # noqa: BLE001 - test harness relay
                failures.append(exc)

        threads = [
            threading.Thread(target=shard_stream, args=(shard,), name=f"shard-{shard}", daemon=True)
            for shard in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "shard ingest thread hung"
        assert failures == []

        # Exactly-once visibility: every streamed record, no phantoms.
        total = self.N_THREADS * self.RUNS_PER_THREAD
        assert store.n_runs == total
        assert store.ingest_count == total
        assert store.n_experiments == self.N_THREADS
        run_ids = [record.run_id for record in store.search()]
        assert len(run_ids) == total and len(set(run_ids)) == total
        for shard in range(self.N_THREADS):
            assert store.summary_view(f"shard-exp-{shard}")["n_runs"] == self.RUNS_PER_THREAD

        # The store's lock reported to the graph, ordered cleanly under
        # the lane locks -- and no ABBA anywhere.
        graph = instrumented_locks.graph
        assert graph.acquisitions > total
        assert ("shard-lane", "durable-portal") in {
            (edge.held, edge.acquired) for edge in graph.edges()
        }
        assert graph.find_cycles() == []
        graph.assert_acyclic()
        assert instrumented_locks.ownership.violations == []
        store.close()

        # Replay agrees with what the 8 threads wrote.
        reopened = DurableDataPortal(portal_store_dir)
        assert reopened.recovery.clean
        assert reopened.n_runs == total
        reopened.close()

    def test_concurrent_ingest_with_maintenance_stays_acyclic(
        self, instrumented_locks, portal_store_dir
    ):
        from repro.publish.store import DurableDataPortal

        store = DurableDataPortal(portal_store_dir, segment_max_bytes=4096)
        failures = []
        stop = threading.Event()

        def shard_stream(shard):
            try:
                for record in self._shard_records(shard):
                    store.ingest(record)
            except BaseException as exc:  # noqa: BLE001 - test harness relay
                failures.append(exc)

        def maintenance():
            try:
                while not stop.is_set():
                    store.stats()
                    store.search_page(limit=5)
                    store.compact()
            except BaseException as exc:  # noqa: BLE001 - test harness relay
                failures.append(exc)

        workers = [
            threading.Thread(target=shard_stream, args=(shard,), name=f"shard-{shard}", daemon=True)
            for shard in range(4)
        ]
        janitor = threading.Thread(target=maintenance, name="portal-maintenance", daemon=True)
        for thread in workers:
            thread.start()
        janitor.start()
        for thread in workers:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "shard ingest thread hung"
        stop.set()
        janitor.join(timeout=30.0)
        assert not janitor.is_alive(), "maintenance thread hung"
        assert failures == []
        assert store.n_runs == 4 * self.RUNS_PER_THREAD
        graph = instrumented_locks.graph
        assert graph.find_cycles() == []
        graph.assert_acyclic()
        store.close()

    def test_campaign_streaming_into_durable_portal_is_cycle_free(
        self, instrumented_locks, portal_store_dir
    ):
        from repro.core.campaign import run_campaign
        from repro.publish.store import DurableDataPortal

        store = DurableDataPortal(portal_store_dir)
        campaign = run_campaign(
            n_runs=4,
            samples_per_run=2,
            seed=816,
            n_workcells=2,
            portal=store,
            experiment_id="durable-campaign",
        )
        assert campaign.n_runs == 4
        assert store.n_runs == 4
        # The coordinator streamed every record through the store's
        # instrumented lock, and the combined campaign + store lock graph
        # stays acyclic (the streaming path holds no other lock across
        # ingest, so the portal can never participate in an ABBA).
        graph = instrumented_locks.graph
        assert isinstance(store._lock, InstrumentedLock)
        assert graph.acquisitions > 0
        assert graph.find_cycles() == []
        graph.assert_acyclic()
        assert instrumented_locks.ownership.violations == []
        store.close()
        reopened = DurableDataPortal(portal_store_dir)
        assert reopened.recovery.clean
        assert {record.run_id for record in reopened.search()} == {
            record.run_id for record in store.search()
        }
        reopened.close()
