"""Tests for the figure/table regeneration helpers."""

import pytest

from repro.analysis.figure3 import figure3_views, render_figure3
from repro.analysis.figure4 import check_figure4_shape, figure4_series, render_figure4
from repro.analysis.table1 import render_table1, table1_comparison
from repro.core.batch import run_batch_sweep
from repro.core.campaign import run_campaign
from repro.core.metrics import PAPER_TABLE1, SdlMetrics


@pytest.fixture(scope="module")
def sweep():
    return run_batch_sweep(batch_sizes=(1, 8), n_samples=24, seed=5, measurement="direct")


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(n_runs=3, samples_per_run=4, seed=9, experiment_id="fig3-test")


class TestFigure4:
    def test_series_keys_are_batch_sizes(self, sweep):
        series = figure4_series(sweep)
        assert set(series) == {"1", "8"}
        times, best = series["1"]
        assert len(times) == 24

    def test_render_contains_plot_and_table(self, sweep):
        text = render_figure4(sweep)
        assert "Figure 4" in text
        assert "batch size" in text
        assert "legend" in text

    def test_shape_checks_on_reduced_sweep(self, sweep):
        checks = check_figure4_shape(sweep)
        assert checks["small_batches_slower"]
        assert checks["all_within_budget"]


class TestTable1:
    def _metrics(self):
        return SdlMetrics(
            time_without_humans_s=30000.0,
            commands_completed=390,
            synthesis_time_s=18500.0,
            transfer_time_s=11500.0,
            total_colors=128,
        )

    def test_comparison_covers_all_paper_rows(self):
        rows = table1_comparison(self._metrics())
        assert {row["key"] for row in rows} == set(PAPER_TABLE1)
        for row in rows:
            assert row["ratio"] > 0

    def test_render_mentions_paper_values(self):
        text = render_table1(self._metrics())
        assert "8 hours 12 mins" in text
        assert "387" in text
        assert "Measured" in text


class TestFigure3:
    def test_views_match_campaign(self, campaign):
        summary, detail = figure3_views(campaign)
        assert summary["n_runs"] == 3
        assert summary["total_samples"] == 12
        assert detail["run_index"] == 2
        assert len(detail["samples"]) == 4

    def test_detail_index_selection(self, campaign):
        _, detail = figure3_views(campaign, detail_run_index=0)
        assert detail["run_index"] == 0

    def test_render_contains_both_views(self, campaign):
        text = render_figure3(campaign)
        assert "summary view" in text
        assert "detail view" in text
        assert "measured RGB" in text
