"""Tests for the ASCII table / plot helpers."""

import numpy as np
import pytest

from repro.analysis.report import ascii_scatter, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "long header"], [[1, 2], ["xyz", 42]], title="My table")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "long header" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestAsciiScatter:
    def test_plot_contains_markers_and_legend(self):
        series = {
            "1": (np.array([0.0, 10.0]), np.array([30.0, 10.0])),
            "2": (np.array([5.0]), np.array([20.0])),
        }
        text = ascii_scatter(series, width=40, height=10, title="demo")
        assert "demo" in text
        assert "legend" in text
        assert "1=1" in text
        body = [line for line in text.splitlines() if line.startswith("|")]
        assert len(body) == 10
        assert any("1" in line for line in body)
        assert any("2" in line for line in body)

    def test_single_point_series(self):
        text = ascii_scatter({"x": (np.array([1.0]), np.array([1.0]))})
        assert "legend" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({})
        with pytest.raises(ValueError):
            ascii_scatter({"x": (np.array([]), np.array([]))})

    def test_duplicate_first_characters_get_distinct_markers(self):
        series = {
            "alpha": (np.array([0.0]), np.array([0.0])),
            "alps": (np.array([1.0]), np.array([1.0])),
        }
        text = ascii_scatter(series)
        assert "alpha" in text and "alps" in text
