"""Tests for the synthetic plate-image renderer."""

import numpy as np
import pytest

from repro.vision.render import PlateImageConfig, render_plate_image, well_pixel_centers


class TestConfig:
    def test_nominal_center_spacing(self):
        config = PlateImageConfig()
        a1 = config.nominal_center(0, 0)
        a2 = config.nominal_center(0, 1)
        b1 = config.nominal_center(1, 0)
        assert a2[0] - a1[0] == pytest.approx(config.well_pitch)
        assert b1[1] - a1[1] == pytest.approx(config.well_pitch)


class TestWellPixelCenters:
    def test_no_transform_matches_nominal(self, plate):
        config = PlateImageConfig()
        centers = well_pixel_centers(plate, config)
        assert centers["A1"] == pytest.approx(config.nominal_center(0, 0))
        assert centers["H12"] == pytest.approx(config.nominal_center(7, 11))

    def test_translation_shifts_all_wells(self, plate):
        config = PlateImageConfig()
        base = well_pixel_centers(plate, config)
        moved = well_pixel_centers(plate, config, offset=(5.0, -3.0))
        for name in ("A1", "D6", "H12"):
            assert moved[name][0] - base[name][0] == pytest.approx(5.0)
            assert moved[name][1] - base[name][1] == pytest.approx(-3.0)

    def test_rotation_preserves_pitch(self, plate):
        config = PlateImageConfig()
        rotated = well_pixel_centers(plate, config, rotation_deg=2.0)
        a1 = np.array(rotated["A1"])
        a2 = np.array(rotated["A2"])
        assert np.linalg.norm(a2 - a1) == pytest.approx(config.well_pitch, rel=1e-6)


class TestRender:
    def test_image_shape_and_range(self, filled_plate, chemistry, rng):
        image = render_plate_image(filled_plate, chemistry, rng=rng)
        assert image.shape == (480, 640, 3)
        assert image.min() >= 0.0 and image.max() <= 255.0

    def test_truth_contains_all_wells(self, filled_plate, chemistry, rng):
        _, truth = render_plate_image(filled_plate, chemistry, rng=rng, return_truth=True)
        assert len(truth["centers"]) == 96
        assert len(truth["colors"]) == 96

    def test_filled_well_color_matches_chemistry(self, filled_plate, chemistry):
        config = PlateImageConfig(pixel_noise_sigma=0.0, illumination_gradient=0.0, jitter_px=0.0, rotation_deg_sigma=0.0)
        image, truth = render_plate_image(
            filled_plate, chemistry, config=config, rng=np.random.default_rng(0), return_truth=True
        )
        name = filled_plate.used_wells[0]
        cx, cy = truth["centers"][name]
        pixel = image[int(round(cy)), int(round(cx))]
        np.testing.assert_allclose(pixel, truth["colors"][name], atol=1.0)

    def test_empty_wells_rendered_as_plate_colour(self, plate, chemistry):
        config = PlateImageConfig(pixel_noise_sigma=0.0, illumination_gradient=0.0, jitter_px=0.0, rotation_deg_sigma=0.0)
        image, truth = render_plate_image(plate, chemistry, config=config, rng=np.random.default_rng(0), return_truth=True)
        cx, cy = truth["centers"]["A1"]
        np.testing.assert_allclose(image[int(cy), int(cx)], config.empty_well_rgb, atol=1.0)

    def test_noise_free_render_is_deterministic(self, filled_plate, chemistry):
        config = PlateImageConfig(pixel_noise_sigma=0.0, jitter_px=0.0, rotation_deg_sigma=0.0)
        image_a = render_plate_image(filled_plate, chemistry, config=config, rng=np.random.default_rng(1))
        image_b = render_plate_image(filled_plate, chemistry, config=config, rng=np.random.default_rng(2))
        np.testing.assert_allclose(image_a, image_b)

    def test_seeded_render_reproducible(self, filled_plate, chemistry):
        image_a = render_plate_image(filled_plate, chemistry, rng=np.random.default_rng(5))
        image_b = render_plate_image(filled_plate, chemistry, rng=np.random.default_rng(5))
        np.testing.assert_allclose(image_a, image_b)
