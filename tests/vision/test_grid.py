"""Tests for well-grid fitting and completion."""

import numpy as np
import pytest

from repro.hardware.labware import well_names
from repro.vision.grid import complete_grid, fit_well_grid
from repro.vision.hough import CircleDetection


def make_detections(origin=(150.0, 130.0), pitch=34.0, rows=8, cols=12, drop=(), jitter=0.0, rng=None, rotation_deg=0.0):
    """Synthesise circle detections on a regular grid."""
    detections = []
    angle = np.radians(rotation_deg)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    for row in range(rows):
        for col in range(cols):
            if (row, col) in drop:
                continue
            x = col * pitch
            y = row * pitch
            rx = origin[0] + x * cos_a - y * sin_a
            ry = origin[1] + x * sin_a + y * cos_a
            if jitter and rng is not None:
                rx += rng.normal(0, jitter)
                ry += rng.normal(0, jitter)
            detections.append(CircleDetection(x=rx, y=ry, radius=13.0, votes=10.0))
    return detections


class TestFit:
    def test_perfect_grid_recovered_exactly(self):
        fit = fit_well_grid(make_detections(), pitch_guess=34.0)
        assert fit is not None
        assert fit.origin[0] == pytest.approx(150.0, abs=0.01)
        assert fit.origin[1] == pytest.approx(130.0, abs=0.01)
        assert fit.pitch == pytest.approx(34.0, abs=0.01)
        assert fit.rotation_deg == pytest.approx(0.0, abs=0.01)

    def test_pitch_estimated_when_not_given(self):
        fit = fit_well_grid(make_detections())
        assert fit.pitch == pytest.approx(34.0, abs=0.2)

    def test_missing_detections_do_not_bias_fit(self):
        drop = {(0, 0), (3, 5), (7, 11), (2, 2), (4, 9)}
        fit = fit_well_grid(make_detections(drop=drop), pitch_guess=34.0)
        assert fit.predict(0, 0)[0] == pytest.approx(150.0, abs=0.05)
        assert fit.predict(7, 11)[1] == pytest.approx(130.0 + 7 * 34.0, abs=0.05)

    def test_rotation_recovered(self):
        fit = fit_well_grid(make_detections(rotation_deg=1.5), pitch_guess=34.0)
        assert fit.rotation_deg == pytest.approx(1.5, abs=0.1)

    def test_jittered_detections_average_out(self):
        rng = np.random.default_rng(0)
        fit = fit_well_grid(make_detections(jitter=1.0, rng=rng), pitch_guess=34.0)
        assert fit.origin[0] == pytest.approx(150.0, abs=1.0)
        assert fit.residual < 2.0

    def test_too_few_detections_returns_none(self):
        detections = make_detections()[:3]
        assert fit_well_grid(detections) is None

    def test_single_row_falls_back_to_perpendicular_step(self):
        detections = make_detections(rows=1, cols=12)
        fit = fit_well_grid(detections, pitch_guess=34.0)
        assert fit is not None
        predicted_b1 = fit.predict(1, 0)
        assert predicted_b1[1] == pytest.approx(130.0 + 34.0, abs=0.5)

    def test_single_column_falls_back(self):
        detections = make_detections(rows=8, cols=1)
        fit = fit_well_grid(detections, pitch_guess=34.0)
        assert fit.predict(0, 1)[0] == pytest.approx(150.0 + 34.0, abs=0.5)


class TestCompleteGrid:
    def test_predicts_every_well(self):
        fit = fit_well_grid(make_detections(drop={(0, 0), (5, 5)}), pitch_guess=34.0)
        names = well_names(8, 12)
        centers = complete_grid(fit, names)
        assert len(centers) == 96
        assert centers["A1"][0] == pytest.approx(150.0, abs=0.1)
        assert centers["F6"][0] == pytest.approx(150.0 + 5 * 34.0, abs=0.1)
        assert centers["F6"][1] == pytest.approx(130.0 + 5 * 34.0, abs=0.1)

    def test_wrong_name_count_rejected(self):
        fit = fit_well_grid(make_detections(), pitch_guess=34.0)
        with pytest.raises(ValueError):
            complete_grid(fit, ["A1", "A2"])

    def test_predict_all_row_major(self):
        fit = fit_well_grid(make_detections(), pitch_guess=34.0)
        predictions = fit.predict_all()
        assert predictions.shape == (96, 2)
        np.testing.assert_allclose(predictions[0], [150.0, 130.0], atol=0.01)
        np.testing.assert_allclose(predictions[1], [184.0, 130.0], atol=0.01)
        np.testing.assert_allclose(predictions[12], [150.0, 164.0], atol=0.01)
