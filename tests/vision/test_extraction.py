"""Tests for the end-to-end well-colour extraction pipeline."""

import numpy as np
import pytest

from repro.vision.extraction import WellColorExtractor
from repro.vision.render import PlateImageConfig, render_plate_image


@pytest.fixture
def rendered(filled_plate, chemistry):
    rng = np.random.default_rng(99)
    image, truth = render_plate_image(filled_plate, chemistry, rng=rng, return_truth=True)
    return filled_plate, image, truth


class TestPipeline:
    def test_extracts_colors_for_all_wells(self, rendered):
        plate, image, truth = rendered
        result = WellColorExtractor().extract(image)
        assert len(result.well_colors) == 96
        assert len(result.well_centers) == 96

    def test_filled_well_colors_accurate(self, rendered):
        plate, image, truth = rendered
        result = WellColorExtractor().extract(image)
        errors = [
            np.linalg.norm(result.well_colors[name] - truth["colors"][name])
            for name in plate.used_wells
        ]
        assert np.mean(errors) < 10.0
        assert np.max(errors) < 20.0

    def test_well_centers_accurate(self, rendered):
        plate, image, truth = rendered
        result = WellColorExtractor().extract(image)
        errors = [
            np.hypot(
                result.well_centers[name][0] - truth["centers"][name][0],
                result.well_centers[name][1] - truth["centers"][name][1],
            )
            for name in plate.used_wells
        ]
        assert np.mean(errors) < 2.0

    def test_fiducial_and_grid_are_used(self, rendered):
        _, image, _ = rendered
        result = WellColorExtractor().extract(image)
        assert result.fiducial is not None and result.fiducial.found
        assert result.grid is not None
        assert result.used_grid_completion
        assert len(result.circles) >= 20

    def test_colors_for_helper_orders_by_request(self, rendered):
        plate, image, _ = rendered
        result = WellColorExtractor().extract(image)
        names = plate.used_wells[:5]
        colors = result.colors_for(names)
        assert colors.shape == (5, 3)
        np.testing.assert_allclose(colors[0], result.well_colors[names[0]])

    def test_grid_completion_ablation_still_returns_all_wells(self, rendered):
        _, image, _ = rendered
        result = WellColorExtractor(use_grid_completion=False).extract(image)
        assert len(result.well_colors) == 96
        assert not result.used_grid_completion


class TestFallbacks:
    def test_blank_frame_falls_back_to_nominal_geometry(self, chemistry, plate):
        config = PlateImageConfig()
        extractor = WellColorExtractor(config=config)
        blank = np.full((config.image_height, config.image_width, 3), 128.0)
        result = extractor.extract(blank)
        assert not result.fiducial.found
        assert result.grid is None
        assert result.well_centers["A1"] == pytest.approx(config.nominal_center(0, 0))

    def test_empty_plate_uses_nominal_or_grid_without_error(self, plate, chemistry):
        rng = np.random.default_rng(1)
        image = render_plate_image(plate, chemistry, rng=rng)
        result = WellColorExtractor().extract(image)
        assert len(result.well_colors) == 96

    def test_sample_color_at_border_does_not_crash(self, rendered):
        _, image, _ = rendered
        extractor = WellColorExtractor()
        color = extractor.sample_color(image, (0.0, 0.0))
        assert color.shape == (3,)


class TestVectorisedScoring:
    """``sample_colors`` (one numpy pass over all wells) must be bit-identical
    to per-well ``sample_color`` -- the reproduction's scores depend on it."""

    def test_matches_scalar_path_bitwise(self, rendered):
        _, image, truth = rendered
        extractor = WellColorExtractor()
        centers = truth["centers"]
        batched = extractor.sample_colors(image, centers)
        assert list(batched) == list(centers)  # caller's well order kept
        for name, center in centers.items():
            assert np.array_equal(batched[name], extractor.sample_color(image, center))

    def test_matches_reference_loop(self, rendered):
        from repro.bench.reference import reference_sample_colors

        _, image, truth = rendered
        extractor = WellColorExtractor()
        batched = extractor.sample_colors(image, truth["centers"])
        reference = reference_sample_colors(extractor, image, truth["centers"])
        assert list(batched) == list(reference)
        for name in reference:
            assert np.array_equal(batched[name], reference[name])

    def test_edge_clipped_and_offframe_wells_fall_back(self, rendered):
        _, image, _ = rendered
        extractor = WellColorExtractor()
        height, width = image.shape[:2]
        centers = {
            "interior": (width / 2.0, height / 2.0),
            "left_edge": (2.0, height / 2.0),
            "corner": (0.0, 0.0),
            "off_frame": (-50.0, -50.0),
            "right_edge": (width - 1.0, height - 2.0),
        }
        batched = extractor.sample_colors(image, centers)
        for name, center in centers.items():
            assert np.array_equal(batched[name], extractor.sample_color(image, center)), name

    def test_empty_centers(self, rendered):
        _, image, _ = rendered
        assert WellColorExtractor().sample_colors(image, {}) == {}
