"""Tests for the circular Hough transform."""

import numpy as np
import pytest

from repro.vision.hough import hough_circles


def draw_disk(image, cx, cy, radius, value):
    yy, xx = np.mgrid[0 : image.shape[0], 0 : image.shape[1]]
    mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= radius**2
    image[mask] = value


class TestSingleCircle:
    def test_detects_center_and_radius(self):
        image = np.full((120, 120), 220.0)
        draw_disk(image, 60, 55, 13, 60.0)
        detections = hough_circles(image, radii=[12, 13, 14])
        assert detections
        best = detections[0]
        assert best.x == pytest.approx(60, abs=2)
        assert best.y == pytest.approx(55, abs=2)
        assert best.radius == pytest.approx(13, abs=1.5)

    def test_no_circles_in_flat_image(self):
        image = np.full((100, 100), 128.0)
        assert hough_circles(image, radii=[10]) == []

    def test_straight_edges_do_not_create_circles(self):
        image = np.full((200, 200), 220.0)
        image[50:150, 50:150] = 40.0  # a large dark square: only straight edges
        detections = hough_circles(image, radii=[12, 13, 14], min_support=0.6)
        assert detections == []


class TestMultipleCircles:
    def test_grid_of_circles_all_found(self):
        image = np.full((200, 260), 225.0)
        centers = [(60 + 34 * i, 60 + 34 * j) for i in range(5) for j in range(3)]
        for cx, cy in centers:
            draw_disk(image, cx, cy, 13, 90.0)
        detections = hough_circles(image, radii=[13], min_distance=20)
        assert len(detections) == len(centers)
        found = {(round(d.x / 2), round(d.y / 2)) for d in detections}
        expected = {(round(cx / 2), round(cy / 2)) for cx, cy in centers}
        assert found == expected

    def test_max_circles_cap(self):
        image = np.full((200, 260), 225.0)
        for i in range(5):
            draw_disk(image, 40 + 40 * i, 100, 13, 90.0)
        detections = hough_circles(image, radii=[13], max_circles=3, min_distance=20)
        assert len(detections) == 3

    def test_roi_restricts_search(self):
        image = np.full((200, 300), 225.0)
        draw_disk(image, 60, 100, 13, 90.0)
        draw_disk(image, 240, 100, 13, 90.0)
        detections = hough_circles(image, radii=[13], roi=(0, 0, 150, 200))
        assert len(detections) == 1
        assert detections[0].x == pytest.approx(60, abs=2)

    def test_rgb_input_supported(self):
        image = np.full((120, 120, 3), 225.0)
        draw_disk(image, 60, 60, 13, np.array([90.0, 40.0, 40.0]))
        assert hough_circles(image, radii=[13])


class TestVotes:
    def test_detections_sorted_by_votes(self):
        image = np.full((160, 160), 225.0)
        draw_disk(image, 50, 80, 13, 40.0)    # strong contrast
        draw_disk(image, 110, 80, 13, 190.0)  # weak contrast
        detections = hough_circles(image, radii=[13], edge_threshold=0.1, vote_threshold=0.3)
        assert len(detections) >= 2
        votes = [d.votes for d in detections]
        assert votes == sorted(votes, reverse=True)
