"""Tests for fiducial-marker generation and detection."""

import numpy as np
import pytest

from repro.vision.fiducial import detect_fiducial, draw_fiducial, generate_fiducial


class TestGenerate:
    def test_size_and_contrast(self):
        marker = generate_fiducial(48)
        assert marker.shape == (48, 48)
        assert marker.min() == 0.0 and marker.max() == 255.0

    def test_border_is_black(self):
        marker = generate_fiducial(60)
        assert marker[0, :].max() == 0.0
        assert marker[:, 0].max() == 0.0
        assert marker[-1, :].max() == 0.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_fiducial(8)


class TestDetect:
    def _frame_with_marker(self, center, size=48, background=40.0):
        image = np.full((480, 640, 3), background)
        draw_fiducial(image, center=center, size=size)
        return image

    def test_detects_marker_at_known_position(self):
        image = self._frame_with_marker((100.0, 200.0))
        detection = detect_fiducial(image)
        assert detection.found
        assert detection.center[0] == pytest.approx(100.0, abs=3.0)
        assert detection.center[1] == pytest.approx(200.0, abs=3.0)
        assert detection.size == pytest.approx(48.0, abs=6.0)

    def test_detects_marker_at_various_positions(self):
        for center in [(60.0, 60.0), (500.0, 100.0), (300.0, 400.0)]:
            detection = detect_fiducial(self._frame_with_marker(center))
            assert detection.found
            assert np.hypot(detection.center[0] - center[0], detection.center[1] - center[1]) < 4.0

    def test_no_marker_returns_not_found(self):
        image = np.full((200, 200, 3), 180.0)
        detection = detect_fiducial(image)
        assert not detection.found
        assert detection.size == 0.0

    def test_small_dark_specks_ignored(self):
        image = np.full((200, 200, 3), 180.0)
        image[50:55, 50:55] = 0.0  # too small to be the marker
        assert not detect_fiducial(image).found

    def test_grayscale_input_supported(self):
        image = self._frame_with_marker((150.0, 150.0)).mean(axis=-1)
        assert detect_fiducial(image).found

    def test_noise_robustness(self):
        rng = np.random.default_rng(0)
        image = self._frame_with_marker((200.0, 250.0))
        image = np.clip(image + rng.normal(0, 4.0, image.shape), 0, 255)
        detection = detect_fiducial(image)
        assert detection.found
        assert detection.center[0] == pytest.approx(200.0, abs=4.0)
