"""Property tests: the durable portal is observably identical to the
in-memory one.

The in-memory :class:`DataPortal` is the *model*: it lives through the
entire operation sequence in one process.  The durable
:class:`DurableDataPortal` is the *subject*: it suffers random reopens
(close + replay from segments) and compactions mid-sequence.  Both receive
the same random interleaving of ``ingest`` / duplicate ``ingest`` /
``ingest(overwrite=True)`` / ``search`` drawn from a seeded generator
(seed in the test id, like the codec-equivalence suite), and every
observable -- search results and views as dicts, versions, counters,
pagination pages, ``DuplicateRunError`` messages -- must match exactly.

Records are built from JSON-safe values only (Python floats round-trip
through ``json.dumps``/``loads`` exactly), so dict equality is the same
thing as byte equality of the serialised forms.
"""

import numpy as np
import pytest

from repro.publish.portal import DataPortal, DuplicateRunError
from repro.publish.records import RunRecord, SampleRecord
from repro.publish.store import DurableDataPortal

PARITY_SEEDS = [0, 1, 2, 3, 4, 5, 6, 7]

EXPERIMENTS = ["exp-alpha", "exp-beta", "exp-gamma", "exp-delta"]
SOLVERS = ["evolutionary", "bayesian", "grid"]


def random_record(rng: np.random.Generator, run_id: str, run_index: int) -> RunRecord:
    n_samples = int(rng.integers(0, 4))
    return RunRecord(
        experiment_id=EXPERIMENTS[int(rng.integers(len(EXPERIMENTS)))],
        run_id=run_id,
        run_index=run_index,
        target_rgb=[float(v) for v in rng.uniform(0, 255, 3)],
        solver=SOLVERS[int(rng.integers(len(SOLVERS)))],
        samples=[
            SampleRecord(
                sample_index=index,
                well=f"A{index + 1}",
                plate_barcode=f"plate-{run_index}",
                volumes_ul={"cyan": float(rng.uniform(0, 40)), "magenta": float(rng.uniform(0, 40))},
                measured_rgb=[float(v) for v in rng.uniform(0, 255, 3)],
                score=float(rng.uniform(0, 120)),
            )
            for index in range(n_samples)
        ],
        timings={"mix_s": float(rng.uniform(0, 60))},
        metadata={"lane": int(rng.integers(4)), "chaos": bool(rng.integers(2))},
    )


def random_filters(rng: np.random.Generator) -> dict:
    filters = {}
    if rng.random() < 0.4:
        filters["experiment_id"] = EXPERIMENTS[int(rng.integers(len(EXPERIMENTS)))]
    if rng.random() < 0.4:
        filters["solver"] = SOLVERS[int(rng.integers(len(SOLVERS)))]
    if rng.random() < 0.3:
        filters["max_best_score"] = float(rng.uniform(0, 130))
    if rng.random() < 0.2:
        filters["metadata"] = {"lane": int(rng.integers(4))}
    return filters


def assert_observably_identical(model: DataPortal, subject: DurableDataPortal, rng):
    assert subject.n_runs == model.n_runs
    assert subject.n_experiments == model.n_experiments
    assert subject.experiment_ids() == model.experiment_ids()
    assert subject.ingest_count == model.ingest_count
    filters = random_filters(rng)
    model_hits = model.search(**filters)
    subject_hits = subject.search(**filters)
    assert [r.to_dict() for r in subject_hits] == [r.to_dict() for r in model_hits]
    for record in model_hits[:3]:
        assert subject.version(record.run_id) == model.version(record.run_id)
        assert subject.detail_view(record.run_id) == model.detail_view(record.run_id)
    for experiment_id in model.experiment_ids()[:2]:
        assert subject.summary_view(experiment_id) == model.summary_view(experiment_id)
        assert (
            subject.get_experiment(experiment_id).to_dict()
            == model.get_experiment(experiment_id).to_dict()
        )


def walk_pages(portal, limit, filters):
    pages, cursor = [], None
    while True:
        page = portal.search_page(limit=limit, cursor=cursor, **filters)
        pages.append(page)
        cursor = page.next_cursor
        if cursor is None:
            return pages


class TestPortalParity:
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_random_interleavings_are_observably_identical(self, seed, portal_store_dir):
        rng = np.random.default_rng(seed)
        model = DataPortal()
        subject = DurableDataPortal(portal_store_dir, segment_max_bytes=2048)
        ingested = []
        try:
            for step in range(70):
                choice = rng.random()
                if choice < 0.45 or not ingested:
                    # Fresh ingest.
                    run_id = f"run-{seed}-{step:03d}"
                    record = random_record(rng, run_id, step)
                    model.ingest(record)
                    subject.ingest(record)
                    ingested.append(run_id)
                elif choice < 0.60:
                    # Duplicate ingest: both must refuse with the same message.
                    victim = ingested[int(rng.integers(len(ingested)))]
                    record = random_record(rng, victim, step)
                    with pytest.raises(DuplicateRunError) as model_error:
                        model.ingest(record)
                    with pytest.raises(DuplicateRunError) as subject_error:
                        subject.ingest(record)
                    assert str(subject_error.value) == str(model_error.value)
                elif choice < 0.80:
                    # Versioned overwrite (may move the run across experiments).
                    victim = ingested[int(rng.integers(len(ingested)))]
                    record = random_record(rng, victim, step)
                    model.ingest(record, overwrite=True)
                    subject.ingest(record, overwrite=True)
                elif choice < 0.90:
                    # Reopen the subject only -- the model never dies, so this
                    # proves replay reconstructs the exact observable state.
                    subject.close()
                    subject = DurableDataPortal(portal_store_dir, segment_max_bytes=2048)
                    assert subject.recovery.clean
                else:
                    subject.compact()
                if step % 7 == 0:
                    assert_observably_identical(model, subject, rng)
            assert_observably_identical(model, subject, rng)

            # Full pagination walk must match page-for-page, cursor-for-cursor.
            filters = random_filters(rng)
            limit = int(rng.integers(1, 9))
            model_pages = walk_pages(model, limit, filters)
            subject_pages = walk_pages(subject, limit, filters)
            assert len(subject_pages) == len(model_pages)
            for model_page, subject_page in zip(model_pages, subject_pages):
                assert subject_page.to_dict() == model_page.to_dict()

            # And one final reopen serves the same state as the living model.
            subject.close()
            subject = DurableDataPortal(portal_store_dir, segment_max_bytes=2048)
            assert_observably_identical(model, subject, rng)
            for run_id in ingested:
                assert subject.version(run_id) == model.version(run_id)
                assert subject.get_run(run_id).to_dict() == model.get_run(run_id).to_dict()
        finally:
            subject.close()
