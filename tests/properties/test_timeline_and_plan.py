"""Property-style tests for resource timelines and the parallel-mix planner.

Randomised (but deterministically seeded) checks of the invariants the
concurrent engine and the Section 4 ablation rely on:

* :class:`ResourceTimeline` interval clipping in ``utilisation`` and the
  gap/busy partition produced by ``idle_gaps``,
* :func:`plan_parallel_mixes` producing physically possible schedules.
"""

import numpy as np
import pytest

from repro.sim.resources import ResourceTimeline
from repro.wei.scheduler import plan_parallel_mixes


def random_timeline(rng, n=20):
    timeline = ResourceTimeline("prop")
    for _ in range(n):
        timeline.reserve(float(rng.uniform(0, 500)), float(rng.uniform(0, 60)))
    return timeline


class TestResourceTimelineProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_utilisation_clips_intervals_to_horizon(self, seed):
        rng = np.random.default_rng(seed)
        timeline = random_timeline(rng)
        for horizon in (1.0, 100.0, timeline.available_at, timeline.available_at * 2):
            busy_inside = sum(
                max(0.0, min(end, horizon) - min(start, horizon))
                for start, end in timeline.intervals
            )
            assert timeline.utilisation(horizon) == pytest.approx(busy_inside / horizon)
            assert 0.0 <= timeline.utilisation(horizon) <= 1.0

    def test_utilisation_with_horizon_inside_an_interval(self):
        timeline = ResourceTimeline("clip")
        timeline.reserve(10.0, 10.0)  # busy [10, 20]
        assert timeline.utilisation(15.0) == pytest.approx(5.0 / 15.0)
        assert timeline.utilisation(10.0) == pytest.approx(0.0)
        assert timeline.utilisation(20.0) == pytest.approx(0.5)

    def test_utilisation_requires_positive_horizon(self):
        timeline = ResourceTimeline("empty")
        with pytest.raises(ValueError):
            timeline.utilisation(0.0)
        with pytest.raises(ValueError):
            timeline.utilisation(-5.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_gaps_and_busy_partition_the_horizon(self, seed):
        rng = np.random.default_rng(100 + seed)
        timeline = random_timeline(rng)
        gaps = timeline.idle_gaps()
        # Gaps never overlap reservations and are strictly positive.
        for start, end in gaps:
            assert end > start
            for b_start, b_end in timeline.intervals:
                assert end <= b_start + 1e-9 or start >= b_end - 1e-9
        # Together, gaps and busy time tile [0, available_at] exactly.
        total_gap = sum(end - start for start, end in gaps)
        assert total_gap + timeline.busy_time == pytest.approx(timeline.available_at)

    def test_no_gaps_for_back_to_back_reservations(self):
        timeline = ResourceTimeline("dense")
        timeline.reserve(0.0, 5.0)
        timeline.reserve(0.0, 5.0)  # pushed back to [5, 10]
        assert timeline.idle_gaps() == []

    def test_leading_gap_reported(self):
        timeline = ResourceTimeline("late")
        timeline.reserve(7.0, 1.0)
        assert timeline.idle_gaps() == [(0.0, 7.0)]


class TestParallelMixPlanInvariants:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("n_ot2", [1, 2, 3])
    def test_no_overlapping_reservations_per_device(self, seed, n_ot2):
        rng = np.random.default_rng(seed)
        batch_sizes = [int(v) for v in rng.integers(1, 24, size=10)]
        plan = plan_parallel_mixes(batch_sizes, n_ot2=n_ot2)
        for name, timeline in plan.timelines.items():
            intervals = sorted(timeline.intervals)
            for (_, end), (start, _) in zip(intervals, intervals[1:]):
                assert start >= end - 1e-9, f"device {name} double-booked"

    @pytest.mark.parametrize("seed", range(4))
    def test_deck_free_respected_per_ot2(self, seed):
        rng = np.random.default_rng(50 + seed)
        batch_sizes = [int(v) for v in rng.integers(1, 16, size=12)]
        plan = plan_parallel_mixes(batch_sizes, n_ot2=2)
        by_ot2 = {}
        for batch in plan.batches:
            by_ot2.setdefault(batch.ot2_name, []).append(batch)
        for batches in by_ot2.values():
            batches.sort(key=lambda batch: batch.transfer_in[0])
            for previous, current in zip(batches, batches[1:]):
                # A new plate cannot load onto the deck before the previous
                # one has been carried away.
                assert current.transfer_in[0] >= previous.transfer_out[1] - 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_makespan_monotone_non_increasing_in_n_ot2(self, seed):
        rng = np.random.default_rng(200 + seed)
        batch_sizes = [int(v) for v in rng.integers(1, 32, size=8)]
        makespans = [plan_parallel_mixes(batch_sizes, n_ot2=n).makespan for n in (1, 2, 4, 8)]
        for wider, narrower in zip(makespans[1:], makespans[:-1]):
            assert wider <= narrower + 1e-9

    def test_stage_chain_ordering_within_each_batch(self):
        plan = plan_parallel_mixes([4] * 6, n_ot2=2)
        for batch in plan.batches:
            assert batch.transfer_in[1] <= batch.mix[0] + 1e-9
            assert batch.mix[1] <= batch.transfer_out[0] + 1e-9
            assert batch.transfer_out[1] <= batch.imaging[0] + 1e-9
