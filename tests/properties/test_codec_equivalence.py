"""Property tests: the optimised frame codec is indistinguishable from the
pre-optimisation implementation.

The optimisation pass (see ``docs/performance.md``) rewrote ``encode_frame``
and ``FrameDecoder.feed`` for speed.  The wire format is a compatibility
surface -- a new encoder talking to an old decoder (or vice versa) must work
-- so these tests drive both implementations, frozen verbatim in
:mod:`repro.bench.reference`, through randomised traffic and assert
byte-identical encodes and frame-identical, counter-identical decodes across
fragmentation boundaries, corruption and truncation.
"""

import numpy as np
import pytest

from repro.bench.reference import ReferenceFrameDecoder, reference_encode_frame
from repro.wei.drivers.protocol import (
    FRAME_KINDS,
    MAGIC,
    Frame,
    FrameDecoder,
    encode_frame,
)


def random_frame(rng: np.random.Generator, seq: int) -> Frame:
    kind = FRAME_KINDS[int(rng.integers(0, len(FRAME_KINDS)))]
    choice = int(rng.integers(0, 4))
    if choice == 0:
        payload = {}
    elif choice == 1:
        payload = {"ticket_id": f"wire:{seq}", "duration_s": float(rng.uniform(0, 100))}
    elif choice == 2:
        payload = {
            "result": {"rgb": rng.uniform(0, 255, 3).tolist(), "ok": bool(seq % 2)},
            "unicode": "µl-é中文",
            "nested": {"empty": {}, "list": [1, None, "x"]},
        }
    else:
        payload = {f"k{i}": i * 0.5 for i in range(int(rng.integers(1, 20)))}
    return Frame(kind=kind, seq=seq, payload=payload)


def random_frames(seed: int, count: int):
    rng = np.random.default_rng(seed)
    return rng, [random_frame(rng, seq) for seq in range(count)]


class TestEncodeEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_byte_identical_across_random_frames(self, seed):
        _, frames = random_frames(seed, 200)
        for frame in frames:
            assert encode_frame(frame) == reference_encode_frame(frame)

    def test_empty_payload_fast_path_matches(self):
        frame = Frame(kind="ACK", seq=7, payload={})
        assert encode_frame(frame) == reference_encode_frame(frame)

    def test_oversize_body_still_rejected(self):
        from repro.wei.drivers.protocol import FrameError

        frame = Frame(kind="SUBMIT", seq=0, payload={"blob": "x" * (1 << 16)})
        with pytest.raises(FrameError):
            encode_frame(frame)
        with pytest.raises(FrameError):
            reference_encode_frame(frame)


def corrupt(stream: bytearray, rng: np.random.Generator) -> bytearray:
    """Flip bytes, inject garbage (including stray magic), truncate a tail."""
    data = bytearray(stream)
    for _ in range(int(rng.integers(1, 20))):
        data[int(rng.integers(0, len(data)))] ^= int(rng.integers(1, 256))
    for _ in range(int(rng.integers(0, 4))):
        at = int(rng.integers(0, len(data)))
        junk = bytes(rng.integers(0, 256, size=int(rng.integers(1, 40)), dtype=np.uint8))
        data[at:at] = MAGIC + junk if rng.random() < 0.5 else junk
    if rng.random() < 0.5:
        data = data[: len(data) - int(rng.integers(1, 12))]
    return data


def feed_fragmented(decoder, stream: bytes, cuts) -> list:
    frames = []
    position = 0
    for cut in cuts:
        frames.extend(decoder.feed(stream[position:cut]))
        position = cut
    frames.extend(decoder.feed(stream[position:]))
    return frames


class TestDecodeEquivalence:
    @pytest.mark.parametrize("seed", [10, 11, 12, 13, 14, 15, 16, 17])
    def test_chaotic_fragmented_streams_decode_identically(self, seed):
        rng, frames = random_frames(seed, 120)
        stream = bytearray(b"".join(encode_frame(frame) for frame in frames))
        if rng.random() < 0.7:
            stream = corrupt(stream, rng)
        stream = bytes(stream)
        n_cuts = int(rng.integers(0, 40))
        cuts = sorted(int(c) for c in rng.integers(0, len(stream) + 1, size=n_cuts))

        new_decoder, old_decoder = FrameDecoder(), ReferenceFrameDecoder()
        new_frames = feed_fragmented(new_decoder, stream, cuts)
        old_frames = feed_fragmented(old_decoder, stream, cuts)

        assert new_frames == old_frames
        assert new_decoder.frames_decoded == old_decoder.frames_decoded
        assert new_decoder.crc_errors == old_decoder.crc_errors

    def test_byte_at_a_time_matches_bulk(self):
        _, frames = random_frames(99, 30)
        stream = b"".join(encode_frame(frame) for frame in frames)
        trickle = FrameDecoder()
        decoded = []
        for offset in range(len(stream)):
            decoded.extend(trickle.feed(stream[offset : offset + 1]))
        assert decoded == frames
        assert FrameDecoder().feed(stream) == frames

    def test_truncated_final_frame_held_back_identically(self):
        _, frames = random_frames(5, 10)
        stream = b"".join(encode_frame(frame) for frame in frames)
        for keep in (len(stream) - 1, len(stream) - 5, len(stream) - 11):
            new_decoder, old_decoder = FrameDecoder(), ReferenceFrameDecoder()
            assert new_decoder.feed(stream[:keep]) == old_decoder.feed(stream[:keep])
            # The held-back tail completes on the next feed for both.
            assert new_decoder.feed(stream[keep:]) == old_decoder.feed(stream[keep:])


class TestResyncLinearity:
    """The decoder's garbage-prefix scan must be linear, not quadratic.

    The old decoder re-scanned from offset 0 after every resync; the fix
    tracks a scan offset.  Equivalence of *output* is covered above; this
    checks the new decoder actually digests a large corrupt prefix without
    the quadratic re-slicing blow-up (a loose wall-clock bound, generous
    enough for CI noise, that the quadratic version misses by an order of
    magnitude).
    """

    def test_large_corrupt_prefix_is_digested_linearly(self):
        import time

        rng = np.random.default_rng(123)
        # 200 KB of garbage laced with magic bytes (worst case: each magic
        # triggers a resync attempt), then one valid frame.
        garbage = bytearray(rng.integers(0, 256, size=200_000, dtype=np.uint8))
        for at in range(0, len(garbage) - 2, 97):
            garbage[at : at + 2] = MAGIC
        frame = Frame(kind="COMPLETE", seq=1, payload={"ok": True})
        stream = bytes(garbage) + encode_frame(frame)

        decoder = FrameDecoder()
        start = time.perf_counter()
        decoded = []
        for position in range(0, len(stream), 4096):
            decoded.extend(decoder.feed(stream[position : position + 4096]))
        elapsed = time.perf_counter() - start

        assert decoded == [frame]
        assert decoder.crc_errors > 0
        assert elapsed < 5.0  # the quadratic decoder takes minutes here

    def test_scan_offset_survives_buffer_compaction(self):
        # Feed garbage far beyond the compaction threshold, then frames.
        rng = np.random.default_rng(7)
        garbage = bytes(rng.integers(0, 256, size=20_000, dtype=np.uint8))
        _, frames = random_frames(8, 20)
        stream = garbage + b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        decoded = []
        for position in range(0, len(stream), 1000):
            decoded.extend(decoder.feed(stream[position : position + 1000]))
        assert decoded == frames
