"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.color.distance import delta_e_cie76, delta_e_ciede2000, euclidean_rgb
from repro.color.mixing import SubtractiveMixingModel
from repro.color.spaces import lab_to_xyz, linear_rgb_to_xyz, linear_to_srgb, srgb_to_linear, xyz_to_lab
from repro.core.protocol import build_mix_protocol, ratios_to_volumes
from repro.sim.durations import DurationModel
from repro.sim.resources import ResourceTimeline
from repro.solvers.evolutionary import EvolutionarySolver
from repro.utils import yamlite
from repro.utils.units import format_duration, parse_duration

SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

rgb_values = st.floats(min_value=0.0, max_value=255.0, allow_nan=False)
rgb_colors = st.tuples(rgb_values, rgb_values, rgb_values).map(np.array)
ratio_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=4, max_size=4
).map(np.array)


# ---------------------------------------------------------------------------
# Colour spaces and distances
# ---------------------------------------------------------------------------


class TestColorProperties:
    @SETTINGS
    @given(rgb_colors)
    def test_srgb_linear_round_trip(self, rgb):
        np.testing.assert_allclose(linear_to_srgb(srgb_to_linear(rgb)), rgb, atol=1e-6)

    @SETTINGS
    @given(rgb_colors)
    def test_lab_round_trip_through_xyz(self, rgb):
        xyz = linear_rgb_to_xyz(srgb_to_linear(rgb))
        np.testing.assert_allclose(lab_to_xyz(xyz_to_lab(xyz)), xyz, atol=1e-8)

    @SETTINGS
    @given(rgb_colors, rgb_colors)
    def test_distances_are_symmetric_and_nonnegative(self, a, b):
        for metric in (euclidean_rgb, delta_e_cie76, delta_e_ciede2000):
            d_ab = float(metric(a, b))
            d_ba = float(metric(b, a))
            assert d_ab >= -1e-9
            assert d_ab == pytest.approx(d_ba, rel=1e-6, abs=1e-6)

    @SETTINGS
    @given(rgb_colors)
    def test_distance_identity(self, a):
        assert float(euclidean_rgb(a, a)) == 0.0
        assert float(delta_e_cie76(a, a)) == pytest.approx(0.0, abs=1e-9)

    @SETTINGS
    @given(rgb_colors, rgb_colors, rgb_colors)
    def test_euclidean_triangle_inequality(self, a, b, c):
        assert float(euclidean_rgb(a, c)) <= float(euclidean_rgb(a, b)) + float(
            euclidean_rgb(b, c)
        ) + 1e-9


class TestMixingProperties:
    chemistry = SubtractiveMixingModel()

    @SETTINGS
    @given(
        st.lists(st.floats(min_value=0.0, max_value=275.0, allow_nan=False), min_size=4, max_size=4)
    )
    def test_colors_within_srgb_gamut(self, volumes):
        color = self.chemistry.mix(np.array(volumes))
        assert np.all(color >= 0.0) and np.all(color <= 255.0)

    @SETTINGS
    @given(
        st.lists(st.floats(min_value=0.0, max_value=200.0, allow_nan=False), min_size=4, max_size=4),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=1.0, max_value=60.0),
    )
    def test_adding_dye_never_brightens(self, volumes, dye_index, extra):
        base = np.array(volumes)
        more = base.copy()
        more[dye_index] = min(more[dye_index] + extra, 275.0)
        color_base = self.chemistry.mix(base)
        color_more = self.chemistry.mix(more)
        assert np.all(color_more <= color_base + 1e-9)


# ---------------------------------------------------------------------------
# Protocol generation
# ---------------------------------------------------------------------------


class TestProtocolProperties:
    DYES = ("cyan", "magenta", "yellow", "black")

    @SETTINGS
    @given(st.lists(ratio_vectors, min_size=1, max_size=8))
    def test_volumes_respect_bounds_and_minimum_dispense(self, rows):
        ratios = np.stack(rows)
        volumes = ratios_to_volumes(ratios, 80.0)
        assert np.all(volumes >= 0.0) and np.all(volumes <= 80.0)
        assert np.all((volumes == 0.0) | (volumes >= 1.0))

    @SETTINGS
    @given(st.lists(ratio_vectors, min_size=1, max_size=8))
    def test_protocol_step_per_well_and_positive_volumes(self, rows):
        ratios = np.stack(rows)
        wells = [f"A{i + 1}" for i in range(len(rows))]
        protocol = build_mix_protocol("p", wells, ratios, self.DYES, 80.0)
        assert protocol.n_wells == len(rows)
        for step in protocol.steps:
            assert step.total_volume() > 0.0
            assert all(volume > 0 for volume in step.volumes_ul.values())


# ---------------------------------------------------------------------------
# Simulation primitives
# ---------------------------------------------------------------------------


class TestSimulationProperties:
    @SETTINGS
    @given(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_duration_samples_never_below_minimum(self, base, cv, seed):
        model = DurationModel(base_s=base, jitter_cv=cv, minimum_s=0.5)
        assert model.sample(np.random.default_rng(seed)) >= 0.5

    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_resource_timeline_reservations_never_overlap(self, requests):
        timeline = ResourceTimeline("r")
        for requested_start, duration in requests:
            timeline.reserve(requested_start, duration)
        intervals = timeline.intervals
        for (start_a, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert start_b >= end_a - 1e-9
        assert timeline.busy_time <= timeline.available_at + 1e-9


# ---------------------------------------------------------------------------
# Solvers
# ---------------------------------------------------------------------------


class TestSolverProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=2**16))
    def test_ga_proposals_always_valid(self, batch_size, seed):
        solver = EvolutionarySolver(seed=seed, population_size=8)
        ratios = solver.propose(batch_size)
        assert ratios.shape == (batch_size, 4)
        assert np.all(ratios >= 0.0) and np.all(ratios <= 1.0)
        assert np.all(ratios.sum(axis=1) > 0.0)

    @SETTINGS
    @given(
        st.lists(st.floats(min_value=0.0, max_value=300.0, allow_nan=False), min_size=8, max_size=8),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_ga_best_score_is_minimum_of_history(self, scores, seed):
        solver = EvolutionarySolver(seed=seed, population_size=8)
        ratios = solver.propose(8)
        solver.observe(ratios, np.zeros((8, 3)), np.array(scores))
        assert solver.best_score == pytest.approx(min(scores))


# ---------------------------------------------------------------------------
# Serialisation formats
# ---------------------------------------------------------------------------

yaml_scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.none(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters=" _-"),
        max_size=12,
    ),
)
yaml_values = st.recursive(
    yaml_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Lu"), whitelist_characters="_"),
                min_size=1,
                max_size=8,
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


class TestSerialisationProperties:
    @SETTINGS
    @given(st.dictionaries(st.sampled_from(["a", "b", "c", "key", "name"]), yaml_values, max_size=4))
    def test_yamlite_round_trip(self, value):
        assert yamlite.loads(yamlite.dumps(value)) == value

    @SETTINGS
    @given(st.integers(min_value=60, max_value=10**6))
    def test_duration_format_parse_round_trip_to_minute_precision(self, seconds):
        parsed = parse_duration(format_duration(seconds))
        assert abs(parsed - seconds) <= 30.0
