"""Property tests: `CompletionBridge` under randomized thread interleavings.

The bridge is the one object both the engine thread and every driver thread
touch, so its contract must hold under *arbitrary* interleavings, not just
the ones the reference transports happen to produce:

* every ticket's completion is delivered exactly once, no matter how many
  threads race duplicate copies at it -- each extra copy is rejected as a
  duplicate, whether it lands while the original is pending or after it was
  consumed;
* a completion arriving after the engine gave up (``wait_for`` timed out) is
  always rejected as late, never resurrected;
* no delivery is ever in-band: every completion the engine consumes was
  posted from some other thread.

Each test case is a randomized schedule -- ticket fates, per-post thread
assignment and jitter all drawn from ``random.Random(seed)`` -- and the
seed is baked into the test id and every assertion message, so a failure
names the exact schedule to replay.
"""

import random
import threading

import pytest

from repro.wei.drivers import CompletionBridge, CompletionTimeout, TransportCompletion, TransportTicket

#: The schedule seeds this suite runs; a failure's test id names the seed to
#: replay (e.g. ``test_interleaved_posting_contract[seed=5]``).
SEEDS = range(8)


def make_ticket(index):
    return TransportTicket(
        ticket_id=f"prop:{index}", module=f"m{index % 3}", action="act", duration_s=1.0
    )


def posted_completion(ticket):
    """A completion stamped with the *calling* thread (the workers use this)."""
    return TransportCompletion.for_ticket(ticket)


@pytest.mark.parametrize("seed", SEEDS, ids=lambda seed: f"seed={seed}")
def test_interleaved_posting_contract(seed):
    rng = random.Random(seed)
    n_tickets = rng.randint(10, 24)
    fates = {}
    for index in range(n_tickets):
        fates[index] = rng.choice(
            ["normal"] * 6 + ["duplicate"] * 2 + ["double-duplicate"] + ["late"] * 2
        )
    tickets = {index: make_ticket(index) for index in range(n_tickets)}
    extra_copies = {"duplicate": 1, "double-duplicate": 2}

    bridge = CompletionBridge()
    for index in range(n_tickets):
        bridge.register(tickets[index])

    #: Set by the engine once a late ticket's wait_for has timed out; that
    #: ticket's dedicated poster waits for it, so late posts are *always*
    #: late (and never block the shared workers' normal/duplicate posts).
    timed_out_events = {
        index: threading.Event() for index, fate in fates.items() if fate == "late"
    }
    jobs = []
    for index, fate in fates.items():
        if fate != "late":
            jobs.extend([index] * (1 + extra_copies.get(fate, 0)))
    rng.shuffle(jobs)
    n_workers = rng.randint(2, 4)
    assignments = [jobs[worker::n_workers] for worker in range(n_workers)]
    accepted_counts = {index: 0 for index in range(n_tickets)}
    rejected_counts = {index: 0 for index in range(n_tickets)}
    counts_lock = threading.Lock()
    worker_errors = []

    def post_and_count(index):
        accepted = bridge.post(posted_completion(tickets[index]))
        with counts_lock:
            if accepted:
                accepted_counts[index] += 1
            else:
                rejected_counts[index] += 1

    def worker(worker_jobs, worker_rng_seed):
        worker_rng = random.Random(worker_rng_seed)
        try:
            for index in worker_jobs:
                if worker_rng.random() < 0.5:
                    threading.Event().wait(worker_rng.random() * 0.002)
                post_and_count(index)
        except BaseException as exc:  # surfaced by the main thread below
            worker_errors.append(exc)

    def late_poster(index):
        try:
            if not timed_out_events[index].wait(10.0):
                raise AssertionError(f"seed={seed}: engine never timed out ticket {index}")
            post_and_count(index)
        except BaseException as exc:
            worker_errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(assignment, seed * 1000 + position))
        for position, assignment in enumerate(assignments)
    ]
    threads += [
        threading.Thread(target=late_poster, args=(index,)) for index in timed_out_events
    ]
    for thread in threads:
        thread.start()

    engine_thread_id = threading.get_ident()
    wait_order = list(range(n_tickets))
    rng.shuffle(wait_order)
    delivered = {}
    for index in wait_order:
        if fates[index] == "late":
            with pytest.raises(CompletionTimeout):
                bridge.wait_for(tickets[index], timeout_s=0.03)
            timed_out_events[index].set()
        else:
            delivered[index] = bridge.wait_for(tickets[index], timeout_s=10.0)
    for thread in threads:
        thread.join(timeout=10.0)
    assert not worker_errors, f"seed={seed}: worker raised {worker_errors!r}"

    n_late = sum(1 for fate in fates.values() if fate == "late")
    n_delivered = n_tickets - n_late
    n_extra = sum(extra_copies.get(fate, 0) for fate in fates.values())

    # Exactly-once delivery: every non-late ticket consumed once, with the
    # payload matching its ticket.
    assert sorted(delivered) == sorted(
        index for index, fate in fates.items() if fate != "late"
    ), f"seed={seed}"
    for index, completion in delivered.items():
        assert completion.ticket_id == tickets[index].ticket_id, f"seed={seed}"

    # Duplicates deduped exactly once per extra copy: one accepted post per
    # delivered ticket, every surplus rejected.
    for index, fate in fates.items():
        if fate == "late":
            assert accepted_counts[index] == 0, f"seed={seed}: late post accepted for {index}"
            assert rejected_counts[index] == 1, f"seed={seed}: ticket {index}"
        else:
            assert accepted_counts[index] == 1, (
                f"seed={seed}: ticket {index} accepted {accepted_counts[index]} times"
            )
            assert rejected_counts[index] == extra_copies.get(fate, 0), (
                f"seed={seed}: ticket {index} ({fate}) rejected "
                f"{rejected_counts[index]} of {extra_copies.get(fate, 0)} extras"
            )

    # Never an in-band delivery: everything consumed was posted elsewhere.
    for index, completion in delivered.items():
        assert completion.thread_id != engine_thread_id, (
            f"seed={seed}: ticket {index} delivered in-band"
        )
        assert completion.latency_s is not None and completion.latency_s >= 0.0

    # The bridge's own accounting agrees with the observed outcomes.
    stats = bridge.stats()
    assert stats.registered == n_tickets, f"seed={seed}"
    assert stats.delivered == n_delivered, f"seed={seed}"
    assert stats.timed_out == n_late, f"seed={seed}"
    assert stats.rejected_late == n_late, f"seed={seed}"
    assert stats.rejected_duplicate == n_extra, f"seed={seed}"
    assert stats.outstanding == 0, f"seed={seed}"
    assert len(bridge.rejected) == n_late + n_extra, f"seed={seed}"


@pytest.mark.parametrize("seed", SEEDS, ids=lambda seed: f"seed={seed}")
def test_post_storm_on_one_ticket_delivers_exactly_once(seed):
    """Many threads hammer one ticket concurrently; one post wins, the rest
    are duplicates -- and the count of winners is exactly one regardless of
    interleaving."""
    rng = random.Random(seed)
    bridge = CompletionBridge()
    ticket = make_ticket(0)
    bridge.register(ticket)
    n_posters = rng.randint(4, 10)
    outcomes = []
    outcomes_lock = threading.Lock()
    barrier = threading.Barrier(n_posters)

    def poster():
        completion = posted_completion(ticket)
        barrier.wait()
        accepted = bridge.post(completion)
        with outcomes_lock:
            outcomes.append(accepted)

    threads = [threading.Thread(target=poster) for _ in range(n_posters)]
    for thread in threads:
        thread.start()
    completion = bridge.wait_for(ticket, timeout_s=10.0)
    for thread in threads:
        thread.join(timeout=10.0)
    assert completion.ticket_id == ticket.ticket_id
    assert outcomes.count(True) == 1, f"seed={seed}: {outcomes}"
    assert outcomes.count(False) == n_posters - 1, f"seed={seed}: {outcomes}"
    stats = bridge.stats()
    assert stats.delivered == 1 and stats.rejected_duplicate == n_posters - 1, f"seed={seed}"
