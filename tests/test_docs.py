"""Docs hygiene: intra-repo links must resolve and examples must compile.

The same checks run as a dedicated CI job; running them in tier-1 too means
a broken README link or a bit-rotted example script fails locally before a
PR is even opened.
"""

import compileall
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs import (  # noqa: E402
    broken_links,
    iter_doc_files,
    missing_required_links,
)


def test_docs_exist():
    files = {path.name for path in iter_doc_files(REPO_ROOT)}
    assert "README.md" in files
    assert "architecture.md" in files
    assert "fleet_operations.md" in files
    assert "concurrency_contract.md" in files


def test_no_broken_intra_repo_links():
    problems = broken_links(REPO_ROOT)
    assert problems == [], "broken doc links: " + ", ".join(
        f"{path.name} -> {target}" for path, target in problems
    )


def test_required_cross_links_present():
    # The concurrency contract and the docs it governs must link each other;
    # see REQUIRED_LINKS in tools/check_docs.py.
    missing = missing_required_links(REPO_ROOT)
    assert missing == [], "missing required cross-links: " + ", ".join(
        f"{source} -> {target}" for source, target in missing
    )


def test_examples_compile():
    assert compileall.compile_dir(
        str(REPO_ROOT / "examples"), quiet=1, force=True
    ), "an examples/*.py script no longer compiles"
