"""Docs hygiene: intra-repo links must resolve and examples must compile.

The same checks run as a dedicated CI job; running them in tier-1 too means
a broken README link or a bit-rotted example script fails locally before a
PR is even opened.
"""

import compileall
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs import broken_links, iter_doc_files  # noqa: E402


def test_docs_exist():
    files = {path.name for path in iter_doc_files(REPO_ROOT)}
    assert "README.md" in files
    assert "architecture.md" in files
    assert "fleet_operations.md" in files


def test_no_broken_intra_repo_links():
    problems = broken_links(REPO_ROOT)
    assert problems == [], "broken doc links: " + ", ".join(
        f"{path.name} -> {target}" for path, target in problems
    )


def test_examples_compile():
    assert compileall.compile_dir(
        str(REPO_ROOT / "examples"), quiet=1, force=True
    ), "an examples/*.py script no longer compiles"
