"""Tests for colour-space conversions."""

import numpy as np
import pytest

from repro.color.spaces import (
    lab_to_rgb,
    lab_to_xyz,
    linear_rgb_to_xyz,
    linear_to_srgb,
    rgb_to_lab,
    srgb_to_linear,
    xyz_to_lab,
    xyz_to_linear_rgb,
)


class TestSrgbLinear:
    def test_black_and_white_endpoints(self):
        np.testing.assert_allclose(srgb_to_linear([0, 0, 0]), [0, 0, 0], atol=1e-12)
        np.testing.assert_allclose(srgb_to_linear([255, 255, 255]), [1, 1, 1], atol=1e-12)

    def test_round_trip(self):
        rgb = np.array([[10.0, 120.0, 250.0], [0.0, 64.0, 255.0]])
        back = linear_to_srgb(srgb_to_linear(rgb))
        np.testing.assert_allclose(back, rgb, atol=1e-6)

    def test_monotonic(self):
        values = np.linspace(0, 255, 32)
        rgb = np.stack([values, values, values], axis=-1)
        linear = srgb_to_linear(rgb)[..., 0]
        assert np.all(np.diff(linear) > 0)

    def test_out_of_gamut_clipped(self):
        result = linear_to_srgb([[1.5, -0.2, 0.5]])
        assert result[0, 0] == pytest.approx(255.0)
        assert result[0, 1] == pytest.approx(0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            srgb_to_linear([1.0, 2.0])


class TestXyz:
    def test_white_maps_to_d65(self):
        xyz = linear_rgb_to_xyz([1.0, 1.0, 1.0])
        np.testing.assert_allclose(xyz, [0.95047, 1.0, 1.08883], atol=1e-3)

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        linear = rng.uniform(0, 1, size=(20, 3))
        back = xyz_to_linear_rgb(linear_rgb_to_xyz(linear))
        np.testing.assert_allclose(back, linear, atol=1e-10)


class TestLab:
    def test_white_has_l_100(self):
        lab = rgb_to_lab([255, 255, 255])
        assert lab[0] == pytest.approx(100.0, abs=0.01)
        assert abs(lab[1]) < 0.5 and abs(lab[2]) < 0.5

    def test_black_has_l_0(self):
        lab = rgb_to_lab([0, 0, 0])
        assert lab[0] == pytest.approx(0.0, abs=0.01)

    def test_grey_is_neutral(self):
        lab = rgb_to_lab([120, 120, 120])
        assert abs(lab[1]) < 0.5
        assert abs(lab[2]) < 0.5

    def test_red_has_positive_a(self):
        lab = rgb_to_lab([255, 0, 0])
        assert lab[1] > 40

    def test_blue_has_negative_b(self):
        lab = rgb_to_lab([0, 0, 255])
        assert lab[2] < -40

    def test_xyz_lab_round_trip(self):
        rng = np.random.default_rng(1)
        linear = rng.uniform(0.01, 1.0, size=(25, 3))
        xyz = linear_rgb_to_xyz(linear)
        back = lab_to_xyz(xyz_to_lab(xyz))
        np.testing.assert_allclose(back, xyz, rtol=1e-6, atol=1e-8)

    def test_rgb_lab_round_trip(self):
        rng = np.random.default_rng(2)
        rgb = rng.uniform(5, 250, size=(25, 3))
        back = lab_to_rgb(rgb_to_lab(rgb))
        np.testing.assert_allclose(back, rgb, atol=0.05)

    def test_batch_shapes_preserved(self):
        rgb = np.zeros((4, 5, 3))
        assert rgb_to_lab(rgb).shape == (4, 5, 3)
