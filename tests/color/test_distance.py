"""Tests for colour-distance metrics."""

import numpy as np
import pytest

from repro.color.distance import (
    DISTANCE_METRICS,
    delta_e_cie76,
    delta_e_cie94,
    delta_e_ciede2000,
    euclidean_rgb,
    score_colors,
)

ALL_METRICS = sorted(DISTANCE_METRICS)


class TestEuclideanRgb:
    def test_identical_colors_score_zero(self):
        assert euclidean_rgb([120, 120, 120], [120, 120, 120]) == 0.0

    def test_known_distance(self):
        assert euclidean_rgb([0, 0, 0], [3, 4, 0]) == pytest.approx(5.0)

    def test_batch_broadcasting(self):
        observed = np.array([[0, 0, 0], [10, 0, 0]])
        result = euclidean_rgb(observed, [0, 0, 0])
        np.testing.assert_allclose(result, [0.0, 10.0])


class TestDeltaE:
    @pytest.mark.parametrize("metric", [delta_e_cie76, delta_e_cie94, delta_e_ciede2000])
    def test_identity_is_zero(self, metric):
        assert metric([100, 150, 200], [100, 150, 200]) == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("metric", [delta_e_cie76, delta_e_cie94, delta_e_ciede2000])
    def test_symmetric_for_neutral_pairs(self, metric):
        a, b = [120, 120, 120], [140, 140, 140]
        assert metric(a, b) == pytest.approx(metric(b, a), rel=1e-6)

    def test_cie76_matches_lab_euclidean_definition(self):
        from repro.color.spaces import rgb_to_lab

        a, b = [10, 200, 30], [60, 20, 220]
        expected = np.linalg.norm(rgb_to_lab(a) - rgb_to_lab(b))
        assert delta_e_cie76(a, b) == pytest.approx(expected)

    def test_ciede2000_known_value(self):
        # A classic check pair: pure red vs pure green is a large difference
        # (CIEDE2000 compresses large distances relative to CIE76).
        d2000 = delta_e_ciede2000([255, 0, 0], [0, 255, 0])
        d76 = delta_e_cie76([255, 0, 0], [0, 255, 0])
        assert 0 < d2000 < d76

    def test_small_perceptual_difference_is_small(self):
        assert delta_e_ciede2000([120, 120, 120], [122, 120, 119]) < 2.5


class TestScoreColors:
    @pytest.mark.parametrize("metric", ALL_METRICS)
    def test_all_registered_metrics_work(self, metric):
        score = score_colors([100, 100, 100], [120, 120, 120], metric)
        assert np.ndim(score) == 0
        assert score > 0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown distance metric"):
            score_colors([0, 0, 0], [1, 1, 1], "manhattan")

    def test_batch_scores(self):
        observed = np.array([[120, 120, 120], [0, 0, 0]])
        scores = score_colors(observed, [120, 120, 120])
        assert scores[0] == 0.0
        assert scores[1] > 100

    @pytest.mark.parametrize("metric", ALL_METRICS)
    def test_nonnegative(self, metric):
        rng = np.random.default_rng(3)
        observed = rng.uniform(0, 255, size=(50, 3))
        target = rng.uniform(0, 255, size=3)
        assert np.all(score_colors(observed, target, metric) >= 0)
