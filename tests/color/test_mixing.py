"""Tests for the subtractive dye-mixing model."""

import numpy as np
import pytest

from repro.color.mixing import DyeSet, SubtractiveMixingModel


class TestDyeSet:
    def test_cmyk_has_four_dyes(self):
        dyes = DyeSet.cmyk()
        assert dyes.names == ("cyan", "magenta", "yellow", "black")
        assert dyes.n_dyes == 4
        assert dyes.transmittance.shape == (4, 3)

    def test_cmy_variant(self):
        assert DyeSet.cmy().n_dyes == 3

    def test_index_lookup(self):
        dyes = DyeSet.cmyk()
        assert dyes.index("yellow") == 2
        with pytest.raises(KeyError):
            dyes.index("white")

    def test_invalid_transmittance_rejected(self):
        with pytest.raises(ValueError):
            DyeSet(names=("a",), transmittance=np.array([[0.0, 0.5, 0.5]]))
        with pytest.raises(ValueError):
            DyeSet(names=("a", "b"), transmittance=np.array([[0.5, 0.5, 0.5]]))


class TestSubtractiveMixingModel:
    def test_empty_well_is_white_point(self, chemistry):
        color = chemistry.mix([0.0, 0.0, 0.0, 0.0])
        np.testing.assert_allclose(color, chemistry.white_point)

    def test_more_dye_is_darker(self, chemistry):
        low = chemistry.mix([10.0, 10.0, 10.0, 10.0])
        high = chemistry.mix([60.0, 60.0, 60.0, 60.0])
        assert np.all(high < low)

    def test_monotonic_in_black(self, chemistry):
        volumes = np.zeros((8, 4))
        volumes[:, 3] = np.linspace(0, 200, 8)
        colors = chemistry.mix(volumes)
        luminance = colors.mean(axis=1)
        assert np.all(np.diff(luminance) < 0)

    def test_cyan_absorbs_red_most(self, chemistry):
        color = chemistry.mix([80.0, 0.0, 0.0, 0.0])
        assert color[0] < color[1] < color[2] * 1.05

    def test_batch_matches_single(self, chemistry, rng):
        volumes = rng.uniform(0, 60, size=(10, 4))
        batch = chemistry.mix(volumes)
        singles = np.stack([chemistry.mix(v) for v in volumes])
        np.testing.assert_allclose(batch, singles)

    def test_negative_volumes_rejected(self, chemistry):
        with pytest.raises(ValueError):
            chemistry.mix([-1.0, 0.0, 0.0, 0.0])

    def test_wrong_dye_count_rejected(self, chemistry):
        with pytest.raises(ValueError):
            chemistry.mix([1.0, 2.0, 3.0])

    def test_colors_stay_in_range(self, chemistry, rng):
        volumes = rng.uniform(0, 275, size=(200, 4))
        colors = chemistry.mix(volumes)
        assert np.all(colors >= 0) and np.all(colors <= 255)

    def test_order_independence_of_composition(self, chemistry):
        # Mixing is defined on the composition vector, so permuting which dye
        # gets which volume changes the colour, but the same vector always
        # gives the same colour (pure function).
        volumes = np.array([10.0, 20.0, 30.0, 5.0])
        np.testing.assert_allclose(chemistry.mix(volumes), chemistry.mix(volumes.copy()))

    def test_mix_ratios_normalises_to_total_volume(self, chemistry):
        color_a = chemistry.mix_ratios([1.0, 1.0, 0.0, 0.0], total_volume=100.0)
        color_b = chemistry.mix([50.0, 50.0, 0.0, 0.0])
        np.testing.assert_allclose(color_a, color_b)

    def test_gamut_extent_brackets_targets(self, chemistry):
        low, high = chemistry.gamut_extent(samples_per_axis=4)
        assert np.all(low < 120) and np.all(high > 120)

    def test_describe_is_json_friendly(self, chemistry):
        import json

        assert json.dumps(chemistry.describe())


class TestInvert:
    def test_invert_recovers_paper_target(self, chemistry):
        volumes = chemistry.invert([120.0, 120.0, 120.0], total_volume=80.0)
        color = chemistry.mix(volumes)
        assert np.linalg.norm(color - np.array([120.0, 120.0, 120.0])) < 3.0

    def test_invert_respects_bounds(self, chemistry):
        volumes = chemistry.invert([30.0, 30.0, 30.0], total_volume=80.0)
        assert np.all(volumes >= 0.0) and np.all(volumes <= 80.0)

    def test_invert_white_needs_little_dye(self, chemistry):
        volumes = chemistry.invert([248.0, 248.0, 246.0], total_volume=80.0)
        assert volumes.sum() < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SubtractiveMixingModel(well_volume=-1.0)
        with pytest.raises(ValueError):
            SubtractiveMixingModel(strength=0.0)
