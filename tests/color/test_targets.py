"""Tests for the target-colour library."""

import numpy as np
import pytest

from repro.color.targets import PAPER_TARGET, TARGET_COLORS, TargetColor, get_target


class TestTargetColor:
    def test_paper_target_is_mid_grey(self):
        assert PAPER_TARGET.rgb == (120.0, 120.0, 120.0)

    def test_as_array(self):
        np.testing.assert_allclose(PAPER_TARGET.as_array(), [120, 120, 120])

    def test_invalid_rgb_rejected(self):
        with pytest.raises(ValueError):
            TargetColor("bad", (300.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            TargetColor("bad", (1.0, 2.0))


class TestGetTarget:
    def test_by_name(self):
        assert get_target("paper-grey") is PAPER_TARGET

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="paper-grey"):
            get_target("fuchsia")

    def test_from_tuple(self):
        target = get_target((1, 2, 3))
        assert target.rgb == (1.0, 2.0, 3.0)
        assert target.name.startswith("custom-")

    def test_pass_through_target_color(self):
        custom = TargetColor("mine", (9.0, 9.0, 9.0))
        assert get_target(custom) is custom

    def test_library_contains_paper_target(self):
        assert "paper-grey" in TARGET_COLORS
        assert len(TARGET_COLORS) >= 5

    def test_all_library_targets_valid(self):
        for target in TARGET_COLORS.values():
            assert all(0 <= channel <= 255 for channel in target.rgb)
