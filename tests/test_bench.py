"""The bench subsystem: committed trajectory files stay valid, the runner's
schema round-trips, and the comparison logic judges regressions correctly.

``tools/check_bench.py`` runs standalone in the CI ``bench`` job; mirroring
it here means a malformed committed ``BENCH_<area>.json`` (or one whose
recorded hot-path speedup falls below the optimisation pass's claimed
floor) fails the tier-1 suite too.  The scenario smoke tests run heavily
scaled-down configs -- the bench's correctness (equivalence guards, schema,
science digests) is the same at any scale; only the absolute numbers need
the full pinned sizes.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_bench import CORE_AREAS, check_all, check_bench_file  # noqa: E402

from repro.bench import (
    AREA_ORDER,
    SCHEMA_VERSION,
    area_payload,
    bench_filename,
    compare_results,
    load_bench_file,
    run_area,
    run_bench,
    write_results,
)
from repro.bench.runner import MetricDelta


class TestCommittedFiles:
    def test_committed_bench_files_valid(self):
        problems = check_all(REPO_ROOT)
        assert problems == [], "\n".join(problems)

    def test_core_areas_all_committed(self):
        for area in CORE_AREAS:
            assert (REPO_ROOT / bench_filename(area)).exists(), area

    def test_committed_hot_paths_clear_the_floor(self):
        # The acceptance claim of the optimisation pass, re-read from disk.
        for area in CORE_AREAS:
            data = load_bench_file(REPO_ROOT / bench_filename(area))
            assert any(entry["speedup"] >= 1.3 for entry in data["hot_paths"]), area


class TestCheckBenchFile:
    def _valid_payload(self):
        result = run_area("portal", repeats=1, scale=0.02)
        return area_payload(result, repeats=1, root=REPO_ROOT)

    def test_accepts_fresh_payload(self, tmp_path):
        payload = self._valid_payload()
        path = tmp_path / "BENCH_portal.json"
        path.write_text(json.dumps(payload))
        assert check_bench_file(path, root=REPO_ROOT) == []

    def test_rejects_missing_keys_and_bad_values(self, tmp_path):
        payload = self._valid_payload()
        del payload["machine"]
        path = tmp_path / "BENCH_portal.json"
        path.write_text(json.dumps(payload))
        assert any("machine" in problem for problem in check_bench_file(path, root=REPO_ROOT))

        payload = self._valid_payload()
        payload["metrics"]["rows_per_s_ingest"]["value"] = float("nan")
        path.write_text(json.dumps(payload).replace("NaN", '"oops"'))
        assert any("rows_per_s_ingest" in p for p in check_bench_file(path, root=REPO_ROOT))

    def test_rejects_wrong_filename_schema_and_future_stamp(self, tmp_path):
        payload = self._valid_payload()
        path = tmp_path / "BENCH_vision.json"
        path.write_text(json.dumps(payload))
        assert any("filename" in p for p in check_bench_file(path, root=REPO_ROOT))

        payload = self._valid_payload()
        payload["schema_version"] = 99
        path = tmp_path / "BENCH_portal.json"
        path.write_text(json.dumps(payload))
        assert any("schema_version" in p for p in check_bench_file(path, root=REPO_ROOT))

        payload = self._valid_payload()
        payload["created_utc"] = "2999-01-01T00:00:00Z"
        path.write_text(json.dumps(payload))
        assert any("future" in p for p in check_bench_file(path, root=REPO_ROOT))

    def test_rejects_unprovenanced_or_inconsistent_speedup(self, tmp_path):
        payload = self._valid_payload()
        payload["git_sha"] = "unknown"
        path = tmp_path / "BENCH_portal.json"
        path.write_text(json.dumps(payload))
        assert any("provenance" in p for p in check_bench_file(path, root=REPO_ROOT))

        payload = self._valid_payload()
        payload["hot_paths"] = [
            {"name": "fake", "baseline_s": 2.0, "optimised_s": 1.0, "speedup": 5.0, "unit": "s/op"}
        ]
        path.write_text(json.dumps(payload))
        assert any("inconsistent" in p for p in check_bench_file(path, root=REPO_ROOT))


class TestRunnerSmoke:
    """Tiny-scale scenario runs: every area produces a valid, self-consistent
    document and its in-run equivalence guards hold."""

    @pytest.mark.parametrize("area", [a for a in AREA_ORDER if a != "campaign"])
    def test_fast_areas_produce_valid_payloads(self, area, tmp_path):
        result = run_area(area, repeats=1, scale=0.01)
        assert result.area == area
        assert result.metrics
        payload = area_payload(result, repeats=1, root=REPO_ROOT)
        assert payload["schema_version"] == SCHEMA_VERSION
        path = tmp_path / bench_filename(area)
        path.write_text(json.dumps(payload))
        problems = [p for p in check_bench_file(path, root=REPO_ROOT) if "no hot path at >=" not in p]
        assert problems == [], "\n".join(problems)

    def test_campaign_area_smoke(self, tmp_path):
        # The smallest campaign the scenario allows: 32 runs on 4 workcells.
        result = run_area("campaign", repeats=1, scale=0.001)
        assert result.config["n_runs"] == 32
        assert result.config["n_workcells"] == 4
        assert result.metrics["makespan_h"]["value"] > 0
        assert result.science["campaign_fingerprint_sha256"]
        assert result.hot_paths[0]["baseline_s"] > 0

    def test_unknown_area_rejected(self):
        with pytest.raises(ValueError, match="unknown bench area"):
            run_area("nope")
        with pytest.raises(ValueError, match="unknown bench area"):
            run_bench(["events", "nope"])


class TestCompare:
    def test_round_trip_compare_is_clean(self, tmp_path):
        results = run_bench(["portal"], repeats=1, scale=0.02)
        write_results(results, repeats=1, directory=tmp_path)
        comparison = compare_results(results, baseline_dir=tmp_path)
        assert comparison["skipped"] == {}
        assert comparison["deltas"]
        assert all(not d.is_regression(0.15) for d in comparison["deltas"])

    def test_config_change_restarts_trajectory(self, tmp_path):
        results = run_bench(["portal"], repeats=1, scale=0.02)
        write_results(results, repeats=1, directory=tmp_path)
        changed = run_bench(["portal"], repeats=1, scale=0.04)
        comparison = compare_results(changed, baseline_dir=tmp_path)
        assert "portal" in comparison["skipped"]
        assert comparison["deltas"] == []

    def test_missing_baseline_is_skipped_not_judged(self, tmp_path):
        results = run_bench(["portal"], repeats=1, scale=0.02)
        comparison = compare_results(results, baseline_dir=tmp_path)
        assert comparison["skipped"] == {"portal": "no committed baseline file"}

    def test_delta_direction_semantics(self):
        slower_rate = MetricDelta(
            area="portal", metric="rows_per_s_ingest",
            baseline=100.0, current=50.0, unit="rows/s", direction="higher",
        )
        assert slower_rate.change == pytest.approx(-0.5)
        assert slower_rate.is_regression(0.15)
        longer_makespan = MetricDelta(
            area="campaign", metric="makespan_h",
            baseline=10.0, current=12.0, unit="h", direction="lower",
        )
        assert longer_makespan.change == pytest.approx(-0.2)
        assert longer_makespan.is_regression(0.15)
        shorter_makespan = MetricDelta(
            area="campaign", metric="makespan_h",
            baseline=10.0, current=9.0, unit="h", direction="lower",
        )
        assert shorter_makespan.change == pytest.approx(0.1)
        assert not shorter_makespan.is_regression(0.15)
