"""Tests for the paper's genetic-algorithm solver."""

import numpy as np
import pytest

from repro.solvers.evolutionary import EvolutionarySolver, uniform_grid_population


def toy_objective(ratios):
    """Distance to a known optimum in ratio space (no chemistry involved)."""
    optimum = np.array([0.4, 0.1, 0.6, 0.2])
    return np.linalg.norm(np.atleast_2d(ratios) - optimum, axis=1) * 100.0


def run_solver(solver, n_samples, batch_size):
    for _ in range(n_samples // batch_size):
        ratios = solver.propose(batch_size)
        scores = toy_objective(ratios)
        solver.observe(ratios, np.zeros((len(ratios), 3)), scores)
    return solver


class TestInitialPopulation:
    def test_grid_population_shape_and_bounds(self):
        rng = np.random.default_rng(0)
        population = uniform_grid_population(4, 12, rng)
        assert population.shape == (12, 4)
        assert np.all(population >= 0) and np.all(population <= 1)
        assert np.all(population.sum(axis=1) > 0)

    def test_grid_population_values_are_grid_levels(self):
        rng = np.random.default_rng(1)
        population = uniform_grid_population(2, 6, rng)
        levels = np.unique(np.round(population, 6))
        # 3 levels per axis for a small population.
        assert set(np.round(levels, 6)).issubset({0.0, 0.5, 1.0})


class TestProposeObserve:
    def test_proposals_have_right_shape_for_any_batch_size(self):
        for batch_size in (1, 2, 5, 12, 30):
            solver = EvolutionarySolver(seed=1)
            ratios = solver.propose(batch_size)
            assert ratios.shape == (batch_size, 4)
            assert np.all(ratios >= 0) and np.all(ratios <= 1)

    def test_generation_advances_after_population_is_graded(self):
        solver = EvolutionarySolver(seed=2, population_size=6)
        run_solver(solver, 18, 6)
        assert solver.generation >= 2

    def test_elitism_preserves_best_individual(self):
        solver = EvolutionarySolver(seed=3, population_size=9, elitism=1)
        ratios = solver.propose(9)
        scores = toy_objective(ratios)
        solver.observe(ratios, np.zeros((9, 3)), scores)
        next_generation = solver.propose(9)
        best_parent = ratios[np.argmin(scores)]
        assert any(np.allclose(individual, best_parent) for individual in next_generation)

    def test_improves_over_random_start(self):
        solver = EvolutionarySolver(seed=4, population_size=12)
        run_solver(solver, 96, 12)
        first_generation_best = min(obs.score for obs in solver.history[:12])
        assert solver.best_score <= first_generation_best
        assert solver.best_score < 40.0

    def test_b1_operation_matches_figure4_usage(self):
        solver = EvolutionarySolver(seed=5, population_size=8)
        run_solver(solver, 64, 1)
        assert solver.n_observed == 64
        assert solver.best_score < 45.0

    def test_reset_restarts_evolution(self):
        solver = EvolutionarySolver(seed=6)
        run_solver(solver, 24, 12)
        solver.reset()
        assert solver.generation == 0
        assert solver.n_observed == 0
        assert solver.propose(3).shape == (3, 4)


class TestConfiguration:
    def test_describe_reports_ga_parameters(self):
        solver = EvolutionarySolver(seed=0, population_size=10, mutation_scale=0.2, elitism=2)
        description = solver.describe()
        assert description["population_size"] == 10
        assert description["mutation_scale"] == 0.2
        assert description["elitism"] == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EvolutionarySolver(population_size=0)
        with pytest.raises(ValueError):
            EvolutionarySolver(population_size=5, elitism=5)
        with pytest.raises(ValueError):
            EvolutionarySolver(mutation_scale=0.0)

    def test_deterministic_given_seed(self):
        a = EvolutionarySolver(seed=11)
        b = EvolutionarySolver(seed=11)
        np.testing.assert_allclose(a.propose(6), b.propose(6))
