"""Tests for the Gaussian-process surrogate."""

import numpy as np
import pytest

from repro.solvers.gp import GaussianProcess, RBFKernel


class TestKernel:
    def test_diagonal_is_variance(self):
        kernel = RBFKernel(lengthscale=0.5, variance=2.0)
        x = np.random.default_rng(0).uniform(size=(5, 3))
        matrix = kernel(x, x)
        np.testing.assert_allclose(np.diag(matrix), 2.0)

    def test_decay_with_distance(self):
        kernel = RBFKernel(lengthscale=0.3, variance=1.0)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        assert near > far

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            RBFKernel(lengthscale=0.0)
        with pytest.raises(ValueError):
            RBFKernel(variance=-1.0)


class TestGaussianProcess:
    def test_interpolates_training_points_with_low_noise(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(12, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        gp = GaussianProcess(noise=1e-6, optimize_hyperparameters=False).fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.1)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.2, 0.2], [0.3, 0.3], [0.25, 0.35]])
        y = np.array([1.0, 2.0, 1.5])
        gp = GaussianProcess(optimize_hyperparameters=False).fit(x, y)
        _, std_near = gp.predict(np.array([[0.25, 0.25]]))
        _, std_far = gp.predict(np.array([[0.9, 0.9]]))
        assert std_far[0] > std_near[0]

    def test_predictions_in_original_units(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(size=(20, 4))
        y = 100.0 + 50.0 * x[:, 0]
        gp = GaussianProcess(optimize_hyperparameters=False).fit(x, y)
        mean, _ = gp.predict(x)
        assert mean.mean() == pytest.approx(y.mean(), rel=0.05)

    def test_hyperparameter_optimisation_improves_fit(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(size=(30, 1))
        y = np.sin(8 * x[:, 0])
        default = GaussianProcess(kernel=RBFKernel(lengthscale=1.0), optimize_hyperparameters=False).fit(x, y)
        tuned = GaussianProcess(kernel=RBFKernel(lengthscale=1.0), optimize_hyperparameters=True).fit(x, y)
        grid = np.linspace(0, 1, 50)[:, None]
        truth = np.sin(8 * grid[:, 0])
        default_error = np.abs(default.predict(grid)[0] - truth).mean()
        tuned_error = np.abs(tuned.predict(grid)[0] - truth).mean()
        assert tuned_error <= default_error + 1e-6

    def test_log_marginal_likelihood_finite(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(size=(10, 2))
        y = rng.normal(size=10)
        gp = GaussianProcess(optimize_hyperparameters=False).fit(x, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_errors_for_misuse(self):
        gp = GaussianProcess()
        with pytest.raises(RuntimeError):
            gp.predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(2))

    def test_constant_targets_handled(self):
        x = np.random.default_rng(5).uniform(size=(6, 2))
        y = np.full(6, 3.0)
        gp = GaussianProcess(optimize_hyperparameters=False).fit(x, y)
        mean, _ = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=0.2)
