"""Tests for the solver base class and registry."""

import numpy as np
import pytest

from repro.solvers import SOLVER_REGISTRY, ColorSolver, make_solver
from repro.solvers.base import Observation, SolverError


class TestRegistry:
    def test_paper_solvers_registered(self):
        assert "evolutionary" in SOLVER_REGISTRY
        assert "bayesian" in SOLVER_REGISTRY

    def test_baselines_registered(self):
        for name in ("random", "grid", "oracle"):
            assert name in SOLVER_REGISTRY

    def test_make_solver_by_name(self):
        solver = make_solver("random", n_dyes=4, seed=1)
        assert solver.name == "random"
        assert solver.n_dyes == 4

    def test_unknown_name_lists_options(self):
        with pytest.raises(SolverError, match="evolutionary"):
            make_solver("simulated-annealing")


class TestObservationHandling:
    def test_observe_accumulates_history(self):
        solver = make_solver("random", seed=0)
        ratios = solver.propose(3)
        rgb = np.tile([100.0, 100.0, 100.0], (3, 1))
        solver.observe(ratios, rgb, [30.0, 10.0, 20.0])
        assert solver.n_observed == 3
        assert solver.best_score == 10.0
        assert isinstance(solver.best_observation, Observation)

    def test_single_unbatched_observation(self):
        solver = make_solver("random", seed=0)
        solver.observe([0.1, 0.2, 0.3, 0.4], [50.0, 60.0, 70.0], 12.5)
        assert solver.n_observed == 1
        np.testing.assert_allclose(solver.best_observation.ratios, [0.1, 0.2, 0.3, 0.4])

    def test_mismatched_sizes_rejected(self):
        solver = make_solver("random", seed=0)
        with pytest.raises(SolverError):
            solver.observe(np.zeros((2, 4)), np.zeros((2, 3)), [1.0])
        with pytest.raises(SolverError):
            solver.observe(np.zeros((2, 3)), np.zeros((2, 3)), [1.0, 2.0])

    def test_reset_clears_history(self):
        solver = make_solver("random", seed=0)
        solver.observe(np.zeros((1, 4)) + 0.5, np.zeros((1, 3)), [5.0])
        solver.reset()
        assert solver.n_observed == 0
        assert solver.best_score == float("inf")

    def test_observed_arrays_shapes(self):
        solver = make_solver("random", seed=0)
        empty_x, empty_y = solver.observed_arrays()
        assert empty_x.shape == (0, 4) and empty_y.shape == (0,)
        solver.observe(solver.propose(5), np.zeros((5, 3)), np.arange(5.0))
        x, y = solver.observed_arrays()
        assert x.shape == (5, 4) and y.shape == (5,)


class TestHelpers:
    def test_random_ratios_in_bounds_and_never_all_zero(self):
        solver = make_solver("random", seed=3)
        ratios = solver.random_ratios(200)
        assert ratios.shape == (200, 4)
        assert np.all(ratios >= 0) and np.all(ratios <= 1)
        assert np.all(ratios.sum(axis=1) > 0)

    def test_clip_ratios(self):
        solver = make_solver("random", seed=3)
        clipped = solver.clip_ratios(np.array([[1.5, -0.2, 0.5, 0.0]]))
        np.testing.assert_allclose(clipped, [[1.0, 0.0, 0.5, 0.0]])
        all_zero = solver.clip_ratios(np.array([[-1.0, -1.0, -1.0, -1.0]]))
        assert all_zero.sum() > 0

    def test_invalid_n_dyes_rejected(self):
        with pytest.raises(ValueError):
            ColorSolver(n_dyes=0)

    def test_describe(self):
        solver = make_solver("random", seed=1)
        description = solver.describe()
        assert description["solver"] == "random"
        assert description["n_dyes"] == 4
