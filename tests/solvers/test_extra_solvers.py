"""Tests for the additional search approaches (annealing, Sobol)."""

import numpy as np
import pytest

from repro.solvers import SOLVER_REGISTRY, make_solver
from repro.solvers.annealing import SimulatedAnnealingSolver
from repro.solvers.sobol import SobolSolver


def toy_objective(ratios):
    optimum = np.array([0.35, 0.2, 0.6, 0.15])
    return np.linalg.norm(np.atleast_2d(ratios) - optimum, axis=1) * 100.0


def run_solver(solver, n_samples, batch_size):
    for _ in range(n_samples // batch_size):
        ratios = solver.propose(batch_size)
        solver.observe(ratios, np.zeros((len(ratios), 3)), toy_objective(ratios))
    return solver


class TestRegistry:
    def test_new_solvers_registered(self):
        assert "annealing" in SOLVER_REGISTRY
        assert "sobol" in SOLVER_REGISTRY
        assert make_solver("annealing", seed=1).name == "annealing"
        assert make_solver("sobol", seed=1).name == "sobol"


class TestSimulatedAnnealing:
    def test_proposals_valid_for_any_batch_size(self):
        solver = SimulatedAnnealingSolver(seed=0)
        for batch_size in (1, 3, 8):
            ratios = solver.propose(batch_size)
            assert ratios.shape == (batch_size, 4)
            assert np.all(ratios >= 0) and np.all(ratios <= 1)
            solver.observe(ratios, np.zeros((batch_size, 3)), toy_objective(ratios))

    def test_temperature_cools_as_samples_accumulate(self):
        solver = SimulatedAnnealingSolver(seed=1)
        initial = solver.temperature
        run_solver(solver, 32, 4)
        assert solver.temperature < initial

    def test_improves_on_toy_objective(self):
        solver = run_solver(SimulatedAnnealingSolver(seed=2), 96, 1)
        first_ten_best = min(obs.score for obs in solver.history[:10])
        assert solver.best_score <= first_ten_best
        assert solver.best_score < 40.0

    def test_walker_stays_near_accepted_position_at_low_temperature(self):
        solver = SimulatedAnnealingSolver(seed=3, initial_temperature=1e-6, step_scale=0.05)
        ratios = solver.propose(1)
        solver.observe(ratios, np.zeros((1, 3)), [5.0])
        # With effectively zero temperature, worse moves are rejected, so the
        # walker's stored position remains the accepted one.
        next_ratios = solver.propose(1)
        assert np.linalg.norm(next_ratios[0] - ratios[0]) < 0.3

    def test_reset_restores_temperature(self):
        solver = run_solver(SimulatedAnnealingSolver(seed=4), 16, 4)
        solver.reset()
        assert solver.temperature == solver.initial_temperature
        assert solver.n_observed == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(initial_temperature=0.0)


class TestSobol:
    def test_points_in_unit_cube(self):
        solver = SobolSolver(seed=0)
        points = solver.propose(64)
        assert points.shape == (64, 4)
        assert np.all(points >= 0) and np.all(points <= 1)

    def test_better_space_filling_than_random(self):
        """Sobol's nearest-neighbour distances are more even than random's."""
        n = 64
        sobol_points = SobolSolver(seed=1).propose(n)
        random_points = np.random.default_rng(1).uniform(size=(n, 4))

        def min_nn_distance(points):
            distances = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=-1)
            np.fill_diagonal(distances, np.inf)
            return distances.min()

        assert min_nn_distance(sobol_points) > min_nn_distance(random_points)

    def test_deterministic_given_seed(self):
        np.testing.assert_allclose(SobolSolver(seed=5).propose(16), SobolSolver(seed=5).propose(16))

    def test_reset_replays_sequence(self):
        solver = SobolSolver(seed=2)
        first = solver.propose(8)
        solver.reset()
        np.testing.assert_allclose(solver.propose(8), first)


class TestInApplication:
    @pytest.mark.parametrize("solver_name", ["annealing", "sobol"])
    def test_new_solvers_drive_the_full_application(self, solver_name):
        from repro import ColorPickerApp, ExperimentConfig

        config = ExperimentConfig(
            n_samples=12, batch_size=4, solver=solver_name, seed=6, publish=False
        )
        result = ColorPickerApp(config).run()
        assert result.n_samples == 12
        assert np.isfinite(result.best_score)
