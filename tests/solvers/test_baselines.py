"""Tests for the random, grid and oracle baseline solvers."""

import numpy as np
import pytest

from repro.color.distance import euclidean_rgb
from repro.color.mixing import SubtractiveMixingModel
from repro.core.protocol import ratios_to_volumes
from repro.solvers.grid_search import GridSearchSolver
from repro.solvers.oracle import OracleSolver
from repro.solvers.random_search import RandomSearchSolver
from repro.solvers.base import SolverError


class TestRandomSearch:
    def test_proposals_uniform_in_bounds(self):
        solver = RandomSearchSolver(seed=0)
        ratios = solver.propose(500)
        assert ratios.shape == (500, 4)
        assert 0.4 < ratios.mean() < 0.6

    def test_deterministic_given_seed(self):
        np.testing.assert_allclose(
            RandomSearchSolver(seed=5).propose(10), RandomSearchSolver(seed=5).propose(10)
        )


class TestGridSearch:
    def test_grid_size_excludes_all_zero_point(self):
        solver = GridSearchSolver(seed=0, resolution=3)
        assert solver.grid_size == 3**4 - 1

    def test_no_repeats_until_grid_exhausted(self):
        solver = GridSearchSolver(seed=1, resolution=3)
        proposals = solver.propose(solver.grid_size)
        unique_rows = np.unique(np.round(proposals, 6), axis=0)
        assert len(unique_rows) == solver.grid_size

    def test_cycles_after_exhaustion(self):
        solver = GridSearchSolver(seed=2, resolution=2)
        first_pass = solver.propose(solver.grid_size)
        second_pass = solver.propose(solver.grid_size)
        np.testing.assert_allclose(first_pass, second_pass)

    def test_unshuffled_grid_is_lexicographic_like(self):
        solver = GridSearchSolver(seed=0, resolution=3, shuffle=False)
        proposals = solver.propose(4)
        assert np.all(proposals >= 0) and np.all(proposals <= 1)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            GridSearchSolver(resolution=1)

    def test_reset_rebuilds_grid(self):
        solver = GridSearchSolver(seed=3)
        solver.propose(5)
        solver.reset()
        assert solver._cursor == 0


class TestOracle:
    def test_requires_chemistry_and_target(self):
        with pytest.raises(SolverError):
            OracleSolver(seed=0)

    def test_oracle_hits_target_closely(self):
        chemistry = SubtractiveMixingModel()
        target = np.array([120.0, 120.0, 120.0])
        solver = OracleSolver(
            seed=0, chemistry=chemistry, target_rgb=target, max_component_volume_ul=80.0
        )
        ratios = solver.propose(1)
        volumes = ratios_to_volumes(ratios, 80.0)
        color = chemistry.mix(volumes[0])
        assert euclidean_rgb(color, target) < 5.0

    def test_batch_jitters_replicates(self):
        chemistry = SubtractiveMixingModel()
        solver = OracleSolver(
            seed=1, chemistry=chemistry, target_rgb=[120, 120, 120], max_component_volume_ul=80.0
        )
        batch = solver.propose(4)
        assert batch.shape == (4, 4)
        np.testing.assert_allclose(batch[0], solver.optimum_ratios)
        assert not np.allclose(batch[1], batch[0])

    def test_dye_count_mismatch_rejected(self):
        chemistry = SubtractiveMixingModel()
        with pytest.raises(SolverError):
            OracleSolver(n_dyes=3, chemistry=chemistry, target_rgb=[1, 2, 3])
