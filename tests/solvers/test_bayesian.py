"""Tests for the Bayesian-optimisation solver."""

import numpy as np
import pytest

from repro.solvers.bayesian import BayesianSolver, expected_improvement


def toy_objective(ratios):
    optimum = np.array([0.45, 0.15, 0.55, 0.25])
    return np.linalg.norm(np.atleast_2d(ratios) - optimum, axis=1) * 100.0


def run_solver(solver, n_samples, batch_size):
    for _ in range(n_samples // batch_size):
        ratios = solver.propose(batch_size)
        scores = toy_objective(ratios)
        solver.observe(ratios, np.zeros((len(ratios), 3)), scores)
    return solver


class TestExpectedImprovement:
    def test_zero_std_and_worse_mean_gives_zero(self):
        ei = expected_improvement(np.array([10.0]), np.array([1e-12]), best=5.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_better_mean_gives_positive_ei(self):
        ei = expected_improvement(np.array([1.0]), np.array([0.5]), best=5.0)
        assert ei[0] > 3.0

    def test_higher_uncertainty_raises_ei_for_equal_mean(self):
        low = expected_improvement(np.array([5.0]), np.array([0.1]), best=5.0)
        high = expected_improvement(np.array([5.0]), np.array([2.0]), best=5.0)
        assert high[0] > low[0]


class TestBayesianSolver:
    def test_initial_proposals_are_random_exploration(self):
        solver = BayesianSolver(seed=0, n_initial=6)
        ratios = solver.propose(4)
        assert ratios.shape == (4, 4)
        assert solver.n_observed == 0

    def test_proposals_stay_in_bounds_after_model_kicks_in(self):
        solver = BayesianSolver(seed=1, n_initial=4, n_candidates=64)
        run_solver(solver, 24, 4)
        ratios = solver.propose(4)
        assert np.all(ratios >= 0) and np.all(ratios <= 1)

    def test_batch_proposals_are_diverse(self):
        solver = BayesianSolver(seed=2, n_initial=4, n_candidates=64)
        run_solver(solver, 16, 4)
        batch = solver.propose(8)
        distances = np.linalg.norm(batch[:, None, :] - batch[None, :, :], axis=-1)
        off_diagonal = distances[~np.eye(len(batch), dtype=bool)]
        assert off_diagonal.max() > 0.05

    def test_outperforms_pure_random_on_smooth_objective(self):
        budget = 40
        bo = run_solver(BayesianSolver(seed=3, n_initial=8, n_candidates=128), budget, 4)
        rng = np.random.default_rng(3)
        random_scores = toy_objective(rng.uniform(0, 1, size=(budget, 4)))
        assert bo.best_score <= np.min(random_scores) + 5.0
        assert bo.best_score < 25.0

    def test_reset_clears_surrogate(self):
        solver = run_solver(BayesianSolver(seed=4, n_initial=4), 12, 4)
        solver.reset()
        assert solver.n_observed == 0
        assert solver._gp is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BayesianSolver(n_initial=0)
        with pytest.raises(ValueError):
            BayesianSolver(n_candidates=0)
        with pytest.raises(ValueError):
            BayesianSolver(refit_every=0)

    def test_describe_reports_configuration(self):
        description = BayesianSolver(seed=1, n_initial=5).describe()
        assert description["solver"] == "bayesian"
        assert description["n_initial"] == 5
