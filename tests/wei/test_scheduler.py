"""Tests for the parallel-mix planner (multi-OT-2 ablation support)."""

import pytest

from repro.sim.durations import paper_calibrated_durations
from repro.wei.scheduler import plan_parallel_mixes


class TestPlanning:
    def test_single_ot2_serialises_batches(self):
        plan = plan_parallel_mixes([4, 4, 4], n_ot2=1)
        assert len(plan.batches) == 3
        finishes = [batch.finish_time for batch in plan.batches]
        assert finishes == sorted(finishes)
        # With one OT-2 the mixes cannot overlap.
        mixes = sorted((batch.mix for batch in plan.batches))
        for (s1, e1), (s2, _) in zip(mixes, mixes[1:]):
            assert s2 >= e1

    def test_two_ot2_reduce_makespan(self):
        single = plan_parallel_mixes([8] * 8, n_ot2=1).makespan
        double = plan_parallel_mixes([8] * 8, n_ot2=2).makespan
        quad = plan_parallel_mixes([8] * 8, n_ot2=4).makespan
        assert double < single
        assert quad <= double

    def test_commands_increase_is_independent_of_ot2_count(self):
        # CCWH depends on the batches run, not on how many OT-2s share them.
        # 4 engine commands per batch (2 transfers + mix + image), 3 robotic.
        assert plan_parallel_mixes([4] * 6, n_ot2=1).total_commands == 24
        assert plan_parallel_mixes([4] * 6, n_ot2=3).total_commands == 24
        assert plan_parallel_mixes([4] * 6, n_ot2=1).robotic_commands == 18
        assert plan_parallel_mixes([4] * 6, n_ot2=3).robotic_commands == 18

    def test_shared_pf400_never_overlaps(self):
        plan = plan_parallel_mixes([2] * 10, n_ot2=4)
        intervals = sorted(plan.timelines["pf400"].intervals)
        for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9

    def test_utilisation_between_zero_and_one(self):
        plan = plan_parallel_mixes([4] * 6, n_ot2=2)
        for value in plan.utilisation().values():
            assert 0.0 <= value <= 1.0

    def test_larger_batches_take_longer_per_batch(self):
        durations = paper_calibrated_durations(jitter_cv=0.0)
        small = plan_parallel_mixes([1], n_ot2=1, durations=durations).makespan
        large = plan_parallel_mixes([32], n_ot2=1, durations=durations).makespan
        assert large > small * 5

    def test_empty_plan(self):
        plan = plan_parallel_mixes([], n_ot2=2)
        assert plan.makespan == 0.0
        assert plan.total_commands == 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_parallel_mixes([1], n_ot2=0)
        with pytest.raises(ValueError):
            plan_parallel_mixes([0], n_ot2=1)
