"""Tests for the two-phase (submit -> complete) action lifecycle.

The invariant under test, at every layer: *submission* charges time, draws
faults and logs records, while the world (deck, reservoirs, towers, tip
racks) only changes when the action *completes*.  The concurrent engine
relies on this to keep admission control honest -- a plate is where it
physically is, not where an accepted command will put it.
"""

import pytest

from repro.core.protocol import build_mix_protocol
from repro.hardware.base import DeviceError
from repro.hardware.labware import Plate
from repro.sim.faults import FaultPolicy
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.engine import attempt_submission
from repro.wei.module import ActionSubmission, Module
from repro.wei.workflow import WorkflowSpec

# The `workcell` fixture (a seed-42 colour-picker workcell) comes from
# tests/conftest.py; ad-hoc variants are built through the repo-root
# `make_workcell` factory fixture.


def mix_protocol(workcell, n_wells=2, start=0):
    plate = Plate(barcode="naming-only")
    wells = plate.empty_wells[start : start + n_wells]
    ratios = [[0.25, 0.25, 0.25, 0.25]] * n_wells
    return build_mix_protocol(
        name="proto",
        wells=wells,
        ratios=ratios,
        dye_names=workcell.chemistry.dyes.names,
        max_component_volume_ul=40.0,
    )


class TestDeviceHandles:
    def test_pf400_deck_moves_only_at_completion(self, workcell):
        deck = workcell.deck
        pf400 = workcell.module("pf400").device
        deck.place(Plate(barcode="p1"), "ot2.deck")

        handle = pf400.submit_transfer("ot2.deck", "camera.stage")
        # Time charged and record logged at submission...
        assert handle.end_time > handle.start_time
        assert pf400.action_log[-1].action == "transfer"
        # ...but the plate has not physically moved yet.
        assert deck.is_occupied("ot2.deck")
        assert not deck.is_occupied("camera.stage")
        assert pf400.transfers_completed == 0

        plate = handle.complete()
        assert plate.barcode == "p1"
        assert not deck.is_occupied("ot2.deck")
        assert deck.is_occupied("camera.stage")
        assert pf400.transfers_completed == 1

    def test_complete_is_idempotent(self, workcell):
        deck = workcell.deck
        pf400 = workcell.module("pf400").device
        deck.place(Plate(barcode="p1"), "ot2.deck")
        handle = pf400.submit_transfer("ot2.deck", "camera.stage")
        first = handle.complete()
        assert handle.complete() is first
        assert pf400.transfers_completed == 1

    def test_sciclops_tower_pops_at_completion(self, workcell):
        sciclops = workcell.module("sciclops").device
        before = sciclops.plates_remaining
        handle = sciclops.submit_get_plate()
        assert sciclops.plates_remaining == before
        assert not workcell.deck.is_occupied(sciclops.exchange_location)
        plate = handle.complete()
        assert sciclops.plates_remaining == before - 1
        assert workcell.deck.plate_at(sciclops.exchange_location) is plate

    def test_ot2_inventory_draws_at_completion(self, workcell):
        ot2 = workcell.module("ot2").device
        workcell.deck.place(Plate(barcode="mixing"), ot2.deck_location)
        for reservoir in ot2.reservoirs.values():
            reservoir.fill()
        protocol = mix_protocol(workcell)
        levels_before = ot2.reservoir_levels()
        tips_before = ot2.tip_rack.remaining

        handle = ot2.submit_run_protocol(protocol)
        assert ot2.reservoir_levels() == levels_before
        assert ot2.tip_rack.remaining == tips_before
        assert ot2.wells_filled == 0

        handle.complete()
        assert sum(ot2.reservoir_levels().values()) < sum(levels_before.values())
        assert ot2.tip_rack.remaining == tips_before - protocol.n_wells
        assert ot2.wells_filled == protocol.n_wells

    def test_barty_pumps_at_completion(self, workcell):
        ot2 = workcell.module("ot2").device
        barty = workcell.module("barty").device
        handle = barty.submit_fill_colors()
        assert all(volume == 0.0 for volume in ot2.reservoir_levels().values())
        record = handle.complete()
        assert all(volume > 0.0 for volume in ot2.reservoir_levels().values())
        assert record.details["volume_moved_ul"] > 0

    def test_camera_exposes_at_completion(self, workcell):
        camera = workcell.module("camera").device
        workcell.deck.place(Plate(barcode="photo"), camera.stage_location)
        handle = camera.submit_take_picture()
        assert camera.frames_captured == 0
        image = handle.complete()
        assert camera.frames_captured == 1
        assert image.plate_barcode == "photo"

    def test_submit_unknown_action_rejected(self, workcell):
        with pytest.raises(DeviceError, match="submit_levitate"):
            workcell.module("pf400").device.submit("levitate")


class TestModuleSubmission:
    def test_submit_collects_records_and_defers_value(self, workcell):
        module = workcell.module("sciclops")
        submission = module.submit("get_plate")
        assert isinstance(submission, ActionSubmission)
        assert not submission.completed
        assert [record.action for record in submission.records] == ["get_plate"]
        invocation = submission.complete()
        assert submission.completed
        assert isinstance(invocation.return_value, Plate)
        assert invocation.commands == 1

    def test_invoke_still_synchronous(self, workcell):
        plate = workcell.module("sciclops").invoke("get_plate").return_value
        assert workcell.deck.plate_at("sciclops.exchange") is plate

    def test_custom_action_falls_back_to_synchronous(self, workcell):
        sciclops = workcell.module("sciclops").device
        seen = []
        module = Module("custom", sciclops, actions={"ping": lambda: seen.append("now") or "pong"})
        submission = module.submit("ping")
        # No two-phase implementation: the callable ran at submission.
        assert seen == ["now"]
        assert submission.completed
        assert submission.complete().return_value == "pong"

    def test_auto_discovery_excludes_submit_methods(self, workcell):
        # submit_* methods are phase-one halves, not standalone actions: an
        # auto-discovered "submit_transfer" action would charge time via the
        # synchronous fallback but never complete the handle's mutations.
        module = Module("auto", workcell.module("pf400").device)
        assert "transfer" in module.actions
        assert not any(name.startswith("submit") for name in module.action_names())

    def test_renamed_device_action_is_not_two_phase(self, workcell):
        # "fetch" maps onto get_plate; the name mismatch must not silently
        # resolve to submit_get_plate (a custom registration owns its action).
        sciclops = workcell.module("sciclops").device
        module = Module("renamed", sciclops, actions={"fetch": sciclops.get_plate})
        submission = module.submit("fetch")
        assert submission.completed  # executed synchronously at submission

    def test_retries_happen_at_submission(self, make_workcell):
        workcell = make_workcell(
            seed=3,
            fault_policy=FaultPolicy(command_failure={"sciclops": 0.6}, unrecoverable_fraction=0.0),
        )
        module = workcell.module("sciclops")
        total_retries = 0
        for _ in range(8):
            submission, retries, _error = attempt_submission(module, "status", {}, max_retries=50)
            assert submission is not None
            total_retries += retries
            # Failed attempts are logged at submission time, before complete.
            assert sum(1 for r in module.device.action_log if not r.success) >= total_retries
            assert submission.complete().commands == 1
        assert total_retries > 0


class TestEngineCompletionTiming:
    def test_deck_mutates_at_the_completion_event(self, workcell):
        """The tentpole regression: the concurrent engine must not move the
        plate when the transfer is merely *submitted* at its start event."""
        deck = workcell.deck
        deck.place(Plate(barcode="p1"), "ot2.deck")
        engine = ConcurrentWorkflowEngine(workcell)
        spec = WorkflowSpec(name="move").add_step(
            "pf400", "transfer", source="ot2.deck", target="camera.stage"
        )
        handle = engine.submit(spec)
        # submit() dispatched the step: the transfer is in flight, its
        # completion event pending -- and the deck is still untouched.
        assert engine.scheduler.pending == 1
        assert deck.is_occupied("ot2.deck")
        assert not deck.is_occupied("camera.stage")

        engine.scheduler.step()  # the completion event
        assert not deck.is_occupied("ot2.deck")
        assert deck.is_occupied("camera.stage")
        engine.run_until_complete()
        assert handle.success

    def test_exchange_held_until_departure_completes(self, workcell):
        """A second get_plate is admitted only once the departing transfer
        *finishes* -- with submission-time mutations it would start earlier,
        while the plate physically still sits on the exchange."""
        engine = ConcurrentWorkflowEngine(workcell)
        first = WorkflowSpec(name="first")
        first.add_step("sciclops", "get_plate")
        first.add_step("pf400", "transfer", source="sciclops.exchange", target="camera.stage")
        second = WorkflowSpec(name="second").add_step("sciclops", "get_plate")
        engine.submit(first)
        engine.submit(second)
        engine.run_until_complete()

        transfer_end = next(
            step.end_time for step in engine.run_logger.runs[0].steps if step.action == "transfer"
        )
        second_start = engine.run_logger.runs[1].steps[0].start_time
        assert second_start >= transfer_end - 1e-9

    def test_in_flight_fill_reserves_the_target_slot(self, workcell):
        """A transfer aimed at a slot that an in-flight action will fill at
        *its* completion must park, not collide at the completion events."""
        deck = workcell.deck
        deck.place(Plate(barcode="returning"), "camera.stage")
        engine = ConcurrentWorkflowEngine(workcell)
        fetch = WorkflowSpec(name="fetch")
        fetch.add_step("sciclops", "get_plate")
        fetch.add_step("pf400", "transfer", source="sciclops.exchange", target="ot2.deck")
        restock = WorkflowSpec(name="restock").add_step(
            "pf400", "transfer", source="camera.stage", target="sciclops.exchange"
        )
        fetch_handle = engine.submit(fetch)
        restock_handle = engine.submit(restock)
        engine.run_until_complete()
        assert fetch_handle.success and restock_handle.success
        # The restock transfer waited for the exchange to be promised, filled
        # and emptied again by the fetch workflow's own transfer.
        fetch_depart = fetch_handle.result.steps[1]
        restock_arrive = restock_handle.result.steps[0]
        assert restock_arrive.start_time >= fetch_depart.end_time - 1e-9
        assert deck.plate_at("sciclops.exchange").barcode == "returning"

    def test_device_clock_restored_after_submission(self, workcell):
        engine = ConcurrentWorkflowEngine(workcell)
        device = workcell.module("sciclops").device
        engine.submit(WorkflowSpec(name="fetch").add_step("sciclops", "get_plate"))
        assert device.clock is workcell.clock
        engine.run_until_complete()
        assert device.clock is workcell.clock


class TestUtilisationRegression:
    def test_never_ran_engine_reports_zero_for_every_module(self, workcell):
        engine = ConcurrentWorkflowEngine(workcell)
        utilisation = engine.utilisation()
        assert set(utilisation) == set(workcell.modules)
        assert all(value == 0.0 for value in utilisation.values())
        assert engine.overall_utilisation() == 0.0
        assert engine.makespan == 0.0

    def test_overall_utilisation_after_work(self, workcell):
        engine = ConcurrentWorkflowEngine(workcell)
        engine.run_all([WorkflowSpec(name="fetch").add_step("sciclops", "get_plate")])
        assert 0.0 < engine.overall_utilisation() <= 1.0
