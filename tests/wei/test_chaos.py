"""Tests for seeded chaos schedules and the deterministic soak harness.

Covers :class:`~repro.wei.chaos.ChaosSchedule`'s replay/liveness contract,
the soak fingerprint/diff machinery, the full soak invariant over the
default CI seed matrix (marked ``soak``), and the regression satellite: a
transport-backed campaign -- paced, and wire under every default chaos
seed -- produces scores and portal contents identical to ``transport="sim"``.
"""

import pytest

from repro.core.campaign import run_campaign
from repro.wei.chaos import ChaosDecision, ChaosSchedule
from repro.wei.chaos.soak import (
    DEFAULT_SEED_MATRIX,
    campaign_fingerprint,
    run_soak,
)

#: Small-but-real campaign shape shared by the regression matrix below.
CAMPAIGN = dict(n_runs=2, samples_per_run=3, batch_size=3, seed=42, n_workcells=2)

#: Wall-clock compression for transport-backed test campaigns: effectively
#: instant, but every frame still crosses the pipe and driver threads.
FAST = 1_000_000.0


class TestChaosSchedule:
    def test_decisions_replay_exactly_for_the_same_identity(self):
        first = ChaosSchedule(1234)
        second = ChaosSchedule(1234)
        for seq in range(200):
            for attempt in range(3):
                assert first.decide("w:tx", seq, attempt) == second.decide("w:tx", seq, attempt)

    def test_different_seeds_differ(self):
        a = ChaosSchedule(1)
        b = ChaosSchedule(2)
        decisions_a = [a.decide("w:tx", seq, 0) for seq in range(300)]
        decisions_b = [b.decide("w:tx", seq, 0) for seq in range(300)]
        assert decisions_a != decisions_b

    def test_directions_are_independent_streams(self):
        schedule = ChaosSchedule(7)
        tx = [schedule.decide("w:tx", seq, 0) for seq in range(300)]
        rx = [schedule.decide("w:rx", seq, 0) for seq in range(300)]
        assert tx != rx

    def test_default_rates_actually_inject_faults(self):
        schedule = ChaosSchedule(99, disconnect_rate=0.0)
        decisions = [schedule.decide("w:tx", seq, 0) for seq in range(500)]
        assert any(decision.drop for decision in decisions)
        assert any(decision.corrupt for decision in decisions)
        assert any(decision.duplicate for decision in decisions)
        assert any(decision.delay_s > 0 for decision in decisions)

    def test_liveness_guard_clean_after_n_attempts(self):
        schedule = ChaosSchedule(5, drop_rate=1.0, corrupt_rate=0.0, duplicate_rate=0.0,
                                 delay_rate=0.0, disconnect_rate=0.0, clean_after=4)
        for seq in range(50):
            for attempt in range(4):
                assert schedule.decide("w:tx", seq, attempt).drop
            assert schedule.decide("w:tx", seq, 4) == ChaosDecision()

    def test_disconnect_cap_is_fleet_wide_and_deterministic(self):
        schedule = ChaosSchedule(3, disconnect_rate=1.0, drop_rate=0.0, corrupt_rate=0.0,
                                 duplicate_rate=0.0, delay_rate=0.0, max_disconnects=2)
        fired = [schedule.decide("w:tx", seq, 0).disconnect for seq in range(10)]
        assert fired == [True, True] + [False] * 8
        assert schedule.disconnects_injected == 2

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ChaosSchedule(0, drop_rate=1.5)
        with pytest.raises(ValueError):
            ChaosSchedule(0, max_delay_s=-0.1)
        with pytest.raises(ValueError):
            ChaosSchedule(0, clean_after=0)

    def test_event_log_records_injections(self):
        schedule = ChaosSchedule(0)
        frame = type("F", (), {"kind": "SUBMIT", "seq": 4})()
        schedule.record("w:tx", frame, 1, "drop")
        assert schedule.events == [
            {"direction": "w:tx", "kind": "SUBMIT", "seq": 4, "attempt": 1, "event": "drop"}
        ]
        assert schedule.faults_injected == 1

    def test_describe_is_json_shaped(self):
        description = ChaosSchedule(17).describe()
        assert description["seed"] == 17
        assert "faults_injected" in description and "disconnects_injected" in description


class TestCampaignChaosValidation:
    def test_chaos_requires_wire_transport(self):
        with pytest.raises(ValueError):
            run_campaign(n_runs=1, samples_per_run=2, chaos=ChaosSchedule(1))
        with pytest.raises(ValueError):
            run_campaign(
                n_runs=1, samples_per_run=2, transport="paced", chaos=ChaosSchedule(1)
            )


class TestTransportRegressionMatrix:
    """Satellite: transport-backed campaigns == sim, across the chaos matrix."""

    @pytest.fixture(scope="class")
    def sim_baseline(self):
        campaign = run_campaign(experiment_id="matrix", **CAMPAIGN)
        return campaign, campaign_fingerprint(campaign)

    def assert_identical_science(self, sim, sim_fingerprint, candidate):
        assert [run.best_score for run in candidate.runs] == [
            run.best_score for run in sim.runs
        ]
        for sim_run, other_run in zip(sim.runs, candidate.runs):
            assert [s.score for s in sim_run.samples] == [
                s.score for s in other_run.samples
            ]
        assert campaign_fingerprint(candidate) == sim_fingerprint

    def test_paced_campaign_matches_sim(self, sim_baseline):
        sim, fingerprint = sim_baseline
        paced = run_campaign(
            experiment_id="matrix", transport="paced", speedup=FAST, **CAMPAIGN
        )
        self.assert_identical_science(sim, fingerprint, paced)
        assert paced.transport_stats["timed_out"] == 0

    @pytest.mark.parametrize("chaos_seed", DEFAULT_SEED_MATRIX)
    def test_wire_campaign_matches_sim_under_every_default_chaos_seed(
        self, sim_baseline, chaos_seed
    ):
        sim, fingerprint = sim_baseline
        wire = run_campaign(
            experiment_id="matrix",
            transport="wire",
            speedup=FAST,
            completion_timeout_s=60.0,
            chaos=ChaosSchedule(chaos_seed),
            **CAMPAIGN,
        )
        self.assert_identical_science(sim, fingerprint, wire)
        stats = wire.transport_stats
        assert stats["timed_out"] == 0
        # Chaos really happened; it just wasn't observable in the science.
        assert stats["retries"] + stats["crc_errors"] + stats["resyncs"] > 0


@pytest.mark.soak
class TestSoakHarness:
    def test_default_matrix_upholds_the_invariant(self):
        report = run_soak(
            n_runs=2,
            samples_per_run=3,
            batch_size=3,
            n_workcells=2,
            seeds=DEFAULT_SEED_MATRIX,
            speedup=FAST,
        )
        failing = [
            (case.chaos_seed, case.mismatches) for case in report.cases if not case.ok
        ]
        assert report.ok, (
            f"soak invariant broken; replay with `python -m repro soak --seeds "
            f"{','.join(str(seed) for seed, _ in failing)}`: {failing}"
        )
        for case in report.cases:
            assert case.transport_stats["delivered"] > 0
            assert case.transport_stats["timed_out"] == 0
            # Retry/resync accounting is surfaced per case...
            assert "retries" in case.transport_stats
            assert "resyncs" in case.transport_stats
            # ...and the chaos log proves faults were really injected.
            assert case.chaos["faults_injected"] > 0

    def test_report_logs_round_trip(self, tmp_path):
        report = run_soak(
            n_runs=1,
            samples_per_run=2,
            batch_size=2,
            n_workcells=1,
            seeds=(101,),
            speedup=FAST,
        )
        written = report.write_logs(tmp_path)
        assert (tmp_path / "soak-seed-101.json").exists()
        assert (tmp_path / "summary.json").exists()
        assert len(written) == 2
        import json

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["ok"] is True
        assert summary["cases"][0]["chaos_seed"] == 101

    def test_a_broken_invariant_is_reported_not_raised(self, monkeypatch):
        """A seed whose campaign crashes yields a failed case + full report."""
        import repro.wei.chaos.soak as soak_module

        real_run_campaign = soak_module.run_campaign
        calls = {"n": 0}

        def explode_on_second(*args, **kwargs):
            calls["n"] += 1
            if kwargs.get("transport") == "wire" and calls["n"] == 2:
                raise RuntimeError("injected harness failure")
            return real_run_campaign(*args, **kwargs)

        monkeypatch.setattr(soak_module, "run_campaign", explode_on_second)
        report = run_soak(
            n_runs=1,
            samples_per_run=2,
            batch_size=2,
            n_workcells=1,
            seeds=(101, 202),
            speedup=FAST,
        )
        assert not report.ok
        assert [case.ok for case in report.cases] == [False, True]
        assert "injected harness failure" in report.cases[0].error
