"""Tests for work-stealing lane assignment and the elastic multi-workcell coordinator."""

import pytest

from repro.wei.concurrent import (
    run_programs_on_lanes,
    run_programs_work_stealing,
)
from repro.sim.durations import paper_calibrated_durations
from repro.wei.coordinator import MultiWorkcellCoordinator
from repro.wei.engine import WorkflowError


def sleeper(duration, marker=None):
    """A program that occupies its lane for ``duration`` simulated seconds."""
    yield ("sleep", float(duration))
    return marker if marker is not None else duration


class FactoryFixtures:
    """Mixin exposing the repo-root factory fixtures as instance helpers.

    Engine and fleet construction lives in the root ``conftest.py``
    (``make_engine`` / ``make_fleet``); this mixin binds them per test so
    helper methods like ``run_fleet`` need no fixture plumbing of their own.
    """

    @pytest.fixture(autouse=True)
    def _factories(self, make_engine, make_fleet):
        self.make_engine = make_engine
        self.make_fleet = make_fleet

    def fresh_engine(self, seed=0):
        return self.make_engine(seed=seed)

    def late_engine(self, name="workcell-late", seed=99):
        return self.make_engine(seed=seed, name=name)


#: Skewed durations where pinning job i to lane i % 2 is badly unbalanced:
#: static lanes get [100, 1, 1] = 102 and [1, 1, 1] = 3, while work stealing
#: gives the long job one lane (100) and the five short ones the other (5).
SKEWED = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0]


class TestWorkStealingLanes(FactoryFixtures):
    def test_beats_static_pinning_on_skewed_durations(self):
        static_engine = self.fresh_engine()
        run_programs_on_lanes(static_engine, [sleeper(d) for d in SKEWED], n_lanes=2)
        stealing_engine = self.fresh_engine()
        run_programs_work_stealing(stealing_engine, [sleeper(d) for d in SKEWED], n_lanes=2)
        assert stealing_engine.makespan <= static_engine.makespan
        assert stealing_engine.makespan == pytest.approx(100.0)
        assert static_engine.makespan == pytest.approx(102.0)

    def test_every_job_lands_exactly_once_in_order(self):
        engine = self.fresh_engine()
        markers = [f"job-{i}" for i in range(len(SKEWED))]
        results = run_programs_work_stealing(
            engine,
            [sleeper(d, marker) for d, marker in zip(SKEWED, markers)],
            n_lanes=2,
        )
        assert results == markers  # in submission order, none dropped or doubled

    def test_more_lanes_than_jobs(self):
        engine = self.fresh_engine()
        results = run_programs_work_stealing(engine, [sleeper(5.0)], n_lanes=3)
        assert results == [5.0]

    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            run_programs_work_stealing(self.fresh_engine(), [sleeper(1.0)], n_lanes=0)

    def test_program_error_propagates(self):
        def doomed():
            yield ("sleep", 1.0)
            raise WorkflowError("boom")

        engine = self.fresh_engine()
        with pytest.raises(WorkflowError, match="boom"):
            run_programs_work_stealing(engine, [doomed()], n_lanes=1)


class TestCoordinator(FactoryFixtures):
    def run_fleet(self, assignment):
        coordinator = self.make_fleet(2, seed=7)
        results = coordinator.run_jobs(
            list(SKEWED),
            lambda duration, shard, lane: sleeper(duration),
            assignment=assignment,
        )
        return coordinator, results

    def test_work_stealing_beats_static_across_workcells(self):
        stealing, _ = self.run_fleet("work-stealing")
        static, _ = self.run_fleet("static")
        assert stealing.makespan <= static.makespan
        assert stealing.makespan == pytest.approx(100.0)
        assert static.makespan == pytest.approx(102.0)

    def test_results_and_assignments_cover_every_job_once(self):
        coordinator, results = self.run_fleet("work-stealing")
        assert results == SKEWED
        assert all(placement is not None for placement in coordinator.assignments)
        assert sorted(p.job_index for p in coordinator.assignments) == list(range(len(SKEWED)))
        assert {p.shard for p in coordinator.assignments} == {0, 1}

    def test_shard_makespans_and_fleet_makespan(self):
        coordinator, _ = self.run_fleet("work-stealing")
        shards = coordinator.shard_makespans()
        assert len(shards) == 2
        assert coordinator.makespan == max(shards)

    def test_merged_action_log_is_time_sorted_and_tagged(self):
        coordinator = self.make_fleet(2, seed=7)

        def check(_job, shard, _lane):
            invocation = yield ("action", "sciclops", "status", {})
            return invocation.module

        coordinator.run_jobs([0, 1, 2, 3], check)
        merged = coordinator.merged_action_log()
        assert len(merged) == 4
        assert {entry["workcell"] for entry in merged} == {"workcell-0", "workcell-1"}
        starts = [entry["start_time"] for entry in merged]
        assert starts == sorted(starts)

    def test_utilisation_views(self):
        coordinator, _ = self.run_fleet("work-stealing")
        merged = coordinator.utilisation()
        # Every module of every shard appears, tagged with its workcell...
        assert any(key.endswith("@workcell-0") for key in merged)
        assert any(key.endswith("@workcell-1") for key in merged)
        # ...and sleeping programs never reserve a device.
        assert coordinator.overall_utilisation() == 0.0

    def test_determinism(self):
        first, first_results = self.run_fleet("work-stealing")
        second, second_results = self.run_fleet("work-stealing")
        assert first_results == second_results
        assert first.makespan == pytest.approx(second.makespan)
        assert [p.shard for p in first.assignments] == [p.shard for p in second.assignments]

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiWorkcellCoordinator([])
        with pytest.raises(ValueError):
            self.make_fleet(0)
        engine = self.fresh_engine()
        with pytest.raises(ValueError):
            MultiWorkcellCoordinator([engine, engine])
        coordinator = self.make_fleet(1, seed=1)
        with pytest.raises(ValueError, match="assignment"):
            coordinator.run_jobs([1], lambda j, _shard, _lane: sleeper(j), assignment="psychic")


class TestLptOrdering(FactoryFixtures):
    """assignment="stealing-lpt": the shared queue is pulled longest-first."""

    #: Short jobs first is the pathological FIFO order: with two lanes the
    #: 30-second job starts last (makespan 40), while LPT starts it first
    #: (makespan 30, the optimum).
    SHORT_FIRST = [10.0, 10.0, 10.0, 30.0]

    def run_fleet(self, assignment):
        coordinator = self.make_fleet(2, seed=7)
        completion_times = {}
        coordinator.add_run_listener(
            lambda completion: completion_times.setdefault(completion.job_index, completion.time)
        )
        results = coordinator.run_jobs(
            list(self.SHORT_FIRST),
            lambda duration, shard, lane: sleeper(duration),
            assignment=assignment,
            duration_hint=lambda duration: duration,
        )
        return coordinator, results, completion_times

    def test_lpt_beats_fifo_order_on_adversarial_queue(self):
        fifo, _, fifo_times = self.run_fleet("work-stealing")
        lpt, _, lpt_times = self.run_fleet("stealing-lpt")
        assert fifo.makespan == pytest.approx(40.0)
        assert lpt.makespan == pytest.approx(30.0)
        # FIFO claims the 30s job last (starts at t=10); LPT claims it first
        # (starts at t=0), which is the whole point of the ordering.
        assert fifo_times[3] == pytest.approx(40.0)
        assert lpt_times[3] == pytest.approx(30.0)

    def test_results_stay_in_submission_order(self):
        coordinator, results, completion_times = self.run_fleet("stealing-lpt")
        assert results == self.SHORT_FIRST
        assert sorted(p.job_index for p in coordinator.assignments) == [0, 1, 2, 3]
        # The long job ran alone on its shard (claimed first, at t=0), so the
        # three short jobs all executed back-to-back on the other shard.
        long_shard = coordinator.assignments[3].shard
        assert all(
            coordinator.assignments[i].shard != long_shard for i in range(3)
        )
        assert [completion_times[i] for i in range(3)] == [
            pytest.approx(10.0), pytest.approx(20.0), pytest.approx(30.0)
        ]

    def test_lpt_requires_a_duration_hint(self):
        coordinator = self.make_fleet(1, seed=1)
        with pytest.raises(ValueError, match="duration_hint"):
            coordinator.run_jobs(
                [1.0], lambda j, _shard, _lane: sleeper(j), assignment="stealing-lpt"
            )

    def test_ties_keep_submission_order(self):
        coordinator = self.make_fleet(1, seed=3)
        results = coordinator.run_jobs(
            [("a", 5.0), ("b", 5.0), ("c", 5.0)],
            lambda job, shard, lane: sleeper(job[1], marker=job[0]),
            assignment="stealing-lpt",
            duration_hint=lambda job: job[1],
        )
        assert results == ["a", "b", "c"]


def job_cost(job, table):
    """Simulated duration of a synthetic per-module workload on ``table``.

    Jobs are ``(kind, count)`` pairs: ``count`` arm transfers or ``count``
    single-well OT-2 protocols.  Used both as the program's sleep time (per
    shard, against that shard's own table) and as the duration hint.
    """
    kind, count = job
    if kind == "transfer":
        return count * table.mean("pf400", "transfer")
    return count * table.mean("ot2", "run_protocol", units=1)


class TestLaneAwareLpt(FactoryFixtures):
    """stealing-lpt with a two-argument hint ranks by each lane's own table.

    Both shards run with pf400 sped up 8x, so transfers that the default
    paper table ranks as the longest jobs (10 x 40 s = 400 s) actually take
    50 s, while the OT-2 job (288 s) is the true straggler.  A speed-blind
    hint front-loads the transfers and starts the OT-2 job last; the
    lane-aware hint starts it first.
    """

    JOBS = [("transfer", 10)] * 3 + [("protocol", 2)]

    def run_fleet(self, hint):
        coordinator = self.make_fleet(2, seed=7, module_speeds={"pf400": 8.0})

        def make_program(job, shard_id, lane):
            return sleeper(job_cost(job, coordinator.engines[shard_id].workcell.durations))

        coordinator.run_jobs(
            self.JOBS, make_program, assignment="stealing-lpt", duration_hint=hint
        )
        return coordinator

    def test_lane_aware_hint_beats_speed_blind_hint(self):
        paper = paper_calibrated_durations()
        blind = self.run_fleet(lambda job: job_cost(job, paper))
        aware = self.run_fleet(lambda job, table: job_cost(job, table))
        # Blind order [T, T, T, O]: the OT-2 job starts only at t=50 and
        # finishes at 338.  Lane-aware order [O, T, T, T]: it starts at t=0.
        assert blind.makespan == pytest.approx(338.0)
        assert aware.makespan == pytest.approx(288.0)
        assert aware.makespan < blind.makespan


class TestLookahead(FactoryFixtures):
    """assignment="lookahead": online re-ranking when a lane frees."""

    #: One big OT-2 job (10 protocols) and four small ones on a fleet whose
    #: second shard runs OT-2 twice as fast: the big job takes 1440 s on
    #: shard 0 but 720 s on shard 1.
    JOBS = [("protocol", 10)] + [("protocol", 1)] * 4
    SPEEDS = [{}, {"ot2": 2.0}]

    def run_fleet(self, assignment, hint):
        coordinator = self.make_fleet(2, seed=7, module_speeds=self.SPEEDS)

        def make_program(job, shard_id, lane):
            return sleeper(job_cost(job, coordinator.engines[shard_id].workcell.durations))

        coordinator.run_jobs(self.JOBS, make_program, assignment=assignment, duration_hint=hint)
        return coordinator

    def test_lookahead_beats_speed_blind_lpt_on_skewed_fleet(self):
        paper = paper_calibrated_durations()
        blind = self.run_fleet("stealing-lpt", lambda job: job_cost(job, paper))
        lookahead = self.run_fleet("lookahead", lambda job, table: job_cost(job, table))
        # Speed-blind LPT hands the longest job to whichever lane claims
        # first (shard 0, the slow one); lookahead defers the slow lane and
        # routes it to the fast shard.
        assert blind.assignments[0].shard == 0
        assert lookahead.assignments[0].shard == 1
        assert blind.makespan == pytest.approx(1440.0)
        assert lookahead.makespan == pytest.approx(720.0)
        assert lookahead.makespan < blind.makespan

    def test_every_job_completes_exactly_once(self):
        lookahead = self.run_fleet("lookahead", lambda job, table: job_cost(job, table))
        assert sorted(p.job_index for p in lookahead.assignments) == list(range(len(self.JOBS)))

    def test_drift_converges_on_a_biased_hint(self):
        """A hint that predicts half the true duration drives the EWMA of
        observed/predicted to ~2x on every shard, visible in FleetStatus."""
        coordinator = self.make_fleet(2, seed=7)
        coordinator.run_jobs(
            [20.0] * 8,
            lambda duration, shard, lane: sleeper(duration),
            assignment="lookahead",
            duration_hint=lambda duration: duration / 2.0,
        )
        drifts = [shard.predictor_drift for shard in coordinator.status().shards]
        assert all(drift == pytest.approx(2.0) for drift in drifts)

    def test_accurate_hint_keeps_drift_near_one(self):
        lookahead = self.run_fleet("lookahead", lambda job, table: job_cost(job, table))
        drifts = [shard.predictor_drift for shard in lookahead.status().shards]
        assert all(drift == pytest.approx(1.0) for drift in drifts if drift is not None)

    def test_lookahead_requires_a_duration_hint(self):
        coordinator = self.make_fleet(1, seed=1)
        with pytest.raises(ValueError, match="duration_hint"):
            coordinator.run_jobs(
                [1.0], lambda j, _shard, _lane: sleeper(j), assignment="lookahead"
            )

    def test_status_drift_is_none_before_any_completion(self):
        coordinator = self.make_fleet(2, seed=3)
        assert all(shard.predictor_drift is None for shard in coordinator.status().shards)
        assert all(
            shard.to_dict()["predictor_drift"] is None for shard in coordinator.status().shards
        )


class TestElasticFleet(FactoryFixtures):
    def test_attach_mid_campaign_joins_shared_queue(self):
        coordinator = self.make_fleet(2, seed=7)
        attached = {}

        def attach_once(completion):
            if not attached:
                attached["shard"] = coordinator.attach_workcell(self.late_engine())

        coordinator.add_run_listener(attach_once)
        jobs = [10.0] * 8
        results = coordinator.run_jobs(jobs, lambda d, _shard, _lane: sleeper(d))
        assert results == jobs
        assert attached["shard"] == 2
        # The late shard claimed work from the shared queue.
        shards_used = {p.shard for p in coordinator.assignments}
        assert 2 in shards_used
        assert [e["event"] for e in coordinator.fleet_events] == ["workcell-attached"]
        assert coordinator.fleet_events[0]["workcell"] == "workcell-late"

    def test_drain_mid_campaign_finishes_in_flight_then_retires(self):
        coordinator = self.make_fleet(2, seed=7)

        def drain_shard0(completion):
            if completion.assignment.shard == 0 and completion.job_index == 0:
                coordinator.drain_workcell(0)

        coordinator.add_run_listener(drain_shard0)
        jobs = [10.0] * 6
        results = coordinator.run_jobs(jobs, lambda d, _shard, _lane: sleeper(d))
        assert results == jobs
        # Shard 0 claimed exactly its in-flight job; everything after the
        # drain request went to shard 1.
        shard_counts = [p.shard for p in coordinator.assignments]
        assert shard_counts.count(0) == 1
        assert shard_counts.count(1) == 5
        status = coordinator.status()
        assert status.shards[0].state == "drained"
        assert status.shards[1].state == "active"
        events = [e["event"] for e in coordinator.fleet_events]
        assert events == ["drain-requested", "workcell-retired"]
        retirement = coordinator.fleet_events[-1]
        assert retirement["jobs_completed"] == 1
        assert retirement["start_time"] >= 10.0

    def test_drain_without_campaign_retires_immediately(self):
        coordinator = self.make_fleet(2, seed=3)
        coordinator.drain_workcell(1)
        assert coordinator.status().shards[1].state == "drained"
        results = coordinator.run_jobs([1.0, 2.0, 3.0], lambda d, _shard, _lane: sleeper(d))
        assert results == [1.0, 2.0, 3.0]
        assert {p.shard for p in coordinator.assignments} == {0}

    def test_attach_before_campaign_participates_from_the_start(self):
        coordinator = self.make_fleet(1, seed=3)
        coordinator.attach_workcell(self.late_engine())
        results = coordinator.run_jobs([5.0] * 4, lambda d, _shard, _lane: sleeper(d))
        assert results == [5.0] * 4
        assert {p.shard for p in coordinator.assignments} == {0, 1}

    def test_elasticity_rejected_during_static_campaign(self):
        coordinator = self.make_fleet(2, seed=3)

        def attach(completion):
            coordinator.attach_workcell(self.late_engine())

        coordinator.add_run_listener(attach)
        with pytest.raises(ValueError, match="statically-pinned"):
            coordinator.run_jobs([1.0] * 4, lambda d, _shard, _lane: sleeper(d), assignment="static")

    def test_drain_last_active_shard_with_pending_jobs_rejected(self):
        coordinator = self.make_fleet(1, seed=3)

        def drain(completion):
            coordinator.drain_workcell(0)

        coordinator.add_run_listener(drain)
        with pytest.raises(ValueError, match="last active"):
            coordinator.run_jobs([1.0] * 3, lambda d, _shard, _lane: sleeper(d))

    def test_drain_validation(self):
        coordinator = self.make_fleet(2, seed=3)
        with pytest.raises(ValueError, match="unknown shard"):
            coordinator.drain_workcell(9)
        coordinator.drain_workcell(0)
        with pytest.raises(ValueError, match="already"):
            coordinator.drain_workcell(0)
        with pytest.raises(ValueError, match="already part"):
            coordinator.attach_workcell(coordinator.engines[1])

    def test_status_snapshots_during_and_after_campaign(self):
        coordinator = self.make_fleet(2, seed=7)
        snapshots = []
        coordinator.add_run_listener(lambda completion: snapshots.append(coordinator.status()))
        coordinator.run_jobs([10.0] * 6, lambda d, _shard, _lane: sleeper(d))
        first = snapshots[0]
        # At the first completion two jobs are claimed, four still queued,
        # and the other shard's claim is in flight.
        assert first.time == pytest.approx(10.0)
        assert first.queue_depth == 4
        assert first.n_active == 2
        assert {shard.in_flight for shard in first.shards} == {0, 1}
        final = coordinator.status()
        assert final.queue_depth == 0
        assert all(shard.in_flight == 0 for shard in final.shards)
        assert sum(shard.completed for shard in final.shards) == 6
        assert [shard.to_dict()["workcell"] for shard in final.shards] == [
            "workcell-0",
            "workcell-1",
        ]

    def test_merged_log_includes_lifecycle_events(self):
        coordinator = self.make_fleet(2, seed=7)

        def drain_shard0(completion):
            if completion.assignment.shard == 0:
                coordinator.drain_workcell(0)

        coordinator.add_run_listener(drain_shard0)
        coordinator.run_jobs([10.0] * 4, lambda d, _shard, _lane: sleeper(d))
        merged = coordinator.merged_action_log()
        lifecycle = [entry for entry in merged if "event" in entry]
        assert [entry["event"] for entry in lifecycle] == ["drain-requested", "workcell-retired"]
        assert all(entry["workcell"] == "workcell-0" for entry in lifecycle)

    def test_listener_registration_order_and_removal(self):
        coordinator = self.make_fleet(1, seed=3)
        order = []
        first = coordinator.add_run_listener(lambda c: order.append("first"))
        coordinator.add_run_listener(lambda c: order.append("second"))
        coordinator.run_jobs([1.0], lambda d, _shard, _lane: sleeper(d))
        assert order == ["first", "second"]
        coordinator.remove_run_listener(first)
        coordinator.run_jobs([1.0], lambda d, _shard, _lane: sleeper(d))
        assert order == ["first", "second", "second"]


class TestDrainDuringTwoPhaseAction(FactoryFixtures):
    def test_pending_get_plate_completes_before_retirement(self):
        """A drain issued while a sciclops ``get_plate`` submission is pending
        must still apply the completion (the plate lands on the exchange)
        before the shard retires."""
        coordinator = self.make_fleet(2, seed=7)

        def make_program(job, shard, lane):
            if job == "get_plate":
                def fetch():
                    invocation = yield ("action", "sciclops", "get_plate", {})
                    return invocation
                return fetch()
            return sleeper(30.0, marker=job)

        # get_plate takes ~55 s; the drain event fires at t=1, squarely
        # between the submission (t=0) and its scheduled completion.
        engine0 = coordinator.engines[0]
        engine0.scheduler.schedule_at(1.0, lambda: coordinator.drain_workcell(0))
        results = coordinator.run_jobs(["get_plate", "sleep-a", "sleep-b"], make_program)

        # The two-phase completion was applied: the plate physically sits on
        # the exchange, and the program received its invocation.
        sciclops = engine0.workcell.module("sciclops").device
        assert engine0.workcell.deck.is_occupied(sciclops.exchange_location)
        assert results[0] is not None
        assert results[0].action == "get_plate"
        assert results[1:] == ["sleep-a", "sleep-b"]

        # The shard retired only after the completion landed.
        status = coordinator.status()
        assert status.shards[0].state == "drained"
        retirement = coordinator.fleet_events[-1]
        assert retirement["event"] == "workcell-retired"
        assert retirement["start_time"] >= 10.0
        # Everything the draining shard did not finish went to shard 1.
        shard_counts = [p.shard for p in coordinator.assignments]
        assert shard_counts == [0, 1, 1]
