"""Tests for work-stealing lane assignment and the multi-workcell coordinator."""

import pytest

from repro.wei.concurrent import (
    ConcurrentWorkflowEngine,
    run_programs_on_lanes,
    run_programs_work_stealing,
)
from repro.wei.coordinator import MultiWorkcellCoordinator
from repro.wei.engine import WorkflowError
from repro.wei.workcell import build_color_picker_workcell


def sleeper(duration, marker=None):
    """A program that occupies its lane for ``duration`` simulated seconds."""
    yield ("sleep", float(duration))
    return marker if marker is not None else duration


def fresh_engine(seed=0):
    return ConcurrentWorkflowEngine(build_color_picker_workcell(seed=seed))


#: Skewed durations where pinning job i to lane i % 2 is badly unbalanced:
#: static lanes get [100, 1, 1] = 102 and [1, 1, 1] = 3, while work stealing
#: gives the long job one lane (100) and the five short ones the other (5).
SKEWED = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0]


class TestWorkStealingLanes:
    def test_beats_static_pinning_on_skewed_durations(self):
        static_engine = fresh_engine()
        run_programs_on_lanes(static_engine, [sleeper(d) for d in SKEWED], n_lanes=2)
        stealing_engine = fresh_engine()
        run_programs_work_stealing(stealing_engine, [sleeper(d) for d in SKEWED], n_lanes=2)
        assert stealing_engine.makespan <= static_engine.makespan
        assert stealing_engine.makespan == pytest.approx(100.0)
        assert static_engine.makespan == pytest.approx(102.0)

    def test_every_job_lands_exactly_once_in_order(self):
        engine = fresh_engine()
        markers = [f"job-{i}" for i in range(len(SKEWED))]
        results = run_programs_work_stealing(
            engine,
            [sleeper(d, marker) for d, marker in zip(SKEWED, markers)],
            n_lanes=2,
        )
        assert results == markers  # in submission order, none dropped or doubled

    def test_more_lanes_than_jobs(self):
        engine = fresh_engine()
        results = run_programs_work_stealing(engine, [sleeper(5.0)], n_lanes=3)
        assert results == [5.0]

    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            run_programs_work_stealing(fresh_engine(), [sleeper(1.0)], n_lanes=0)

    def test_program_error_propagates(self):
        def doomed():
            yield ("sleep", 1.0)
            raise WorkflowError("boom")

        engine = fresh_engine()
        with pytest.raises(WorkflowError, match="boom"):
            run_programs_work_stealing(engine, [doomed()], n_lanes=1)


class TestCoordinator:
    def run_fleet(self, assignment):
        coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(2, seed=7)
        results = coordinator.run_jobs(
            list(SKEWED),
            lambda duration, shard, lane: sleeper(duration),
            assignment=assignment,
        )
        return coordinator, results

    def test_work_stealing_beats_static_across_workcells(self):
        stealing, _ = self.run_fleet("work-stealing")
        static, _ = self.run_fleet("static")
        assert stealing.makespan <= static.makespan
        assert stealing.makespan == pytest.approx(100.0)
        assert static.makespan == pytest.approx(102.0)

    def test_results_and_assignments_cover_every_job_once(self):
        coordinator, results = self.run_fleet("work-stealing")
        assert results == SKEWED
        assert all(placement is not None for placement in coordinator.assignments)
        assert sorted(p.job_index for p in coordinator.assignments) == list(range(len(SKEWED)))
        assert {p.shard for p in coordinator.assignments} == {0, 1}

    def test_shard_makespans_and_fleet_makespan(self):
        coordinator, _ = self.run_fleet("work-stealing")
        shards = coordinator.shard_makespans()
        assert len(shards) == 2
        assert coordinator.makespan == max(shards)

    def test_merged_action_log_is_time_sorted_and_tagged(self):
        coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(2, seed=7)

        def check(_job, shard, _lane):
            invocation = yield ("action", "sciclops", "status", {})
            return invocation.module

        coordinator.run_jobs([0, 1, 2, 3], check)
        merged = coordinator.merged_action_log()
        assert len(merged) == 4
        assert {entry["workcell"] for entry in merged} == {"workcell-0", "workcell-1"}
        starts = [entry["start_time"] for entry in merged]
        assert starts == sorted(starts)

    def test_utilisation_views(self):
        coordinator, _ = self.run_fleet("work-stealing")
        merged = coordinator.utilisation()
        # Every module of every shard appears, tagged with its workcell...
        assert any(key.endswith("@workcell-0") for key in merged)
        assert any(key.endswith("@workcell-1") for key in merged)
        # ...and sleeping programs never reserve a device.
        assert coordinator.overall_utilisation() == 0.0

    def test_determinism(self):
        first, first_results = self.run_fleet("work-stealing")
        second, second_results = self.run_fleet("work-stealing")
        assert first_results == second_results
        assert first.makespan == pytest.approx(second.makespan)
        assert [p.shard for p in first.assignments] == [p.shard for p in second.assignments]

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiWorkcellCoordinator([])
        with pytest.raises(ValueError):
            MultiWorkcellCoordinator.build_color_picker_fleet(0)
        engine = fresh_engine()
        with pytest.raises(ValueError):
            MultiWorkcellCoordinator([engine, engine])
        coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(1, seed=1)
        with pytest.raises(ValueError, match="assignment"):
            coordinator.run_jobs([1], lambda j, s, l: sleeper(j), assignment="psychic")
