"""Tests for the event-driven concurrent workflow engine."""

import pytest

from repro.core.protocol import build_mix_protocol
from repro.hardware.labware import Plate
from repro.sim.faults import FaultPolicy
from repro.wei.concurrent import ConcurrencyError, ConcurrentWorkflowEngine
from repro.wei.engine import WorkflowEngine, WorkflowError
from repro.wei.workflow import WorkflowSpec


def mix_spec(ot2: str) -> WorkflowSpec:
    """The staging="ot2" mix chain: mix, visit the camera, come back."""
    deck_location = f"{ot2}.deck"
    spec = WorkflowSpec(name=f"mix_{ot2}")
    spec.add_step(ot2, "run_protocol", protocol="$payload.protocol")
    spec.add_step("pf400", "transfer", source=deck_location, target="camera.stage")
    spec.add_step("camera", "take_picture")
    spec.add_step("pf400", "transfer", source="camera.stage", target=deck_location)
    return spec


def stage_lane(workcell, ot2: str, wells_offset: int = 0):
    """Put a fresh plate on the OT-2 deck and fill its reservoirs."""
    device = workcell.module(ot2).device
    plate = Plate(barcode=f"bench-{ot2}")
    workcell.deck.place(plate, device.deck_location)
    for reservoir in device.reservoirs.values():
        reservoir.fill()
    return plate


def protocol_for(workcell, n_wells: int, start: int = 0, name: str = "proto"):
    dye_names = workcell.chemistry.dyes.names
    plate = Plate(barcode="naming-only")
    wells = plate.empty_wells[start : start + n_wells]
    ratios = [[0.25, 0.25, 0.25, 0.25]] * n_wells
    return build_mix_protocol(
        name=name, wells=wells, ratios=ratios, dye_names=dye_names, max_component_volume_ul=40.0
    )


class TestConcurrentExecution:
    def test_two_lanes_interleave_and_beat_sequential(self, make_workcell):
        """The core Section 4 claim: two OT-2s, one workload, smaller makespan."""
        def run(n_ot2, concurrent):
            workcell = make_workcell(seed=11, n_ot2=n_ot2)
            lanes = [name for name, _ in workcell.ot2_barty_pairs()][:2]
            payloads = []
            specs = []
            for index in range(4):
                ot2 = lanes[index % len(lanes)]
                specs.append(mix_spec(ot2))
                payloads.append({"protocol": protocol_for(workcell, 8, start=8 * (index // len(lanes)))})
            for ot2 in lanes:
                stage_lane(workcell, ot2)
            if concurrent:
                engine = ConcurrentWorkflowEngine(workcell)
                results = engine.run_all(specs, payloads)
                return engine.makespan, results
            engine = WorkflowEngine(workcell)
            start = workcell.clock.now()
            results = [engine.run_workflow(s, payload=p) for s, p in zip(specs, payloads)]
            return workcell.clock.now() - start, results

        sequential_makespan, _ = run(2, concurrent=False)
        concurrent_makespan, results = run(2, concurrent=True)
        assert all(result.success for result in results)
        assert concurrent_makespan < sequential_makespan
        # Mix time dominates, so two lanes should get close to a 2x speedup.
        assert concurrent_makespan < 0.75 * sequential_makespan

    def test_module_reservations_never_overlap(self, make_workcell):
        workcell = make_workcell(seed=5, n_ot2=2)
        for ot2 in ("ot2", "ot2_2"):
            stage_lane(workcell, ot2)
        engine = ConcurrentWorkflowEngine(workcell)
        specs = [mix_spec("ot2"), mix_spec("ot2_2"), mix_spec("ot2"), mix_spec("ot2_2")]
        payloads = [
            {"protocol": protocol_for(workcell, 4, start=4 * (i // 2))} for i in range(4)
        ]
        engine.run_all(specs, payloads)
        for name, timeline in engine.timelines.items():
            intervals = sorted(timeline.intervals)
            for (_, end), (start, _) in zip(intervals, intervals[1:]):
                assert start >= end - 1e-9, f"overlapping reservations on {name}"

    def test_results_match_submission_order_and_are_logged(self, make_workcell):
        workcell = make_workcell(seed=2, n_ot2=2)
        for ot2 in ("ot2", "ot2_2"):
            stage_lane(workcell, ot2)
        engine = ConcurrentWorkflowEngine(workcell)
        results = engine.run_all(
            [mix_spec("ot2"), mix_spec("ot2_2")],
            [{"protocol": protocol_for(workcell, 2)}, {"protocol": protocol_for(workcell, 2)}],
        )
        assert [r.workflow_name for r in results] == ["mix_ot2", "mix_ot2_2"]
        assert engine.runs_completed == 2
        assert engine.run_logger.n_runs == 2
        # Step values keep working through the concurrent path.
        assert "camera.take_picture" in results[0].step_values()

    def test_camera_stage_contention_is_serialised(self, make_workcell):
        """Both lanes photograph on the single camera nest without colliding."""
        workcell = make_workcell(seed=7, n_ot2=2)
        for ot2 in ("ot2", "ot2_2"):
            stage_lane(workcell, ot2)
        engine = ConcurrentWorkflowEngine(workcell)
        results = engine.run_all(
            [mix_spec("ot2"), mix_spec("ot2_2")],
            [{"protocol": protocol_for(workcell, 2)}, {"protocol": protocol_for(workcell, 2)}],
        )
        assert all(result.success for result in results)
        # The camera.stage slot is held from arrival to departure; those
        # windows must not overlap between the two plates.
        windows = []
        for result in results:
            arrive = next(s for s in result.steps if s.action == "transfer" and s.step_name.endswith(".1"))
            depart = next(s for s in result.steps if s.step_name.endswith(".3"))
            windows.append((arrive.end_time, depart.end_time))
        windows.sort()
        assert windows[1][0] >= windows[0][1] - 1e-9
        assert not workcell.deck.is_occupied("camera.stage")

    def test_deterministic_given_same_seed(self, make_workcell):
        def makespan():
            workcell = make_workcell(seed=3, n_ot2=2)
            for ot2 in ("ot2", "ot2_2"):
                stage_lane(workcell, ot2)
            engine = ConcurrentWorkflowEngine(workcell)
            engine.run_all(
                [mix_spec("ot2"), mix_spec("ot2_2")],
                [{"protocol": protocol_for(workcell, 3)}, {"protocol": protocol_for(workcell, 3)}],
            )
            return engine.makespan

        assert makespan() == pytest.approx(makespan())


class TestFaultsAndFailures:
    def test_recoverable_failures_are_retried(self, make_workcell):
        workcell = make_workcell(
            seed=3,
            fault_policy=FaultPolicy(command_failure={"sciclops": 0.4}, unrecoverable_fraction=0.0),
        )
        engine = ConcurrentWorkflowEngine(workcell, max_retries=25)
        spec = WorkflowSpec(name="stubborn")
        for _ in range(6):
            spec.add_step("sciclops", "status")
        result = engine.run_all([spec])[0]
        assert result.success
        assert sum(step.retries for step in result.steps) > 0

    def test_exhausted_retries_fail_the_run_and_are_recorded(self, make_workcell):
        workcell = make_workcell(
            seed=3,
            fault_policy=FaultPolicy(command_failure={"sciclops": 1.0}, unrecoverable_fraction=0.0),
        )
        engine = ConcurrentWorkflowEngine(workcell, max_retries=1)
        handle = engine.submit(WorkflowSpec(name="doomed").add_step("sciclops", "status"))
        with pytest.raises(WorkflowError):
            engine.run_until_complete()
        assert handle.done and not handle.success
        assert engine.runs_failed == 1
        assert not engine.run_logger.runs[0].success

    def test_stalled_execution_raises_concurrency_error(self, make_workcell):
        workcell = make_workcell(seed=1)
        # A plate sits on the camera stage and nothing will ever remove it.
        workcell.deck.place(Plate(barcode="blocker"), "camera.stage")
        workcell.deck.place(Plate(barcode="mover"), "ot2.deck")
        engine = ConcurrentWorkflowEngine(workcell)
        spec = WorkflowSpec(name="stuck").add_step(
            "pf400", "transfer", source="ot2.deck", target="camera.stage"
        )
        engine.submit(spec)
        with pytest.raises(ConcurrencyError, match="stalled"):
            engine.run_until_complete()


class TestPrograms:
    def test_program_protocol_roundtrip(self, make_workcell):
        workcell = make_workcell(seed=9)
        engine = ConcurrentWorkflowEngine(workcell)

        def program():
            spec = WorkflowSpec(name="fetch").add_step("sciclops", "get_plate")
            result = yield ("workflow", spec, None)
            yield ("sleep", 30.0)
            invocation = yield ("action", "pf400", "move_home", {})
            return (result.success, invocation.module)

        handle = engine.submit_program(program(), name="demo")
        engine.run_until_complete()
        assert handle.success
        assert handle.result == (True, "pf400")
        assert engine.makespan > 30.0

    def test_workflow_failure_is_thrown_into_program(self, make_workcell):
        workcell = make_workcell(
            seed=3,
            fault_policy=FaultPolicy(command_failure={"sciclops": 1.0}, unrecoverable_fraction=0.0),
        )
        engine = ConcurrentWorkflowEngine(workcell, max_retries=0)

        def program():
            spec = WorkflowSpec(name="doomed").add_step("sciclops", "status")
            try:
                yield ("workflow", spec, None)
            except WorkflowError:
                return "recovered"
            return "unreachable"

        handle = engine.submit_program(program(), name="recoverer")
        engine.run_until_complete(raise_errors=False)
        assert handle.result == "recovered"

    def test_unknown_request_kind_errors_the_program(self, make_workcell):
        workcell = make_workcell(seed=1)
        engine = ConcurrentWorkflowEngine(workcell)

        def program():
            yield ("teleport", "ot2")

        handle = engine.submit_program(program(), name="bad")
        with pytest.raises(ValueError, match="teleport"):
            engine.run_until_complete()
        assert handle.done and handle.error is not None


class TestValidation:
    def test_negative_retries_rejected(self, make_workcell):
        workcell = make_workcell(seed=1)
        with pytest.raises(ValueError):
            ConcurrentWorkflowEngine(workcell, max_retries=-1)

    def test_mismatched_payloads_rejected(self, make_workcell):
        workcell = make_workcell(seed=1)
        engine = ConcurrentWorkflowEngine(workcell)
        with pytest.raises(ValueError):
            engine.run_all([WorkflowSpec(name="a").add_step("sciclops", "status")], [None, None])
