"""Tests for the WEI module abstraction."""

import pytest

from repro.hardware.pf400 import Pf400Device
from repro.hardware.sciclops import SciclopsDevice
from repro.wei.module import Module, ModuleActionError


@pytest.fixture
def sciclops_module(deck, clock):
    device = SciclopsDevice(deck, clock=clock)
    return Module("sciclops", device, actions={"get_plate": device.get_plate, "status": device.status})


class TestInvoke:
    def test_invoke_returns_value_and_records(self, sciclops_module, deck):
        invocation = sciclops_module.invoke("get_plate")
        assert invocation.module == "sciclops"
        assert invocation.commands == 1
        assert invocation.duration > 0
        assert deck.plate_at("sciclops.exchange") is invocation.return_value

    def test_unknown_action_rejected(self, sciclops_module):
        with pytest.raises(ModuleActionError, match="has no action"):
            sciclops_module.invoke("fly")

    def test_invoke_with_kwargs(self, deck, clock):
        sciclops = SciclopsDevice(deck, clock=clock)
        pf400 = Pf400Device(deck, clock=clock)
        module = Module("pf400", pf400, actions={"transfer": pf400.transfer})
        sciclops.get_plate()
        invocation = module.invoke("transfer", source="sciclops.exchange", target="camera.stage")
        assert invocation.commands == 1
        assert deck.is_occupied("camera.stage")

    def test_records_are_scoped_to_invocation(self, sciclops_module):
        first = sciclops_module.invoke("status")
        second = sciclops_module.invoke("status")
        assert len(first.records) == 1
        assert len(second.records) == 1
        assert second.records[0].start_time >= first.records[0].end_time


class TestIntrospection:
    def test_action_names_sorted(self, sciclops_module):
        assert sciclops_module.action_names() == ["get_plate", "status"]

    def test_has_action(self, sciclops_module):
        assert sciclops_module.has_action("get_plate")
        assert not sciclops_module.has_action("transfer")

    def test_describe(self, sciclops_module):
        description = sciclops_module.describe()
        assert description["name"] == "sciclops"
        assert description["type"] == "sciclops"
        assert "get_plate" in description["actions"]

    def test_describe_reports_two_phase_actions_and_driver(self, sciclops_module):
        description = sciclops_module.describe()
        # Both registered device actions ride the submit_<action> path...
        assert description["two_phase"] == ["get_plate", "status"]
        # ...and no transport is bound by default.
        assert description["driver"] is None

        class NamedDriver:
            name = "fake-transport"

        sciclops_module.bind_driver(NamedDriver())
        assert sciclops_module.describe()["driver"] == "fake-transport"
        assert sciclops_module.driver_name == "fake-transport"
        sciclops_module.bind_driver(None)
        assert sciclops_module.driver_name is None

    def test_custom_callable_is_not_two_phase(self, deck, clock):
        device = SciclopsDevice(deck, clock=clock)
        module = Module(
            "sciclops",
            device,
            actions={"get_plate": device.get_plate, "poke": lambda: "poked"},
        )
        description = module.describe()
        assert "poke" in description["actions"]
        assert description["two_phase"] == ["get_plate"]

    def test_auto_discovery_of_actions(self, deck, clock):
        device = Pf400Device(deck, clock=clock)
        module = Module("pf400", device)
        assert module.has_action("transfer")
        assert module.has_action("move_home")
        # Base-class bookkeeping must not be exposed as device actions.
        assert not module.has_action("reset_log")
        assert not module.has_action("describe")
