"""Tests for the framed wire protocol (`repro.wei.drivers.protocol`).

Covers the frame codec (round trips, CRC rejection, resynchronisation after
corruption), the byte pipe's link semantics, the protocol reliability rules
(idempotent submit retry, completion retransmission, reconnect-with-resync)
and the transport running a real engine workload with science identical to
pure simulation.
"""

import threading
import time

import pytest

from repro.sim.clock import WallClock
from repro.wei.drivers import DriverRegistry
from repro.wei.drivers.protocol import (
    BytePipe,
    Frame,
    FrameDecoder,
    FrameError,
    WireProtocolTransport,
    encode_frame,
)
from repro.wei.workflow import WorkflowSpec, WorkflowStep

#: Effectively-instant pacing that still runs the whole framed path
#: (encode -> pipe -> device threads -> frames back -> callbacks).
FAST = 1_000_000.0


def fast_transport(**kwargs):
    kwargs.setdefault("wall_clock", WallClock(sleep=False, speedup=FAST))
    kwargs.setdefault("ack_timeout_s", 0.05)
    kwargs.setdefault("device_retransmit_s", 0.02)
    return WireProtocolTransport(name=kwargs.pop("name", "wire-test"), **kwargs)


def collect_completions(transport):
    """Register a collector; returns (list, lock) the callback appends into."""
    received = []
    lock = threading.Lock()

    def on_completion(completion):
        with lock:
            received.append(completion)

    transport.on_completion(on_completion)
    return received, lock


def wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestFrameCodec:
    def test_round_trip(self):
        frame = Frame(kind="SUBMIT", seq=7, payload={"action": "get_plate", "duration_s": 3.5})
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(frame)) == [frame]
        assert decoder.crc_errors == 0

    def test_incremental_feed_across_arbitrary_chunking(self):
        frames = [Frame(kind="ACK", seq=i, payload={"i": i}) for i in range(5)]
        stream = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        decoded = []
        for index in range(0, len(stream), 3):  # pathological 3-byte chunks
            decoded.extend(decoder.feed(stream[index : index + 3]))
        assert decoded == frames

    def test_corrupt_body_is_counted_and_skipped(self):
        good = Frame(kind="COMPLETE", seq=2, payload={"ticket_id": "t"})
        corrupted = bytearray(encode_frame(Frame(kind="COMPLETE", seq=1)))
        corrupted[8] ^= 0x40  # flip a bit inside the CRC-protected body
        decoder = FrameDecoder()
        decoded = decoder.feed(bytes(corrupted) + encode_frame(good))
        assert decoded == [good]
        assert decoder.crc_errors == 1

    def test_garbage_between_frames_is_tolerated(self):
        frame = Frame(kind="SYNC", seq=0)
        decoder = FrameDecoder()
        decoded = decoder.feed(b"\x00noise\xff" + encode_frame(frame) + b"tail")
        assert decoded == [frame]

    def test_absurd_length_prefix_does_not_wedge_the_decoder(self):
        # magic + a length no frame can have; the real frame follows.
        bogus = b"\xa5\x5a" + (1 << 24).to_bytes(4, "big")
        frame = Frame(kind="ACK", seq=3)
        decoder = FrameDecoder()
        decoded = decoder.feed(bogus + encode_frame(frame))
        assert decoded == [frame]
        assert decoder.crc_errors >= 1

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(FrameError):
            Frame(kind="GOSSIP", seq=0)

    def test_sequence_number_range_enforced(self):
        with pytest.raises(FrameError):
            Frame(kind="ACK", seq=-1)


class TestBytePipe:
    def test_bytes_flow_both_ways(self):
        pipe = BytePipe()
        pipe.write_a(b"to-device")
        assert pipe.read_b(timeout_s=1.0) == b"to-device"
        pipe.write_b(b"to-transport")
        assert pipe.read_a(timeout_s=1.0) == b"to-transport"

    def test_read_times_out_empty(self):
        pipe = BytePipe()
        assert pipe.read_a(timeout_s=0.01) == b""

    def test_disconnect_loses_in_transit_bytes_and_signals_eof(self):
        pipe = BytePipe()
        pipe.write_a(b"doomed")
        pipe.disconnect()
        assert pipe.read_b(timeout_s=0.05) is None  # EOF, not the lost bytes
        assert pipe.write_a(b"void") == 0  # writes vanish while down
        pipe.reconnect()
        pipe.write_a(b"alive")
        assert pipe.read_b(timeout_s=1.0) == b"alive"
        assert pipe.disconnects == 1

    def test_close_is_permanent(self):
        pipe = BytePipe()
        pipe.close()
        assert pipe.read_a(timeout_s=0.01) is None
        with pytest.raises(Exception):
            pipe.reconnect()


class TestWireTransport:
    def test_submit_completes_out_of_band(self):
        transport = fast_transport()
        received, lock = collect_completions(transport)
        ticket = transport.submit("get_plate", module="sciclops", duration_s=40.0)
        assert wait_until(lambda: len(received) == 1)
        completion = received[0]
        assert completion.ticket_id == ticket.ticket_id
        assert completion.module == "sciclops" and completion.action == "get_plate"
        assert completion.thread_id != threading.get_ident()
        stats = transport.stats()
        assert stats.retries == 0 and stats.resyncs == 0 and stats.crc_errors == 0
        transport.close()

    def test_many_submissions_each_complete_exactly_once(self):
        transport = fast_transport()
        received, lock = collect_completions(transport)
        tickets = [transport.submit(f"act{i}", module="m", duration_s=5.0) for i in range(25)]
        assert wait_until(lambda: len(received) == 25)
        time.sleep(0.05)  # a duplicate would land in this window
        with lock:
            delivered = [completion.ticket_id for completion in received]
        assert sorted(delivered) == sorted(t.ticket_id for t in tickets)
        assert len(delivered) == len(set(delivered))
        assert transport.pending() == 0
        transport.close()

    def test_submit_after_close_raises(self):
        transport = fast_transport()
        transport.close()
        with pytest.raises(RuntimeError):
            transport.submit("a", module="m", duration_s=1.0)

    def test_negative_duration_rejected(self):
        transport = fast_transport()
        with pytest.raises(ValueError):
            transport.submit("a", module="m", duration_s=-1.0)
        transport.close()

    def test_submit_retry_is_idempotent_when_acks_are_eaten(self):
        """Drop the first transmission of every command frame: the transport
        must retransmit under the same sequence number and the device must
        run the action exactly once."""

        class EatFirstAttempt:
            def decide(self, direction, seq, attempt, kind=""):
                from repro.wei.chaos import ChaosDecision

                return ChaosDecision(drop=(attempt == 0 and direction.endswith(":tx")))

            def record(self, *args):
                pass

        transport = fast_transport(chaos=EatFirstAttempt())
        received, lock = collect_completions(transport)
        transport.submit("transfer", module="pf400", duration_s=10.0)
        transport.submit("take_picture", module="camera", duration_s=2.0)
        assert wait_until(lambda: len(received) == 2)
        time.sleep(0.05)
        with lock:
            assert len(received) == 2  # retried commands did not re-run
        stats = transport.stats()
        assert stats.retries >= 2
        transport.close()

    def test_lost_completion_is_retransmitted_until_acked(self):
        """Drop the first transmission of every completion frame: the device
        must retransmit it until the transport ACKs."""

        class EatFirstCompletion:
            def decide(self, direction, seq, attempt, kind=""):
                from repro.wei.chaos import ChaosDecision

                return ChaosDecision(drop=(attempt == 0 and direction.endswith(":rx")))

            def record(self, *args):
                pass

        transport = fast_transport(chaos=EatFirstCompletion())
        received, lock = collect_completions(transport)
        transport.submit("run_protocol", module="ot2", duration_s=60.0)
        assert wait_until(lambda: len(received) == 1)
        assert transport.stats().completions_retransmitted >= 1
        transport.close()

    def test_disconnect_triggers_resync_and_nothing_is_lost(self):
        transport = fast_transport()
        received, lock = collect_completions(transport)
        transport.submit("get_plate", module="sciclops", duration_s=30.0)
        assert wait_until(lambda: len(received) == 1)
        # Yank the cable, then keep working: the transport must reconnect,
        # resync, and the next action must still complete exactly once.
        transport.pipe.disconnect()
        transport.submit("transfer", module="pf400", duration_s=20.0)
        assert wait_until(lambda: len(received) == 2)
        stats = transport.stats()
        assert stats.resyncs >= 1
        assert stats.disconnects >= 1
        with lock:
            ids = [completion.ticket_id for completion in received]
        assert len(ids) == len(set(ids))
        transport.close()

    def test_stats_snapshot_shape(self):
        transport = fast_transport()
        stats = transport.stats().to_dict()
        assert set(stats) == {
            "frames_sent",
            "frames_received",
            "crc_errors",
            "retries",
            "resyncs",
            "duplicates_dropped",
            "completions_retransmitted",
            "disconnects",
        }
        transport.close()


class TestWireBackedEngine:
    def newplate_spec(self):
        return WorkflowSpec(
            name="wf_newplate",
            steps=[
                WorkflowStep(module="sciclops", action="get_plate", args={}),
                WorkflowStep(
                    module="pf400",
                    action="transfer",
                    args={"source": "sciclops.exchange", "target": "camera.stage"},
                ),
            ],
        )

    def fetch_and_trash_spec(self):
        """Fetch a plate, stage it, discard it -- safely repeatable on one deck."""
        return WorkflowSpec(
            name="wf_fetch_and_trash",
            steps=[
                WorkflowStep(module="sciclops", action="get_plate", args={}),
                WorkflowStep(
                    module="pf400",
                    action="transfer",
                    args={"source": "sciclops.exchange", "target": "camera.stage"},
                ),
                WorkflowStep(
                    module="pf400",
                    action="transfer",
                    args={"source": "camera.stage", "target": "trash"},
                ),
            ],
        )

    def test_wire_run_matches_pure_simulation_exactly(self, make_engine, make_workcell):
        sim_result = make_engine(seed=7).run_all([self.newplate_spec()])[0]
        workcell = make_workcell(seed=7)
        registry = DriverRegistry.wire(
            workcell, wall_clock=WallClock(sleep=False, speedup=FAST)
        )
        try:
            from repro.wei.concurrent import ConcurrentWorkflowEngine

            wire_engine = ConcurrentWorkflowEngine(workcell, drivers=registry)
            wire_result = wire_engine.run_all([self.newplate_spec()])[0]
        finally:
            registry.close()
        assert [step.to_dict() for step in wire_result.steps] == [
            step.to_dict() for step in sim_result.steps
        ]
        assert wire_result.duration == sim_result.duration
        assert wire_engine.transport_name == "wire"
        assert wire_engine.transport_stats().delivered == 2

    def test_engine_surfaces_wire_recovery_counters(self, make_workcell):
        from repro.wei.chaos import ChaosSchedule
        from repro.wei.concurrent import ConcurrentWorkflowEngine

        workcell = make_workcell(seed=3)
        registry = DriverRegistry.wire(
            workcell,
            wall_clock=WallClock(sleep=False, speedup=FAST),
            chaos=ChaosSchedule(11, disconnect_rate=0.0),
            ack_timeout_s=0.02,
            device_retransmit_s=0.02,
        )
        try:
            engine = ConcurrentWorkflowEngine(
                workcell, drivers=registry, completion_timeout_s=30.0
            )
            engine.run_all([self.fetch_and_trash_spec(), self.fetch_and_trash_spec()])
        finally:
            registry.close()
        recovery = engine.transport_retry_stats()
        assert set(recovery) == {
            "retries",
            "resyncs",
            "crc_errors",
            "duplicates_dropped",
            "completions_retransmitted",
        }
        # Chaos seed 11 deterministically injects faults into this workload
        # (decisions are pure functions of the frame identity), so the
        # counters must prove the wire actually recovered from something;
        # the identical-science assertions elsewhere prove none of it was
        # observable.
        assert sum(recovery.values()) > 0

    def test_sim_engine_reports_zero_recovery(self, make_engine):
        engine = make_engine(seed=3)
        recovery = engine.transport_retry_stats()
        # Typed snapshot, dict-style views intact.
        assert recovery.to_dict() == {
            "retries": 0,
            "resyncs": 0,
            "crc_errors": 0,
            "duplicates_dropped": 0,
            "completions_retransmitted": 0,
        }
        assert dict(recovery) == recovery.to_dict()
        assert recovery["retries"] == 0
        assert "resyncs" in recovery
