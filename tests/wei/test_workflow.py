"""Tests for declarative workflow specifications."""

import pytest

from repro.wei.workflow import WorkflowSpec, WorkflowStep, resolve_payload_references


class TestWorkflowSpec:
    def test_builder_adds_steps_in_order(self):
        spec = WorkflowSpec(name="wf").add_step("pf400", "transfer", source="a", target="b")
        spec.add_step("camera", "take_picture")
        assert spec.n_steps == 2
        assert spec.steps[0].args == {"source": "a", "target": "b"}
        assert spec.modules_used() == ["camera", "pf400"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            WorkflowSpec(name="")

    def test_step_requires_module_and_action(self):
        with pytest.raises(ValueError):
            WorkflowStep.from_dict({"module": "pf400"})

    def test_yaml_round_trip(self):
        spec = WorkflowSpec(name="cp_wf_mix_colors", description="mix")
        spec.add_step("pf400", "transfer", source="camera.stage", target="ot2.deck")
        spec.add_step("ot2", "run_protocol", protocol="$payload.protocol")
        text = spec.to_yaml()
        parsed = WorkflowSpec.from_yaml(text)
        assert parsed.name == spec.name
        assert parsed.n_steps == 2
        assert parsed.steps[1].args == {"protocol": "$payload.protocol"}

    def test_from_yaml_flowdef_layout(self):
        text = """
name: demo
description: example workflow
flowdef:
  - module: sciclops
    action: get_plate
  - module: pf400
    action: transfer
    args: {source: sciclops.exchange, target: camera.stage}
"""
        spec = WorkflowSpec.from_yaml(text)
        assert spec.name == "demo"
        assert spec.steps[1].module == "pf400"
        assert spec.steps[1].args["target"] == "camera.stage"

    def test_from_yaml_requires_mapping(self):
        with pytest.raises(ValueError):
            WorkflowSpec.from_yaml("- just\n- a list")

    def test_from_dict_requires_name(self):
        with pytest.raises(ValueError):
            WorkflowSpec.from_dict({"flowdef": []})


class TestPayloadReferences:
    def test_simple_reference(self):
        assert resolve_payload_references("$payload.protocol", {"protocol": 42}) == 42

    def test_nested_structures(self):
        value = {"args": {"p": "$payload.a.b"}, "list": ["$payload.c", 1]}
        payload = {"a": {"b": "deep"}, "c": "shallow"}
        resolved = resolve_payload_references(value, payload)
        assert resolved == {"args": {"p": "deep"}, "list": ["shallow", 1]}

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            resolve_payload_references("$payload.missing", {})

    def test_non_reference_strings_unchanged(self):
        assert resolve_payload_references("plain", {}) == "plain"
        assert resolve_payload_references(7, {}) == 7
