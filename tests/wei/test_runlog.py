"""Tests for the run logger."""

import json


from repro.wei.engine import WorkflowEngine
from repro.wei.runlog import RunLogger
from repro.wei.workflow import WorkflowSpec


def run_some_workflows(workcell, logger):
    engine = WorkflowEngine(workcell, run_logger=logger)
    engine.run_workflow(WorkflowSpec(name="wf_a").add_step("sciclops", "status"))
    engine.run_workflow(WorkflowSpec(name="wf_b").add_step("sciclops", "status").add_step("pf400", "move_home"))
    engine.run_workflow(WorkflowSpec(name="wf_a").add_step("sciclops", "status"))
    return engine


class TestRecording:
    def test_counts_and_queries(self, workcell):
        logger = RunLogger()
        run_some_workflows(workcell, logger)
        assert logger.n_runs == 3
        assert logger.workflow_counts() == {"wf_a": 2, "wf_b": 1}
        assert len(logger.runs_for("wf_a")) == 2
        assert logger.total_duration() > 0

    def test_module_busy_time(self, workcell):
        logger = RunLogger()
        run_some_workflows(workcell, logger)
        busy = logger.module_busy_time()
        assert busy["sciclops"] > 0
        assert busy["pf400"] > 0

    def test_per_run_files_written(self, workcell, tmp_path):
        logger = RunLogger(directory=tmp_path / "runs")
        run_some_workflows(workcell, logger)
        files = sorted((tmp_path / "runs").glob("*.json"))
        assert len(files) == 3
        data = json.loads(files[0].read_text())
        assert data["workflow_name"] == "wf_a"
        assert data["steps"][0]["duration"] > 0

    def test_dump_and_load(self, workcell, tmp_path):
        logger = RunLogger()
        run_some_workflows(workcell, logger)
        path = tmp_path / "all_runs.json"
        logger.dump(path)
        loaded = RunLogger.load_dicts(path)
        assert len(loaded) == 3
        assert loaded[1]["workflow_name"] == "wf_b"
