"""Tests for the asynchronous driver/transport subsystem (`repro.wei.drivers`).

Covers the completion bridge's threading contract, the paced mock
transport's pacing and fault injection, the engine's transport-backed
execution path (identical science, out-of-band delivery, deterministic
fault handling) and the coordinator's mixed sim/paced fleets including
drain-while-in-flight.
"""

import threading
import time

import pytest

from repro.core.campaign import run_campaign
from repro.sim.clock import WallClock
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.coordinator import MultiWorkcellCoordinator
from repro.wei.drivers import (
    CompletionBridge,
    CompletionTimeout,
    DriverRegistry,
    InBandCompletionError,
    PacedMockTransport,
    TransportCompletion,
    TransportFaultPlan,
    TransportTicket,
)
from repro.wei.workflow import WorkflowSpec, WorkflowStep

#: Effectively-instant pacing that still exercises the full worker-thread
#: delivery path (completions remain strictly out-of-band).
FAST = 1_000_000.0


def newplate_spec():
    return WorkflowSpec(
        name="wf_newplate",
        steps=[
            WorkflowStep(module="sciclops", action="get_plate", args={}),
            WorkflowStep(
                module="pf400",
                action="transfer",
                args={"source": "sciclops.exchange", "target": "camera.stage"},
            ),
        ],
    )


def fetch_and_trash_spec():
    """Fetch a plate, stage it, discard it -- safely repeatable on one deck."""
    return WorkflowSpec(
        name="wf_fetch_and_trash",
        steps=[
            WorkflowStep(module="sciclops", action="get_plate", args={}),
            WorkflowStep(
                module="pf400",
                action="transfer",
                args={"source": "sciclops.exchange", "target": "camera.stage"},
            ),
            WorkflowStep(
                module="pf400",
                action="transfer",
                args={"source": "camera.stage", "target": "trash"},
            ),
        ],
    )


@pytest.fixture
def make_paced_engine(make_workcell):
    """Factory: a colour-picker engine whose every module rides one paced transport."""

    def _make(seed=7, *, speedup=FAST, fault_plan=None, timeout=10.0):
        workcell = make_workcell(seed=seed)
        registry = DriverRegistry.paced(workcell, speedup=speedup, fault_plan=fault_plan)
        engine = ConcurrentWorkflowEngine(
            workcell, drivers=registry, completion_timeout_s=timeout
        )
        return engine, registry

    return _make


def ticket(ticket_id="t:0", module="m", action="a", duration=1.0):
    return TransportTicket(ticket_id=ticket_id, module=module, action=action, duration_s=duration)


def completion_for(t, thread_id=None):
    completion = TransportCompletion.for_ticket(t)
    if thread_id is not None:
        completion.thread_id = thread_id
    return completion


class TestCompletionBridge:
    def test_round_trip_records_latency_and_stats(self):
        bridge = CompletionBridge()
        t = ticket()
        bridge.register(t)
        assert bridge.outstanding() == 1
        bridge.post(completion_for(t, thread_id=12345))
        delivered = bridge.wait_for(t, timeout_s=1.0)
        assert delivered.ticket_id == t.ticket_id
        assert delivered.latency_s is not None and delivered.latency_s >= 0.0
        assert bridge.outstanding() == 0
        stats = bridge.stats()
        assert stats.delivered == 1 and stats.registered == 1
        assert stats.rejected_duplicate == 0 and stats.rejected_late == 0

    def test_out_of_order_completions_are_parked(self):
        bridge = CompletionBridge()
        first, second = ticket("t:0"), ticket("t:1")
        bridge.register(first)
        bridge.register(second)
        bridge.post(completion_for(second, thread_id=1))
        bridge.post(completion_for(first, thread_id=1))
        assert bridge.wait_for(first, timeout_s=1.0).ticket_id == "t:0"
        assert bridge.wait_for(second, timeout_s=1.0).ticket_id == "t:1"

    def test_duplicate_post_rejected_exactly_once(self):
        bridge = CompletionBridge()
        t = ticket()
        bridge.register(t)
        assert bridge.post(completion_for(t, thread_id=1)) is True
        assert bridge.post(completion_for(t, thread_id=1)) is False
        bridge.wait_for(t, timeout_s=1.0)
        # ...and a post after consumption is still a duplicate, not a new delivery.
        assert bridge.post(completion_for(t, thread_id=1)) is False
        stats = bridge.stats()
        assert stats.delivered == 1
        assert stats.rejected_duplicate == 2

    def test_timeout_then_late_arrival_is_rejected_as_late(self):
        bridge = CompletionBridge()
        t = ticket()
        bridge.register(t)
        with pytest.raises(CompletionTimeout):
            bridge.wait_for(t, timeout_s=0.01)
        assert bridge.post(completion_for(t, thread_id=1)) is False
        stats = bridge.stats()
        assert stats.timed_out == 1
        assert stats.rejected_late == 1
        assert bridge.outstanding() == 0

    def test_in_band_delivery_detected(self):
        bridge = CompletionBridge()
        t = ticket()
        bridge.register(t)
        # Post from this very thread: the bridge must refuse to pretend the
        # transport was asynchronous.
        bridge.post(completion_for(t))
        with pytest.raises(InBandCompletionError):
            bridge.wait_for(t, timeout_s=1.0)
        # The refused completion is audited as rejected, never as delivered.
        assert bridge.delivered == []
        assert len(bridge.rejected) == 1
        assert bridge.outstanding() == 0

    def test_post_before_register_is_matched(self):
        bridge = CompletionBridge()
        t = ticket()
        assert bridge.post(completion_for(t, thread_id=1)) is True
        bridge.register(t)
        assert bridge.wait_for(t, timeout_s=1.0).ticket_id == t.ticket_id


class TestPacedMockTransport:
    def test_completions_are_posted_out_of_band(self):
        transport = PacedMockTransport(speedup=FAST)
        received = []
        done = threading.Event()
        transport.on_completion(lambda c: (received.append(c), done.set()))
        transport.submit("get_plate", module="sciclops", duration_s=50.0)
        assert done.wait(5.0), "completion never arrived"
        assert received[0].thread_id != threading.get_ident()
        transport.close()

    def test_pacing_respects_speedup_lower_bound(self):
        transport = PacedMockTransport(speedup=200.0)
        done = threading.Event()
        transport.on_completion(lambda c: done.set())
        start = time.monotonic()
        transport.submit("transfer", module="pf400", duration_s=30.0)
        assert done.wait(5.0)
        elapsed = time.monotonic() - start
        # 30 simulated seconds at 200x is 0.15s of real pacing; sleeping can
        # overshoot but never undershoot.
        assert elapsed >= 0.8 * (30.0 / 200.0)
        transport.close()

    def test_earlier_due_submission_preempts_a_sleeping_worker(self):
        transport = PacedMockTransport(speedup=100.0)
        order = []
        done = threading.Event()

        def record(completion):
            order.append(completion.action)
            if len(order) == 2:
                done.set()

        transport.on_completion(record)
        transport.submit("slow", module="m", duration_s=40.0)
        transport.submit("fast", module="m", duration_s=5.0)
        assert done.wait(5.0)
        assert order == ["fast", "slow"]
        transport.close()

    def test_submit_after_close_raises(self):
        transport = PacedMockTransport(speedup=FAST)
        transport.close()
        with pytest.raises(RuntimeError):
            transport.submit("a", module="m", duration_s=1.0)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            TransportFaultPlan(by_ticket={0: "gremlins"})

    def test_fault_plan_lookup_precedence(self):
        plan = TransportFaultPlan(
            by_ticket={1: "timeout"}, by_action={("m", "a"): "duplicate"}
        )
        assert plan.fault_for(0, "m", "a") == "duplicate"
        assert plan.fault_for(1, "m", "a") == "timeout"
        assert plan.fault_for(2, "m", "b") is None


class TestTransportBackedEngine:
    def test_paced_run_matches_pure_simulation_exactly(self, make_engine, make_paced_engine):
        sim_engine = make_engine(seed=7)
        sim_result = sim_engine.run_all([newplate_spec()])[0]
        engine, registry = make_paced_engine(seed=7)
        paced_result = engine.run_all([newplate_spec()])[0]
        registry.close()
        assert [s.to_dict() for s in paced_result.steps] == [
            s.to_dict() for s in sim_result.steps
        ]
        assert paced_result.duration == sim_result.duration

    def test_no_completion_is_ever_posted_on_the_engine_thread(self, make_paced_engine):
        engine, registry = make_paced_engine(seed=3)
        engine.run_all([fetch_and_trash_spec(), fetch_and_trash_spec()])
        assert engine.engine_thread_id == threading.get_ident()
        assert len(registry.bridge.delivered) > 0
        assert all(
            completion.thread_id != engine.engine_thread_id
            for completion in registry.bridge.delivered
        )
        registry.close()

    def test_transport_introspection(self, make_paced_engine):
        engine, registry = make_paced_engine(seed=3)
        assert engine.transport_name == "paced-mock"
        assert engine.transport_idle()
        engine.run_all([newplate_spec()])
        assert engine.transport_idle()
        assert engine.transport_stats().delivered == 2
        assert len(engine.completion_latencies()) == 2
        # The bindings are visible on the modules for fleet/status views.
        described = engine.workcell.module("sciclops").describe()
        assert described["driver"] == "paced-mock"
        registry.close()

    def test_sim_engine_reports_no_transport(self, make_engine):
        engine = make_engine(seed=3)
        assert engine.transport_name == "sim"
        assert engine.transport_idle()
        assert engine.transport_stats() is None
        assert engine.completion_latencies() == []

    def test_duplicate_completion_deduped_exactly_once(self, make_paced_engine):
        engine, registry = make_paced_engine(
            seed=7, fault_plan=TransportFaultPlan(by_ticket={0: "duplicate"})
        )
        result = engine.run_all([newplate_spec()])[0]
        assert result.success
        stats = registry.bridge.stats()
        assert stats.delivered == 2
        assert stats.rejected_duplicate == 1
        registry.close()

    def test_silent_transport_times_out(self, make_paced_engine):
        engine, registry = make_paced_engine(
            seed=7, fault_plan=TransportFaultPlan(by_ticket={1: "timeout"}), timeout=0.1
        )
        with pytest.raises(CompletionTimeout):
            engine.run_all([newplate_spec()])
        assert registry.bridge.stats().timed_out == 1
        registry.close()

    def test_late_completion_within_deadline_is_tolerated(self, make_paced_engine):
        engine, registry = make_paced_engine(
            seed=7, fault_plan=TransportFaultPlan(by_ticket={0: "late"}), timeout=10.0
        )
        result = engine.run_all([newplate_spec()])[0]
        assert result.success
        assert registry.bridge.stats().rejected_late == 0
        registry.close()

    def test_late_completion_past_deadline_is_rejected_late(self, make_workcell):
        # 40 simulated seconds at 100x pace ~0.4s; the late fault doubles it
        # to ~0.8s while the engine only waits 0.2s -> timeout, then the
        # eventual arrival must be rejected exactly once as late.
        workcell = make_workcell(seed=7)
        registry = DriverRegistry.paced(
            workcell,
            speedup=100.0,
            fault_plan=TransportFaultPlan(by_ticket={0: "late"}),
        )
        engine = ConcurrentWorkflowEngine(
            workcell, drivers=registry, completion_timeout_s=0.2
        )
        with pytest.raises(CompletionTimeout):
            engine.run_all([newplate_spec()])
        deadline = time.monotonic() + 5.0
        while registry.bridge.stats().rejected_late == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        stats = registry.bridge.stats()
        assert stats.timed_out == 1
        assert stats.rejected_late == 1
        registry.close()

    def test_in_band_driver_is_rejected(self, make_workcell):
        class InBandDriver:
            """A misbehaving driver that completes synchronously at submit."""

            name = "in-band"

            def __init__(self):
                self._callbacks = []
                self._count = 0

            def submit(self, action, *, module, duration_s, **kwargs):
                t = TransportTicket(
                    ticket_id=f"ib:{self._count}",
                    module=module,
                    action=action,
                    duration_s=duration_s,
                )
                self._count += 1
                for callback in self._callbacks:
                    callback(TransportCompletion.for_ticket(t))
                return t

            def on_completion(self, callback):
                self._callbacks.append(callback)

            def pending(self):
                return 0

            def close(self):
                pass

        workcell = make_workcell(seed=7)
        registry = DriverRegistry()
        driver = InBandDriver()
        for module_type in ("sciclops", "pf400"):
            registry.bind_type(module_type, driver)
        engine = ConcurrentWorkflowEngine(workcell, drivers=registry)
        with pytest.raises(InBandCompletionError):
            engine.run_all([newplate_spec()])


class TestDriverRegistry:
    def test_module_binding_wins_over_type_binding(self, make_workcell):
        workcell = make_workcell(seed=1)
        registry = DriverRegistry()
        by_type = PacedMockTransport(name="type-driver", speedup=FAST)
        by_name = PacedMockTransport(name="name-driver", speedup=FAST)
        registry.bind_type("ot2", by_type)
        registry.bind_module("ot2", by_name)
        assert registry.driver_for(workcell.module("ot2")) is by_name
        bound = registry.attach(workcell)
        assert bound == {"ot2": "name-driver"}
        assert workcell.module("ot2").describe()["driver"] == "name-driver"
        assert workcell.module("pf400").describe()["driver"] is None
        registry.close()

    def test_paced_constructor_covers_every_module(self, make_workcell):
        workcell = make_workcell(seed=1)
        registry = DriverRegistry.paced(workcell, speedup=FAST)
        assert all(
            registry.driver_for(module) is not None
            for module in workcell.modules.values()
        )
        assert len(registry.drivers()) == 1
        registry.close()


class TestPacedFleet:
    def test_mixed_sim_and_paced_shards_coexist(self, make_workcell, make_engine):
        paced_workcell = make_workcell(name="paced-cell", seed=5)
        registry = DriverRegistry.paced(paced_workcell, speedup=FAST)
        paced = ConcurrentWorkflowEngine(paced_workcell, drivers=registry)
        sim = make_engine(name="sim-cell", seed=6)
        coordinator = MultiWorkcellCoordinator([paced, sim])

        def make_program(job, shard, lane):
            def fetch():
                result = yield ("workflow", fetch_and_trash_spec(), None)
                return result.success

            return fetch()

        results = coordinator.run_jobs([0, 1, 2, 3], make_program)
        registry.close()
        assert results == [True, True, True, True]
        status = coordinator.status()
        assert status.shards[0].transport == "paced-mock"
        assert status.shards[1].transport == "sim"
        # Both shards actually claimed work (the merged loop interleaves them).
        assert all(shard.completed > 0 for shard in status.shards)

    def test_completion_arrives_during_drain(self, make_workcell):
        """A drain requested while a paced shard is mid-action must wait for
        the in-flight transport completion before retiring the shard."""
        workcells = [
            make_workcell(name=f"cell-{i}", seed=10 + i) for i in range(2)
        ]
        registries = [DriverRegistry.paced(w, speedup=FAST) for w in workcells]
        engines = [
            ConcurrentWorkflowEngine(w, drivers=r)
            for w, r in zip(workcells, registries)
        ]
        coordinator = MultiWorkcellCoordinator(engines)
        observed = {}

        def drain_other(completion):
            if observed:
                return
            other = 1 - completion.assignment.shard
            status = coordinator.status()
            observed["drained"] = other
            observed["in_flight_at_drain"] = status.shards[other].in_flight
            observed["delivered_at_drain"] = len(registries[other].bridge.delivered)
            coordinator.drain_workcell(other)

        coordinator.add_run_listener(drain_other)

        def make_program(job, shard, lane):
            def fetch():
                result = yield ("workflow", fetch_and_trash_spec(), None)
                return result.success

            return fetch()

        results = coordinator.run_jobs([0, 1, 2, 3], make_program)
        for registry in registries:
            registry.close()
        assert results == [True, True, True, True]
        drained = observed["drained"]
        # The drained shard had a claimed run in flight when the drain landed...
        assert observed["in_flight_at_drain"] == 1
        # ...whose remaining completions were still delivered afterwards...
        assert (
            len(registries[drained].bridge.delivered)
            > observed["delivered_at_drain"]
        )
        # ...and the shard only retired once its transport went idle.
        assert engines[drained].transport_idle()
        states = {s.shard_id: s.state for s in coordinator.status().shards}
        assert states[drained] == "drained"
        events = [e["event"] for e in coordinator.fleet_events]
        assert events == ["drain-requested", "workcell-retired"]


class TestPacedCampaignRegression:
    def test_paced_campaign_scores_identical_to_sim(self):
        """Acceptance: --transport paced --speedup 1000 == sim scores, with
        every completion delivered from a non-engine thread."""
        shared = dict(n_runs=2, samples_per_run=4, batch_size=2, seed=42)
        sim = run_campaign(experiment_id="sim-campaign", **shared)
        paced = run_campaign(
            experiment_id="paced-campaign",
            transport="paced",
            speedup=1000.0,
            **shared,
        )
        assert paced.transport == "paced"
        assert [run.best_score for run in paced.runs] == [
            run.best_score for run in sim.runs
        ]
        for sim_run, paced_run in zip(sim.runs, paced.runs):
            assert [s.score for s in sim_run.samples] == [
                s.score for s in paced_run.samples
            ]
        stats = paced.transport_stats
        assert stats["delivered"] > 0
        assert stats["timed_out"] == 0
        assert stats["rejected_duplicate"] == 0 and stats["rejected_late"] == 0
        assert stats["wall_elapsed_s"] > 0
        assert stats["mean_delivery_latency_s"] >= 0.0

    def test_paced_campaign_completions_off_engine_thread(self):
        portal_runs = []
        campaign = run_campaign(
            n_runs=2,
            samples_per_run=3,
            batch_size=3,
            seed=9,
            experiment_id="paced-threads",
            transport="paced",
            speedup=100_000.0,
            on_run_complete=portal_runs.append,
        )
        assert len(portal_runs) == 2
        assert campaign.transport_stats["delivered"] > 0
        # run_campaign drives the merged loop on this thread; nothing may
        # have been posted from it.
        # (The registries are internal, so assert through the stats instead:
        # an in-band post would have raised InBandCompletionError.)
        assert campaign.portal.n_runs == 2


class TestWallClockSpeedup:
    def test_speedup_compresses_real_time(self):
        clock = WallClock(sleep=False, speedup=100.0)
        clock.advance(50.0)
        assert clock.now() >= 50.0
        assert clock.real_seconds(50.0) == pytest.approx(0.5)
        assert clock.speedup == 100.0
        assert clock.sleeps is False

    def test_sleeping_advance_scales_down(self):
        clock = WallClock(speedup=1000.0)
        start = time.monotonic()
        clock.advance(10.0)  # 10 ms real
        assert time.monotonic() - start < 5.0
        assert clock.now() >= 10.0

    def test_invalid_speedup_rejected(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError):
                WallClock(speedup=bad)
