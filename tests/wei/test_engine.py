"""Tests for the workflow execution engine."""

import pytest

from repro.sim.faults import FaultPolicy
from repro.wei.engine import WorkflowEngine, WorkflowError
from repro.wei.workcell import build_color_picker_workcell
from repro.wei.workflow import WorkflowSpec


@pytest.fixture
def engine(workcell):
    return WorkflowEngine(workcell)


def newplate_spec():
    spec = WorkflowSpec(name="newplate")
    spec.add_step("sciclops", "get_plate")
    spec.add_step("pf400", "transfer", source="sciclops.exchange", target="camera.stage")
    return spec


class TestRunWorkflow:
    def test_steps_run_in_order_with_timing(self, engine, workcell):
        result = engine.run_workflow(newplate_spec())
        assert result.success
        assert [step.action for step in result.steps] == ["get_plate", "transfer"]
        assert result.duration > 0
        assert result.steps[0].end_time <= result.steps[1].start_time
        assert result.end_time == workcell.clock.now()
        assert result.commands == 2

    def test_payload_references_resolved(self, engine, workcell):
        workcell.module("sciclops").invoke("get_plate")
        spec = WorkflowSpec(name="move")
        spec.add_step("pf400", "transfer", source="$payload.src", target="$payload.dst")
        result = engine.run_workflow(spec, payload={"src": "sciclops.exchange", "dst": "camera.stage"})
        assert result.success
        assert workcell.deck.is_occupied("camera.stage")

    def test_missing_payload_key_raises(self, engine):
        spec = WorkflowSpec(name="move")
        spec.add_step("pf400", "transfer", source="$payload.src", target="camera.stage")
        with pytest.raises(WorkflowError):
            engine.run_workflow(spec, payload={})

    def test_unknown_module_raises(self, engine):
        spec = WorkflowSpec(name="bad").add_step("pcr", "run")
        with pytest.raises(Exception):
            engine.run_workflow(spec)

    def test_runs_are_logged(self, engine):
        engine.run_workflow(newplate_spec())
        engine.run_workflow(WorkflowSpec(name="status").add_step("sciclops", "status"))
        assert engine.run_logger.n_runs == 2
        assert engine.run_logger.workflow_counts() == {"newplate": 1, "status": 1}
        assert engine.runs_completed == 2

    def test_step_values_accessible_by_key(self, engine):
        result = engine.run_workflow(newplate_spec())
        values = result.step_values()
        assert "sciclops.get_plate" in values
        assert values["sciclops.get_plate"].barcode.startswith("sciclops")


class TestStepValuesRepeatedSteps:
    """Regression: the bare key used to return the *first* occurrence of a
    repeated step, so consumers silently read stale values."""

    def test_bare_key_is_last_occurrence(self, engine):
        spec = WorkflowSpec(name="inventory")
        spec.add_step("sciclops", "status")
        spec.add_step("sciclops", "get_plate")
        spec.add_step("sciclops", "status")
        result = engine.run_workflow(spec)
        values = result.step_values()
        before = values["sciclops.status#1"].details["plates_remaining"]
        after = values["sciclops.status#2"].details["plates_remaining"]
        assert after == before - 1
        # The bare key must track the freshest (last) occurrence.
        assert values["sciclops.status"].details["plates_remaining"] == after

    def test_every_occurrence_is_suffixed_from_one(self, engine):
        spec = WorkflowSpec(name="repeat")
        for _ in range(3):
            spec.add_step("sciclops", "status")
        values = engine.run_workflow(spec).step_values()
        assert {"sciclops.status", "sciclops.status#1", "sciclops.status#2", "sciclops.status#3"} <= set(values)


class TestFailureHandling:
    def test_recoverable_failures_are_retried(self):
        workcell = build_color_picker_workcell(
            seed=3, fault_policy=FaultPolicy(command_failure={"sciclops": 0.45}, unrecoverable_fraction=0.0)
        )
        engine = WorkflowEngine(workcell, max_retries=25)
        spec = WorkflowSpec(name="stubborn")
        for _ in range(5):
            spec.add_step("sciclops", "status")
        result = engine.run_workflow(spec)
        assert result.success
        assert sum(step.retries for step in result.steps) > 0

    def test_exhausted_retries_fail_the_workflow(self):
        workcell = build_color_picker_workcell(
            seed=3, fault_policy=FaultPolicy(command_failure={"sciclops": 1.0}, unrecoverable_fraction=0.0)
        )
        engine = WorkflowEngine(workcell, max_retries=2)
        with pytest.raises(WorkflowError):
            engine.run_workflow(WorkflowSpec(name="doomed").add_step("sciclops", "status"))
        assert engine.runs_failed == 1
        # The failed run is still recorded for post-hoc analysis.
        assert engine.run_logger.n_runs == 1
        assert not engine.run_logger.runs[0].success

    def test_workflow_error_carries_partial_run_result(self):
        workcell = build_color_picker_workcell(
            seed=3, fault_policy=FaultPolicy(command_failure={"pf400": 1.0}, unrecoverable_fraction=0.0)
        )
        engine = WorkflowEngine(workcell, max_retries=0)
        spec = WorkflowSpec(name="partial")
        spec.add_step("sciclops", "status")
        spec.add_step("pf400", "move_home")
        with pytest.raises(WorkflowError) as excinfo:
            engine.run_workflow(spec)
        partial = excinfo.value.run_result
        assert partial is not None and not partial.success
        # The successful prefix step is still accounted in the partial result.
        assert [step.success for step in partial.steps] == [True, False]

    def test_negative_retries_rejected(self, workcell):
        with pytest.raises(ValueError):
            WorkflowEngine(workcell, max_retries=-1)


class TestRunResultSerialisation:
    def test_to_dict_round_trips_key_fields(self, engine):
        result = engine.run_workflow(newplate_spec())
        data = result.to_dict()
        assert data["workflow_name"] == "newplate"
        assert len(data["steps"]) == 2
        assert data["steps"][0]["action"] == "get_plate"
        assert data["duration"] == pytest.approx(result.duration)
