"""Tests for workcell assembly."""

import pytest

from repro.wei.workcell import Workcell, WorkcellConfigError, build_color_picker_workcell


class TestFactory:
    def test_default_workcell_has_five_modules(self, workcell):
        assert set(workcell.modules) == {"sciclops", "pf400", "camera", "ot2", "barty"}

    def test_modules_share_clock_and_deck(self, workcell):
        devices = workcell.devices
        assert all(device.clock is workcell.clock for device in devices)
        assert workcell.module("pf400").device.deck is workcell.deck

    def test_same_seed_reproducible(self):
        a = build_color_picker_workcell(seed=5)
        b = build_color_picker_workcell(seed=5)
        # Sample a duration from the same module on both workcells.
        duration_a = a.module("pf400").device.durations.sample("pf400", "transfer", rng=a.module("pf400").device.rng)
        duration_b = b.module("pf400").device.durations.sample("pf400", "transfer", rng=b.module("pf400").device.rng)
        assert duration_a == duration_b

    def test_multi_ot2_adds_modules_and_locations(self):
        workcell = build_color_picker_workcell(seed=1, n_ot2=3)
        assert {"ot2", "ot2_2", "ot2_3"} <= set(workcell.modules)
        assert {"barty", "barty_2", "barty_3"} <= set(workcell.modules)
        assert workcell.deck.has_location("ot2_2.deck")
        assert len(workcell.modules_of_type("ot2")) == 3

    def test_invalid_ot2_count_rejected(self):
        with pytest.raises(WorkcellConfigError):
            build_color_picker_workcell(n_ot2=0)

    def test_unknown_module_lookup_raises(self, workcell):
        with pytest.raises(WorkcellConfigError, match="no module"):
            workcell.module("pcr")

    def test_duplicate_module_rejected(self, workcell):
        with pytest.raises(WorkcellConfigError):
            workcell.add_module(workcell.module("pf400"))

    def test_describe_and_yaml(self, workcell):
        description = workcell.describe()
        assert description["name"] == workcell.name
        assert len(description["modules"]) == 5
        assert "modules" in workcell.to_yaml()

    def test_total_commands_counts_robotic_only(self, workcell):
        workcell.module("sciclops").invoke("get_plate")
        workcell.module("pf400").invoke("transfer", source="sciclops.exchange", target="camera.stage")
        workcell.module("camera").invoke("take_picture")
        assert workcell.total_commands(robotic_only=True) == 2
        assert workcell.total_commands(robotic_only=False) == 3

    def test_action_records_sorted_by_time(self, workcell):
        workcell.module("sciclops").invoke("get_plate")
        workcell.module("pf400").invoke("transfer", source="sciclops.exchange", target="camera.stage")
        records = workcell.action_records()
        assert len(records) == 2
        assert records[0].start_time <= records[1].start_time

    def test_reset_logs(self, workcell):
        workcell.module("sciclops").invoke("get_plate")
        workcell.reset_logs()
        assert workcell.total_commands() == 0


class TestFromYaml:
    VALID = """
name: rpl_colorpicker
modules:
  - name: sciclops
    type: sciclops
  - name: pf400
    type: pf400
  - name: ot2
    type: ot2
  - name: barty
    type: barty
  - name: camera
    type: camera
"""

    def test_valid_spec_builds_workcell(self):
        workcell = Workcell.from_yaml(self.VALID, seed=3)
        assert workcell.name == "rpl_colorpicker"
        assert set(workcell.modules) >= {"sciclops", "pf400", "ot2", "barty", "camera"}
        assert workcell.metadata["source"] == "yaml"

    def test_two_ot2_spec(self):
        text = self.VALID + "  - name: ot2_2\n    type: ot2\n"
        workcell = Workcell.from_yaml(text, seed=3)
        assert len(workcell.modules_of_type("ot2")) == 2

    def test_missing_required_module_rejected(self):
        text = """
name: broken
modules:
  - type: sciclops
"""
        with pytest.raises(WorkcellConfigError, match="must include"):
            Workcell.from_yaml(text)

    def test_unsupported_module_type_rejected(self):
        text = """
name: broken
modules:
  - type: pcr
  - type: pf400
  - type: ot2
  - type: camera
"""
        with pytest.raises(WorkcellConfigError, match="unsupported module type"):
            Workcell.from_yaml(text)

    def test_malformed_spec_rejected(self):
        with pytest.raises(WorkcellConfigError):
            Workcell.from_yaml("name: no_modules")
        with pytest.raises(WorkcellConfigError):
            Workcell.from_yaml("modules: []")
