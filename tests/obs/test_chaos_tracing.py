"""Tracing under chaos: the telemetry layer may observe, never perturb.

For every default chaos seed the soak CI matrix runs, an instrumented
wire campaign must

* balance its spans (every start has an end, nothing leaks open),
* record exactly one delivered-completion (``bridge.deliver``) span per
  submitted action,
* surface the wire's recovery work — retries and resyncs — as spans whose
  counts match the transport's own recovery counters, and
* produce a science fingerprint bit-identical to the uninstrumented sim
  baseline (the soak invariant, now with tracing on).
"""

import pytest

from repro import obs
from repro.core.campaign import run_campaign
from repro.publish.portal import DataPortal
from repro.wei.chaos.schedule import ChaosSchedule
from repro.wei.chaos.soak import DEFAULT_SEED_MATRIX, campaign_fingerprint

#: Same shape as the CI soak matrix (small enough for tier-1).
CAMPAIGN = dict(
    n_runs=3,
    samples_per_run=4,
    batch_size=2,
    n_workcells=2,
    solver="evolutionary",
    seed=816,
    experiment_id="obs-soak",
)
SPEEDUP = 500_000.0


@pytest.fixture(scope="module")
def sim_baseline():
    """The uninstrumented sim-transport fingerprint every seed must match."""
    campaign = run_campaign(portal=DataPortal(), **CAMPAIGN)
    return campaign_fingerprint(campaign)


@pytest.fixture(scope="class", params=DEFAULT_SEED_MATRIX)
def chaos_seed(request):
    """Class-scoped seed parametrisation: one campaign per seed, not per test."""
    return request.param


@pytest.mark.soak
class TestTracedChaosCampaign:
    @pytest.fixture(scope="class")
    def traced(self, chaos_seed):
        """One instrumented chaos campaign per seed, shared by the class."""
        with obs.observed() as session:
            campaign = run_campaign(
                portal=DataPortal(),
                transport="wire",
                speedup=SPEEDUP,
                completion_timeout_s=60.0,
                chaos=ChaosSchedule(chaos_seed),
                **CAMPAIGN,
            )
        by_name = {}
        for span_obj in session.spans:
            by_name.setdefault(span_obj.name, []).append(span_obj)
        return session, campaign, by_name

    def test_spans_are_balanced(self, traced, chaos_seed):
        session, _, _ = traced
        started, ended = session.tracer.counts()
        assert started == ended > 0
        assert session.tracer.open_spans() == 0
        assert session.tracer.dropped == 0

    def test_every_action_delivers_exactly_one_completion_span(self, traced, chaos_seed):
        _, campaign, by_name = traced
        deliver_tickets = [s.attrs["ticket_id"] for s in by_name["bridge.deliver"]]
        submit_tickets = [s.attrs["ticket_id"] for s in by_name["wire.submit"]]
        # Exactly one delivery per submitted action, despite duplicated /
        # retransmitted completions on the wire.
        assert len(deliver_tickets) == len(set(deliver_tickets))
        assert sorted(deliver_tickets) == sorted(submit_tickets)
        assert len(deliver_tickets) == campaign.transport_stats["delivered"]
        assert len(by_name["action"]) == len(deliver_tickets)

    def test_retries_and_resyncs_appear_as_child_spans(self, traced, chaos_seed):
        _, campaign, by_name = traced
        stats = campaign.transport_stats
        assert stats["retries"] + stats["resyncs"] > 0, (
            f"chaos seed {chaos_seed} injected no recovery work; "
            "the matrix no longer exercises the wire"
        )
        span_ids = {s.span_id: s for spans in by_name.values() for s in spans}
        retry_frames = [
            s
            for s in by_name.get("wire.frame", [])
            if s.attrs["kind"] == "SUBMIT" and s.attrs["attempt"] > 0
        ]
        assert len(retry_frames) == stats["retries"]
        for frame in retry_frames:
            parent = span_ids.get(frame.parent_id)
            assert parent is not None and parent.name == "wire.submit"
        assert len(by_name.get("wire.resync", [])) == stats["resyncs"]

    def test_chaos_injections_are_trace_events(self, traced, chaos_seed):
        _, _, by_name = traced
        injections = by_name.get("chaos.inject", [])
        assert injections, f"seed {chaos_seed} recorded no chaos.inject events"
        span_ids = {s.span_id: s for spans in by_name.values() for s in spans}
        parents = {
            span_ids[e.parent_id].name for e in injections if e.parent_id in span_ids
        }
        # Injections fire inside the transmitting thread's open frame span.
        assert parents <= {"wire.frame"}

    def test_science_fingerprint_is_bit_identical_to_sim(self, traced, sim_baseline, chaos_seed):
        _, campaign, _ = traced
        assert campaign_fingerprint(campaign) == sim_baseline

    def test_causal_tree_reaches_the_campaign_root(self, traced, chaos_seed):
        _, _, by_name = traced
        (campaign_span,) = by_name["campaign"]
        span_ids = {s.span_id: s for spans in by_name.values() for s in spans}
        for run_span in by_name["run"]:
            assert run_span.parent_id == campaign_span.span_id
        # Every action chains up to the campaign root through run/workflow.
        for action in by_name["action"]:
            node, hops = action, 0
            while node.parent_id is not None and hops < 10:
                node = span_ids[node.parent_id]
                hops += 1
            assert node is campaign_span
