"""Tracer unit tests: the off-by-default switch, causality, collection.

The cross-thread drain test is a regression guard: per-thread span state
must be a plain object registered per recording thread, not a
``threading.local`` -- a local resolves to the *draining* thread's
namespace, which silently loses every worker-thread span below the flush
threshold.
"""

import threading

import pytest

from repro.obs import tracer as obs_tracer
from repro.obs.tracer import _NULL_SPAN, Tracer


class TestDisabledFastPath:
    def test_tracing_is_off_by_default(self):
        assert obs_tracer.active() is None

    def test_module_span_returns_shared_null_span_when_off(self):
        first = obs_tracer.span("anything", attr=1)
        second = obs_tracer.span("other")
        assert first is second is _NULL_SPAN
        assert first.span is None

    def test_null_span_is_a_chainable_noop(self):
        with obs_tracer.span("off") as ctx:
            assert ctx.set(key="value") is ctx
            ctx.set_sim(start=0.0, end=1.0)

    def test_event_bind_bound_unbind_are_noops_when_off(self):
        obs_tracer.event("chaos.inject", kind="corrupt")
        obs_tracer.bind("ticket", 7)
        assert obs_tracer.bound("ticket") is None
        obs_tracer.unbind("ticket")

    def test_null_span_swallows_nothing(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs_tracer.span("off"):
                raise RuntimeError("boom")


class TestRecording:
    def test_with_span_records_and_balances(self, tracer):
        with tracer.span("outer", label="x"):
            pass
        assert tracer.counts() == (1, 1)
        assert tracer.open_spans() == 0
        (span_obj,) = tracer.drain()
        assert span_obj.name == "outer"
        assert span_obj.attrs == {"label": "x"}
        assert span_obj.status == "ok"
        assert span_obj.end_wall is not None
        assert span_obj.duration_s >= 0

    def test_nested_spans_auto_parent_on_the_thread_stack(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.span.parent_id == outer.span.span_id
            assert tracer.current_span_id() == outer.span.span_id
        assert tracer.current_span_id() is None

    def test_exception_marks_status_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("nope")
        (span_obj,) = tracer.drain()
        assert span_obj.status == "error"

    def test_set_sim_records_dual_timestamps(self, tracer):
        with tracer.span("timed", sim_time=10.0) as ctx:
            ctx.set_sim(end=22.5)
        (span_obj,) = tracer.drain()
        assert span_obj.start_sim == 10.0
        assert span_obj.end_sim == 22.5

    def test_record_complete_with_preallocated_id_parents_children(self, tracer):
        span_id = tracer.new_id()
        with tracer.span("child", parent_id=span_id) as child:
            child_id = child.span.span_id
        tracer.record_complete("two-phase", span_id=span_id, start_wall=0.0)
        spans = {span_obj.name: span_obj for span_obj in tracer.drain()}
        assert spans["child"].parent_id == spans["two-phase"].span_id == span_id
        assert child_id != span_id
        assert tracer.counts() == (2, 2)

    def test_event_is_zero_duration_and_auto_parented(self, tracer):
        with tracer.span("frame") as frame:
            tracer.event("chaos.inject", kind="corrupt")
        spans = {span_obj.name: span_obj for span_obj in tracer.drain()}
        injected = spans["chaos.inject"]
        assert injected.parent_id == frame.span.span_id
        assert injected.start_wall == injected.end_wall
        assert injected.attrs == {"kind": "corrupt"}

    def test_max_spans_bounds_memory_and_counts_drops(self):
        tracer = obs_tracer.install(Tracer(max_spans=3))
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        spans = tracer.drain()
        assert len(spans) == 3
        assert tracer.dropped == 2


class TestCausality:
    def test_bind_bound_unbind_round_trip(self, tracer):
        tracer.bind("wire:1", 42)
        assert tracer.bound("wire:1") == 42
        tracer.unbind("wire:1")
        assert tracer.bound("wire:1") is None
        tracer.unbind("wire:1")  # idempotent

    def test_module_bind_ignores_none_span_id(self, tracer):
        obs_tracer.bind("ticket", None)
        assert obs_tracer.bound("ticket") is None

    def test_bound_parent_crosses_threads(self, tracer):
        with tracer.span("action") as action:
            tracer.bind("wire:9", action.span.span_id)

            def deliver():
                with tracer.span("bridge.deliver", parent_id=tracer.bound("wire:9")):
                    pass

            worker = threading.Thread(target=deliver, name="bridge-worker")
            worker.start()
            worker.join()
        spans = {span_obj.name: span_obj for span_obj in tracer.drain()}
        assert spans["bridge.deliver"].parent_id == spans["action"].span_id
        assert spans["bridge.deliver"].thread_name == "bridge-worker"


class TestCollection:
    def test_drain_collects_worker_spans_below_flush_threshold(self, tracer):
        # Regression: with threading.local-based state, a worker's buffer
        # resolved empty from the main thread and its spans vanished.
        def work():
            with tracer.span("worker.op"):
                pass

        workers = [
            threading.Thread(target=work, name=f"worker-{index}") for index in range(3)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        spans = tracer.drain()
        assert len([s for s in spans if s.name == "worker.op"]) == 3
        assert {s.thread_name for s in spans} == {"worker-0", "worker-1", "worker-2"}
        assert tracer.counts() == (3, 3)

    def test_buffers_flush_at_threshold_without_explicit_drain(self, tracer):
        for _ in range(obs_tracer._FLUSH_THRESHOLD):
            with tracer.span("hot"):
                pass
        with tracer._lock:
            collected = len(tracer._spans)
        assert collected >= obs_tracer._FLUSH_THRESHOLD

    def test_iter_is_drain(self, tracer):
        with tracer.span("one"):
            pass
        assert [span_obj.name for span_obj in tracer] == ["one"]

    def test_span_to_dict_round_trips_the_fields(self, tracer):
        with tracer.span("named", module="ot2", sim_time=1.0):
            pass
        (span_obj,) = tracer.drain()
        row = span_obj.to_dict()
        assert row["name"] == "named"
        assert row["attrs"] == {"module": "ot2"}
        assert row["start_sim"] == 1.0
        assert isinstance(row["span_id"], int)

    def test_sinks_see_every_finished_span(self, tracer):
        seen = []
        tracer._sinks.append(seen.append)
        with tracer.span("sunk"):
            pass
        assert [span_obj.name for span_obj in seen] == ["sunk"]

    def test_install_uninstall_round_trip(self):
        installed = obs_tracer.install()
        assert obs_tracer.active() is installed
        assert obs_tracer.uninstall() is installed
        assert obs_tracer.active() is None

    def test_rejects_nonpositive_max_spans(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)
