"""Metrics registry unit tests: handles, get-or-create identity, export."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    next_instance,
    reset_registry,
)


class TestCounter:
    def test_counts_up(self):
        counter = Counter("frames_total")
        counter.inc()
        counter.inc(3.0)
        assert counter.value == 4.0

    def test_rejects_decrease(self):
        counter = Counter("frames_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_to_dict(self):
        counter = Counter("frames_total", {"driver": "wire"})
        counter.inc()
        assert counter.to_dict() == {
            "name": "frames_total",
            "kind": "counter",
            "labels": {"driver": "wire"},
            "value": 1.0,
        }


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == 6.0


class TestHistogram:
    def test_empty_percentiles_are_none(self):
        histogram = Histogram("latency_s")
        assert histogram.percentile(0.5) is None
        assert histogram.mean is None
        assert histogram.value_dict()["max"] is None

    def test_exact_aggregates_and_windowed_percentiles(self):
        histogram = Histogram("latency_s", window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            histogram.observe(value)
        # count/sum/max are exact forever; percentiles cover the window.
        assert histogram.count == 5
        assert histogram.sum == 110.0
        assert histogram.value_dict()["max"] == 100.0
        assert histogram.percentile(0.5) == 3.0  # window is (2, 3, 4, 100)
        assert histogram.percentile(1.0) == 100.0

    def test_rejects_bad_fraction_and_window(self):
        histogram = Histogram("latency_s")
        with pytest.raises(ValueError, match="fraction"):
            histogram.percentile(0.0)
        with pytest.raises(ValueError, match="window"):
            Histogram("latency_s", window=0)

    def test_lifetime_and_window_means_are_distinct_scopes(self):
        """After the window rolls, ``mean`` (lifetime) and ``window_mean``
        (same scope as the percentiles) legitimately disagree -- both are
        exposed under explicit names so neither is mistaken for the other."""
        histogram = Histogram("latency_s", window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 6
        assert histogram.mean == pytest.approx(3.5)  # all six observations
        assert histogram.window_count == 4
        assert histogram.window_mean == pytest.approx(4.5)  # window is (3, 4, 5, 6)

    def test_window_stats_empty_and_unrolled(self):
        histogram = Histogram("latency_s", window=8)
        assert histogram.window_count == 0
        assert histogram.window_mean is None
        histogram.observe(2.0)
        # Before the window rolls the two scopes agree.
        assert histogram.window_mean == histogram.mean == 2.0

    def test_value_dict_labels_both_scopes(self):
        histogram = Histogram("latency_s", window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            histogram.observe(value)
        snapshot = histogram.value_dict()
        assert snapshot["count"] == 6
        assert snapshot["mean"] == pytest.approx(3.5)
        assert snapshot["window_count"] == 4
        assert snapshot["window_mean"] == pytest.approx(4.5)
        assert snapshot["p50"] == 4.0  # nearest-rank over (3, 4, 5, 6)


class TestRegistry:
    def test_get_or_create_returns_the_same_handle(self):
        registry = MetricsRegistry()
        first = registry.counter("frames_total", {"driver": "wire"})
        second = registry.counter("frames_total", {"driver": "wire"})
        other = registry.counter("frames_total", {"driver": "paced"})
        assert first is second
        assert other is not first

    def test_kind_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("latency_s")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("latency_s")

    def test_snapshot_is_sorted_and_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc(2.0)
        snapshot = registry.snapshot()
        assert [metric["name"] for metric in snapshot] == ["a_total", "b_total"]
        assert registry.to_json() == {"metrics": snapshot}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", {"driver": 'wi"re'}).inc(2.0)
        histogram = registry.histogram("latency_s", {"shard": "0"})
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE frames_total counter" in text
        assert 'frames_total{driver="wi\\"re"} 2' in text
        assert "# TYPE latency_s summary" in text
        assert 'latency_s_count{shard="0"} 1' in text
        assert 'latency_s{quantile="0.5",shard="0"} 0.5' in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_reset_swaps_the_default(self):
        before = get_registry()
        fresh = reset_registry()
        try:
            assert get_registry() is fresh
            assert fresh is not before
        finally:
            # Other suites hold handles into whatever default existed at
            # import time; leave a clean fresh default behind.
            reset_registry()

    def test_next_instance_is_unique(self):
        assert next_instance() != next_instance()
