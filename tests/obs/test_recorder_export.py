"""Flight recorder and trace export: the ring, dump resolution, Chrome JSON."""

import json
import threading

import pytest

from repro.obs import ObservedSession, observed
from repro.obs import recorder as obs_recorder
from repro.obs import tracer as obs_tracer
from repro.obs.export import (
    chrome_trace_events,
    load_trace,
    render_summary,
    summarise_trace,
    write_chrome_trace,
)
from repro.obs.recorder import FLIGHT_DIR_ENV, FlightRecorder


class TestFlightRecorder:
    def test_ring_is_bounded_oldest_first(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.note("tick", index=index)
        snapshot = recorder.snapshot()
        assert len(recorder) == 3
        assert [entry["index"] for entry in snapshot] == [2, 3, 4]

    def test_dump_writes_json_artifact_to_explicit_directory(self, tmp_path):
        recorder = FlightRecorder()
        recorder.note("invariant", detail="score drift")
        path = recorder.dump("soak-break", directory=tmp_path, context={"seed": 101})
        assert path is not None and path.parent == tmp_path
        assert path.name == "flight-soak-break-1.json"
        document = json.loads(path.read_text())
        assert document["reason"] == "soak-break"
        assert document["context"] == {"seed": 101}
        assert document["events"][0]["event"] == "invariant"
        assert recorder.last_dump == document

    def test_dump_directory_falls_back_to_env_then_memory(self, tmp_path, monkeypatch):
        recorder = FlightRecorder()
        recorder.note("tick")
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path / "env-dir"))
        written = recorder.dump("env-fallback")
        assert written is not None and written.parent == tmp_path / "env-dir"
        monkeypatch.delenv(FLIGHT_DIR_ENV)
        assert recorder.dump("memory-only") is None
        assert recorder.last_dump["reason"] == "memory-only"

    def test_dump_sanitises_the_reason_in_the_filename(self, tmp_path):
        recorder = FlightRecorder()
        path = recorder.dump("a/b c!", directory=tmp_path)
        assert path.name == "flight-a-b-c--1.json"

    def test_flight_dump_is_a_noop_when_uninstalled(self, tmp_path):
        assert obs_recorder.active() is None
        assert obs_recorder.flight_dump("crash", directory=tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_install_subscribes_to_the_active_tracer(self, tracer):
        recorder = obs_recorder.install()
        with tracer.span("observed.op"):
            pass
        obs_recorder.note("after", ok=True)
        kinds = [entry["kind"] for entry in recorder.snapshot()]
        names = [entry.get("name") for entry in recorder.snapshot()]
        assert kinds == ["span", "event"]
        assert names[0] == "observed.op"

    def test_uninstall_detaches_the_sink(self, tracer):
        recorder = obs_recorder.install()
        assert obs_recorder.uninstall() is recorder
        with tracer.span("untracked"):
            pass
        assert len(recorder) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestObservedSession:
    def test_collects_installs_and_uninstalls(self):
        with observed() as session:
            assert obs_tracer.active() is session.tracer
            assert obs_recorder.active() is session.recorder
            with obs_tracer.span("inside"):
                pass
        assert obs_tracer.active() is None
        assert obs_recorder.active() is None
        assert [span_obj.name for span_obj in session.spans] == ["inside"]

    def test_write_trace_and_summary(self, tmp_path):
        with observed() as session:
            with obs_tracer.span("run", job_index=0):
                with obs_tracer.span("action", module="ot2"):
                    pass
        path = session.write_trace(tmp_path / "trace.json", metadata={"seed": 7})
        document = json.loads(path.read_text())
        assert document["metadata"] == {"seed": 7}
        summary = session.summary()
        assert summary["n_spans"] == 2
        assert set(summary["stages"]) == {"run", "action"}

    def test_session_is_an_observed_session(self):
        assert isinstance(observed(), ObservedSession)


class TestChromeExport:
    def _cross_thread_spans(self):
        tracer = obs_tracer.install(obs_tracer.Tracer())
        try:
            with tracer.span("campaign") as campaign:
                tracer.bind("ticket", campaign.span.span_id)

                def deliver():
                    with tracer.span("bridge.deliver", parent_id=tracer.bound("ticket")):
                        pass

                worker = threading.Thread(target=deliver, name="bridge-worker")
                worker.start()
                worker.join()
            return tracer.drain()
        finally:
            obs_tracer.uninstall()

    def test_events_carry_thread_metadata_and_flow_arrows(self):
        events = chrome_trace_events(self._cross_thread_spans())
        phases = [event["ph"] for event in events]
        assert phases.count("X") == 2
        assert phases.count("M") == 2  # two named threads
        # The cross-thread parent/child link becomes one s/f flow pair.
        assert phases.count("s") == 1 and phases.count("f") == 1
        names = {event["args"]["name"] for event in events if event["ph"] == "M"}
        assert "bridge-worker" in names

    def test_round_trip_preserves_causality_and_attrs(self, tmp_path):
        spans = self._cross_thread_spans()
        path = write_chrome_trace(spans, tmp_path / "trace.json")
        loaded = load_trace(path)
        by_name = {row["name"]: row for row in loaded}
        assert by_name["bridge.deliver"]["parent_id"] == by_name["campaign"]["span_id"]
        assert by_name["bridge.deliver"]["thread_name"] == "bridge-worker"
        assert by_name["campaign"]["status"] == "ok"

    def test_empty_trace_exports_empty(self, tmp_path):
        assert chrome_trace_events([]) == []
        path = write_chrome_trace([], tmp_path / "empty.json")
        assert load_trace(path) == []

    def test_summary_reports_stages_and_critical_path(self):
        summary = summarise_trace([s.to_dict() for s in self._cross_thread_spans()])
        assert summary["n_threads"] == 2
        assert summary["stages"]["bridge.deliver"]["count"] == 1
        assert summary["critical_path"][0]["name"] == "campaign"
        rendered = render_summary(summary)
        assert "bridge.deliver" in rendered
        assert "critical path" in rendered

    def test_summary_prefers_run_spans_for_the_critical_path(self):
        tracer = obs_tracer.install(obs_tracer.Tracer())
        try:
            with tracer.span("campaign"):
                with tracer.span("run", job_index=3):
                    with tracer.span("action"):
                        pass
            summary = summarise_trace([s.to_dict() for s in tracer.drain()])
        finally:
            obs_tracer.uninstall()
        assert [hop["name"] for hop in summary["critical_path"]] == ["run", "action"]
