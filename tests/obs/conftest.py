"""Fixtures for the observability suite.

Telemetry is process-global state (the installed tracer/recorder, the
default metrics registry); the autouse guard ensures no test leaks an
installed tracer into the rest of the tier-1 suite, where tracing must
stay off by default.
"""

import pytest

from repro.obs import recorder as obs_recorder
from repro.obs import tracer as obs_tracer


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    obs_recorder.uninstall()
    obs_tracer.uninstall()


@pytest.fixture
def tracer():
    """A freshly installed tracer (uninstalled by the autouse guard)."""
    return obs_tracer.install(obs_tracer.Tracer())
