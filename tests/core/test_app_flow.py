"""Integration tests of the application control flow against Figure 2.

These tests verify the *order* of workflows and device commands the
application issues, not just their counts: the paper's Figure 2 prescribes
newplate -> (mix_colors -> compute/publish -> solver)* -> trashplate with
plate-full and replenish checks in the loop.
"""

import pytest

from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig
from repro.wei.workcell import build_color_picker_workcell


@pytest.fixture
def run_app():
    def _run(**kwargs):
        defaults = dict(n_samples=6, batch_size=2, seed=13, measurement="direct", publish=True)
        defaults.update(kwargs)
        config = ExperimentConfig(**defaults)
        workcell = build_color_picker_workcell(seed=config.seed)
        app = ColorPickerApp(config, workcell=workcell)
        result = app.run()
        return app, workcell, result

    return _run


class TestWorkflowSequence:
    def test_starts_with_newplate_and_ends_with_trashplate(self, run_app):
        app, _, _ = run_app()
        names = [run.workflow_name for run in app.run_logger.runs]
        assert names[0] == "cp_wf_newplate"
        assert names[-1] == "cp_wf_trashplate"
        assert names.count("cp_wf_mix_colors") == 3

    def test_every_mix_workflow_has_four_steps_in_figure2_order(self, run_app):
        app, _, _ = run_app()
        for run in app.run_logger.runs:
            if run.workflow_name != "cp_wf_mix_colors":
                continue
            actions = [(step.module, step.action) for step in run.steps]
            assert actions == [
                ("pf400", "transfer"),
                ("ot2", "run_protocol"),
                ("pf400", "transfer"),
                ("camera", "take_picture"),
            ]

    def test_plate_ends_in_trash(self, run_app):
        _, workcell, result = run_app()
        trashed = [plate.barcode for plate in workcell.deck.trashed_plates]
        assert result.samples[0].plate_barcode in trashed
        assert not workcell.deck.is_occupied("camera.stage")
        assert not workcell.deck.is_occupied("ot2.deck")

    def test_wells_used_match_samples(self, run_app):
        _, workcell, result = run_app()
        plate = workcell.deck.trashed_plates[0]
        used = set(plate.used_wells)
        assert {sample.well for sample in result.samples} <= used

    def test_device_commands_interleave_as_expected(self, run_app):
        _, workcell, _ = run_app(n_samples=2, batch_size=1)
        records = [
            (record.module, record.action)
            for record in workcell.action_records()
            if record.robotic or record.module == "camera"
        ]
        # First five commands: plate staging then the first mix iteration.
        assert records[0] == ("sciclops", "get_plate")
        assert records[1][0] == "pf400"
        assert ("ot2", "run_protocol") in records
        ot2_index = records.index(("ot2", "run_protocol"))
        assert records[ot2_index - 1] == ("pf400", "transfer")
        assert records[ot2_index + 1] == ("pf400", "transfer")
        assert records[ot2_index + 2] == ("camera", "take_picture")


class TestReplenishBehaviour:
    def test_long_run_triggers_replenish(self):
        # A small reservoir forces the refill-colour check to fire.
        config = ExperimentConfig(
            n_samples=40, batch_size=8, seed=3, measurement="direct", publish=False
        )
        workcell = build_color_picker_workcell(seed=3, reservoir_capacity_ul=1200.0)
        app = ColorPickerApp(config, workcell=workcell)
        result = app.run()
        assert result.n_samples == 40
        assert result.workflow_counts.get("cp_wf_replenish", 0) >= 1

    def test_reservoirs_never_go_negative(self):
        config = ExperimentConfig(
            n_samples=30, batch_size=6, seed=5, measurement="direct", publish=False
        )
        workcell = build_color_picker_workcell(seed=5, reservoir_capacity_ul=3000.0)
        ColorPickerApp(config, workcell=workcell).run()
        for level in workcell.module("ot2").device.reservoir_levels().values():
            assert level >= 0.0

    def test_tip_racks_replaced_when_exhausted(self):
        config = ExperimentConfig(
            n_samples=120, batch_size=24, seed=6, measurement="direct", publish=False
        )
        workcell = build_color_picker_workcell(seed=6)
        app = ColorPickerApp(config, workcell=workcell)
        result = app.run()
        assert result.n_samples == 120
        ot2 = workcell.module("ot2").device
        assert ot2.wells_filled == 120
        # 120 wells at one tip per well exceeds a 96-tip rack.
        replaced = [r for r in ot2.action_log if r.action == "replace_tips"]
        assert len(replaced) >= 1


class TestMultiOt2Targeting:
    def test_app_can_target_second_ot2(self):
        workcell = build_color_picker_workcell(seed=8, n_ot2=2)
        config = ExperimentConfig(
            n_samples=6, batch_size=3, seed=8, measurement="direct", publish=False
        )
        app = ColorPickerApp(config, workcell=workcell, ot2="ot2_2", barty="barty_2")
        result = app.run()
        assert result.n_samples == 6
        assert workcell.module("ot2_2").device.wells_filled == 6
        assert workcell.module("ot2").device.wells_filled == 0
