"""Tests for the concurrent multi-plate modes of campaign / sweep / CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.app import ColorPickerApp
from repro.core.batch import run_batch_sweep
from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.sim.faults import FaultPolicy
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.workcell import build_color_picker_workcell


class TestConcurrentCampaign:
    def _campaigns(self):
        shared = dict(n_runs=3, samples_per_run=6, batch_size=3, seed=31)
        sequential = run_campaign(experiment_id="seq", **shared)
        concurrent = run_campaign(experiment_id="conc", n_ot2=2, **shared)
        return sequential, concurrent

    def test_concurrent_campaign_completes_all_runs(self):
        _, concurrent = self._campaigns()
        assert concurrent.n_runs == 3
        assert concurrent.total_samples == 18
        assert concurrent.n_ot2 == 2
        assert all(run.n_samples == 6 for run in concurrent.runs)

    def test_concurrent_campaign_is_faster_than_sequential(self):
        sequential, concurrent = self._campaigns()
        assert 0 < concurrent.makespan_s < sequential.makespan_s

    def test_scores_identical_to_sequential_campaign(self):
        # Same seeds, same batches: only the engine (and hence the clock)
        # differs, so proposals and measured scores must match exactly.
        sequential, concurrent = self._campaigns()
        for seq_run, conc_run in zip(sequential.runs, concurrent.runs):
            np.testing.assert_allclose(seq_run.scores(), conc_run.scores())

    def test_portal_records_keep_campaign_order(self):
        _, concurrent = self._campaigns()
        experiment = concurrent.portal.get_experiment("conc")
        assert [record.run_index for record in experiment.runs] == [0, 1, 2]
        assert concurrent.detail_view(2)["run_index"] == 2

    def test_per_run_metrics_attribute_only_own_lane(self):
        _, concurrent = self._campaigns()
        for run in concurrent.runs:
            metrics = run.metrics
            assert metrics is not None
            # 3 robotic commands per iteration (2 transfers + mix) plus plate
            # handling; far below the whole-workcell command count.
            assert 0 < metrics.commands_completed <= 2 * 3 + 2 * 3 + 4
            assert metrics.synthesis_time_s > 0
            assert metrics.synthesis_time_s <= metrics.time_without_humans_s

    def test_more_lanes_than_runs(self):
        campaign = run_campaign(
            n_runs=2, samples_per_run=4, batch_size=2, seed=5, n_ot2=3, experiment_id="wide"
        )
        assert campaign.n_runs == 2
        assert campaign.total_samples == 8

    def test_invalid_n_ot2_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(n_runs=1, samples_per_run=2, n_ot2=0)


class TestShardedCampaign:
    def _campaigns(self):
        shared = dict(n_runs=4, samples_per_run=4, batch_size=2, seed=29)
        sequential = run_campaign(experiment_id="seq", **shared)
        sharded = run_campaign(experiment_id="shard", n_workcells=2, **shared)
        return sequential, sharded

    def test_sharded_campaign_completes_every_run_once(self):
        _, sharded = self._campaigns()
        assert sharded.n_runs == 4
        assert sharded.n_workcells == 2
        assert all(run.n_samples == 4 for run in sharded.runs)
        assert sorted(p.job_index for p in sharded.assignments) == [0, 1, 2, 3]
        assert {p.shard for p in sharded.assignments} == {0, 1}

    def test_scores_identical_to_sequential_campaign(self):
        sequential, sharded = self._campaigns()
        for seq_run, shard_run in zip(sequential.runs, sharded.runs):
            np.testing.assert_allclose(seq_run.scores(), shard_run.scores())

    def test_sharding_shrinks_the_makespan(self):
        sequential, sharded = self._campaigns()
        assert 0 < sharded.makespan_s < sequential.makespan_s
        assert sharded.makespan_s == pytest.approx(max(sharded.workcell_makespans))
        assert len(sharded.workcell_makespans) == 2

    def test_portal_view_is_merged_with_stable_run_indexes(self):
        _, sharded = self._campaigns()
        experiment = sharded.portal.get_experiment("shard")
        assert [record.run_index for record in experiment.runs] == [0, 1, 2, 3]
        workcells = {record.metadata["workcell"] for record in experiment.runs}
        assert workcells == {"workcell-0", "workcell-1"}
        summary = sharded.summary_view()
        assert summary["n_runs"] == 4
        assert summary["total_samples"] == 16

    def test_workcells_combine_with_lanes(self):
        campaign = run_campaign(
            n_runs=4,
            samples_per_run=4,
            batch_size=2,
            seed=11,
            n_ot2=2,
            n_workcells=2,
            experiment_id="grid",
        )
        assert campaign.n_runs == 4
        lanes_used = {(p.workcell, p.lane) for p in campaign.assignments}
        assert len(lanes_used) >= 2  # runs spread over the 2x2 lane grid

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(n_runs=1, samples_per_run=2, n_workcells=0)
        with pytest.raises(ValueError):
            run_campaign(n_runs=1, samples_per_run=2, assignment="psychic")


class TestAssignmentPolicies:
    def test_static_campaign_assignment_still_supported(self):
        campaign = run_campaign(
            n_runs=3,
            samples_per_run=4,
            batch_size=2,
            seed=23,
            n_ot2=2,
            assignment="static",
            experiment_id="pinned",
        )
        # Static mode pins run i to lane i % 2, recorded in the assignments.
        lanes = [p.lane[0] for p in campaign.assignments]
        assert lanes == ["ot2", "ot2_2", "ot2"]

    def test_static_and_stealing_scores_match(self):
        shared = dict(batch_sizes=(2, 4), n_samples=8, seed=17, n_ot2=2)
        static = run_batch_sweep(assignment="static", **shared)
        stealing = run_batch_sweep(**shared)
        for size in (2, 4):
            np.testing.assert_allclose(
                static.experiments[size].scores(), stealing.experiments[size].scores()
            )

    def test_invalid_sweep_assignment_rejected(self):
        with pytest.raises(ValueError):
            run_batch_sweep(batch_sizes=(1,), n_samples=2, n_ot2=2, assignment="psychic")


class TestConcurrentFaultRecovery:
    def test_lanes_recover_from_unrecoverable_faults_without_deadlock(self):
        """Interventions clear a lane's stranded plates -- including a plate
        dropped between get_plate and its transfer, which sits at the shared
        exchange and used to block every lane's plate fetches forever."""
        policy = FaultPolicy(command_failure={"pf400": 0.25}, unrecoverable_fraction=1.0)
        workcell = build_color_picker_workcell(seed=13, n_ot2=2, fault_policy=policy)
        engine = ConcurrentWorkflowEngine(workcell)
        apps = []
        for index, (ot2, barty) in enumerate(workcell.ot2_barty_pairs()):
            config = ExperimentConfig(
                n_samples=8,
                batch_size=4,
                seed=13,
                publish=False,
                recover_from_failures=True,
                max_interventions=10,
                experiment_id="faulty",
                run_id=f"faulty-{index}",
            )
            apps.append(
                ColorPickerApp(config, workcell=workcell, ot2=ot2, barty=barty, staging="ot2")
            )
        handles = [
            engine.submit_program(app.program(), name=f"lane{i}") for i, app in enumerate(apps)
        ]
        engine.run_until_complete()
        results = [handle.result for handle in handles]
        assert all(result.n_samples == 8 for result in results)
        # The chosen seed/policy injects at least one unrecoverable failure.
        assert sum(result.interventions for result in results) >= 1
        for result in results:
            assert result.metrics.commands_completed > 0


class TestConcurrentSweep:
    def test_concurrent_sweep_matches_sequential_results(self):
        shared = dict(batch_sizes=(2, 4), n_samples=8, seed=17)
        sequential = run_batch_sweep(**shared)
        concurrent = run_batch_sweep(n_ot2=2, **shared)
        assert concurrent.batch_sizes == [2, 4]
        assert concurrent.n_ot2 == 2
        assert concurrent.makespan_s > 0
        for size in (2, 4):
            np.testing.assert_allclose(
                sequential.experiments[size].scores(), concurrent.experiments[size].scores()
            )

    def test_invalid_n_ot2_rejected(self):
        with pytest.raises(ValueError):
            run_batch_sweep(batch_sizes=(1,), n_samples=2, n_ot2=0)

    def test_concurrent_sweep_preserves_caller_order(self):
        sweep = run_batch_sweep(batch_sizes=(8, 2), n_samples=8, seed=9, n_ot2=2)
        # The raw experiments dict keeps the caller's order, exactly like the
        # sequential path (batch_sizes property sorts in both modes).
        assert list(sweep.experiments) == [8, 2]
        assert sweep.batch_sizes == [2, 8]


class TestCliNOt2:
    def test_campaign_command_accepts_n_ot2(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--runs",
                    "2",
                    "--samples-per-run",
                    "4",
                    "--seed",
                    "3",
                    "--n-ot2",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Concurrent campaign on 2 OT-2 lanes" in out

    def test_sweep_command_accepts_n_ot2(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--batch-sizes",
                    "2,4",
                    "--samples",
                    "4",
                    "--seed",
                    "3",
                    "--n-ot2",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Concurrent sweep on 2 OT-2 lanes" in out
