"""Tests for the SDL metrics (Table 1)."""

import pytest

from repro.core.metrics import PAPER_TABLE1, SdlMetrics, compute_metrics
from repro.core.protocol import build_mix_protocol


class TestSdlMetrics:
    def test_derived_quantities(self):
        metrics = SdlMetrics(
            time_without_humans_s=29520.0,  # 8 h 12 m
            commands_completed=387,
            synthesis_time_s=18600.0,
            transfer_time_s=10920.0,
            total_colors=128,
        )
        assert metrics.time_per_color_s == pytest.approx(230.6, abs=0.5)
        assert metrics.synthesis_fraction == pytest.approx(0.63, abs=0.01)

    def test_zero_colors_gives_infinite_time_per_color(self):
        metrics = SdlMetrics(100.0, 0, 0.0, 100.0, total_colors=0)
        assert metrics.time_per_color_s == float("inf")

    def test_table_rendering_matches_paper_format(self):
        metrics = SdlMetrics(
            time_without_humans_s=PAPER_TABLE1["time_without_humans_s"],
            commands_completed=387,
            synthesis_time_s=PAPER_TABLE1["synthesis_time_s"],
            transfer_time_s=PAPER_TABLE1["transfer_time_s"],
            total_colors=128,
        )
        table = metrics.as_table()
        assert "8 hours 12 mins" in table
        assert "387" in table
        assert "Time per color" in table

    def test_to_dict_keys(self):
        metrics = SdlMetrics(100.0, 5, 60.0, 40.0, 10)
        data = metrics.to_dict()
        assert set(data) >= {
            "time_without_humans_s",
            "commands_completed",
            "synthesis_time_s",
            "transfer_time_s",
            "total_colors",
            "time_per_color_s",
            "synthesis_fraction",
        }


class TestComputeMetrics:
    def _run_one_iteration(self, workcell):
        workcell.module("sciclops").invoke("get_plate")
        workcell.module("pf400").invoke("transfer", source="sciclops.exchange", target="camera.stage")
        workcell.module("barty").invoke("fill_colors")
        workcell.module("pf400").invoke("transfer", source="camera.stage", target="ot2.deck")
        protocol = build_mix_protocol(
            "mix", ["A1"], [[0.4, 0.2, 0.4, 0.1]], workcell.chemistry.dyes.names, 80.0
        )
        workcell.module("ot2").invoke("run_protocol", protocol=protocol)
        workcell.module("pf400").invoke("transfer", source="ot2.deck", target="camera.stage")
        workcell.module("camera").invoke("take_picture")

    def test_counts_robotic_commands_and_partitions_time(self, workcell):
        start = workcell.clock.now()
        self._run_one_iteration(workcell)
        end = workcell.clock.now()
        metrics = compute_metrics(workcell, total_colors=1, start_time=start, end_time=end)
        # 6 robotic commands (camera imaging is not robotic).
        assert metrics.commands_completed == 6
        assert metrics.total_colors == 1
        assert metrics.synthesis_time_s > 0
        assert metrics.time_without_humans_s == pytest.approx(end - start)
        assert metrics.synthesis_time_s + metrics.transfer_time_s == pytest.approx(
            metrics.time_without_humans_s
        )

    def test_window_excludes_out_of_range_records(self, workcell):
        self._run_one_iteration(workcell)
        cutoff = workcell.clock.now()
        workcell.module("pf400").invoke("move_home")
        metrics = compute_metrics(workcell, total_colors=1, start_time=0.0, end_time=cutoff)
        assert metrics.commands_completed == 6

    def test_invalid_window_rejected(self, workcell):
        with pytest.raises(ValueError):
            compute_metrics(workcell, total_colors=0, start_time=10.0, end_time=0.0)

    def test_paper_reference_values_consistent(self):
        # The paper's own numbers satisfy the metric identities we rely on.
        assert PAPER_TABLE1["synthesis_time_s"] + PAPER_TABLE1["transfer_time_s"] == pytest.approx(
            PAPER_TABLE1["time_without_humans_s"]
        )
        assert PAPER_TABLE1["time_without_humans_s"] / PAPER_TABLE1["total_colors"] == pytest.approx(
            PAPER_TABLE1["time_per_color_s"], rel=0.05
        )
