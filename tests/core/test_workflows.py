"""Tests for the four colour-picker workflow builders."""


from repro.core.workflows import (
    WORKFLOW_BUILDERS,
    build_mix_colors_workflow,
    build_newplate_workflow,
    build_replenish_workflow,
    build_trashplate_workflow,
)


class TestStructure:
    def test_all_four_paper_workflows_present(self):
        assert set(WORKFLOW_BUILDERS) == {
            "cp_wf_newplate",
            "cp_wf_mix_colors",
            "cp_wf_trashplate",
            "cp_wf_replenish",
        }

    def test_newplate_steps_match_figure2(self):
        spec = build_newplate_workflow()
        assert [(s.module, s.action) for s in spec.steps] == [
            ("sciclops", "get_plate"),
            ("pf400", "transfer"),
            ("barty", "fill_colors"),
        ]

    def test_mix_colors_steps_match_figure2(self):
        spec = build_mix_colors_workflow()
        assert [(s.module, s.action) for s in spec.steps] == [
            ("pf400", "transfer"),
            ("ot2", "run_protocol"),
            ("pf400", "transfer"),
            ("camera", "take_picture"),
        ]
        assert spec.steps[1].args["protocol"] == "$payload.protocol"

    def test_trashplate_moves_plate_to_trash_and_drains(self):
        spec = build_trashplate_workflow()
        assert spec.steps[0].args["target"] == "trash"
        assert (spec.steps[1].module, spec.steps[1].action) == ("barty", "drain_colors")

    def test_trashplate_without_drain(self):
        spec = build_trashplate_workflow(drain=False)
        assert spec.n_steps == 1

    def test_replenish_uses_payload_threshold(self):
        spec = build_replenish_workflow()
        assert spec.steps[0].args["low_threshold"] == "$payload.low_threshold"


class TestRetargeting:
    def test_workflows_can_target_second_ot2(self):
        mix = build_mix_colors_workflow(ot2="ot2_2", ot2_location="ot2_2.deck")
        assert mix.steps[1].module == "ot2_2"
        assert mix.steps[0].args["target"] == "ot2_2.deck"
        newplate = build_newplate_workflow(ot2="ot2_2", barty="barty_2")
        assert newplate.steps[2].module == "barty_2"

    def test_yaml_round_trip_of_all_workflows(self):
        from repro.wei.workflow import WorkflowSpec

        for builder in WORKFLOW_BUILDERS.values():
            spec = builder()
            parsed = WorkflowSpec.from_yaml(spec.to_yaml())
            assert parsed.name == spec.name
            assert parsed.n_steps == spec.n_steps
            assert [s.action for s in parsed.steps] == [s.action for s in spec.steps]
