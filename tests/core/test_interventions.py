"""Tests for failure recovery and the intervention-aware TWH metric."""

import pytest

from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig
from repro.core.metrics import compute_metrics
from repro.core.protocol import build_mix_protocol
from repro.sim.faults import FaultPolicy
from repro.wei.engine import WorkflowError
from repro.wei.workcell import build_color_picker_workcell


class TestInterventionMetrics:
    def _busy_workcell(self):
        workcell = build_color_picker_workcell(seed=1)
        workcell.module("sciclops").invoke("get_plate")
        workcell.module("pf400").invoke("transfer", source="sciclops.exchange", target="camera.stage")
        workcell.module("pf400").invoke("transfer", source="camera.stage", target="ot2.deck")
        workcell.module("barty").invoke("fill_colors")
        protocol = build_mix_protocol(
            "mix", ["A1"], [[0.3, 0.3, 0.3, 0.1]], workcell.chemistry.dyes.names, 80.0
        )
        workcell.module("ot2").invoke("run_protocol", protocol=protocol)
        workcell.module("pf400").invoke("transfer", source="ot2.deck", target="camera.stage")
        return workcell

    def test_no_interventions_scores_whole_run(self):
        workcell = self._busy_workcell()
        end = workcell.clock.now()
        metrics = compute_metrics(workcell, total_colors=1, start_time=0.0, end_time=end)
        assert metrics.interventions == 0
        assert metrics.time_without_humans_s == pytest.approx(end)

    def test_twh_is_longest_segment_between_interventions(self):
        workcell = self._busy_workcell()
        end = workcell.clock.now()
        # One intervention a quarter of the way in: TWH is the later segment.
        metrics = compute_metrics(
            workcell,
            total_colors=1,
            start_time=0.0,
            end_time=end,
            intervention_times=[end * 0.25],
        )
        assert metrics.interventions == 1
        assert metrics.time_without_humans_s == pytest.approx(end * 0.75)
        whole_run = compute_metrics(workcell, total_colors=1, start_time=0.0, end_time=end)
        assert metrics.commands_completed <= whole_run.commands_completed

    def test_interventions_outside_window_are_ignored(self):
        workcell = self._busy_workcell()
        end = workcell.clock.now()
        metrics = compute_metrics(
            workcell,
            total_colors=1,
            start_time=0.0,
            end_time=end,
            intervention_times=[end + 100.0, -5.0],
        )
        assert metrics.interventions == 0
        assert metrics.time_without_humans_s == pytest.approx(end)


class TestRecoveringApplication:
    def _recovering_run(self, failure_rate, seed=44, n_samples=20, max_interventions=50):
        config = ExperimentConfig(
            n_samples=n_samples,
            batch_size=4,
            seed=seed,
            measurement="direct",
            publish=False,
            recover_from_failures=True,
            max_interventions=max_interventions,
        )
        workcell = build_color_picker_workcell(
            seed=seed,
            fault_policy=FaultPolicy.uniform(failure_rate, unrecoverable_fraction=1.0),
        )
        app = ColorPickerApp(config, workcell=workcell)
        return app, workcell, app.run()

    def test_run_completes_despite_unrecoverable_failures(self):
        _, _, result = self._recovering_run(failure_rate=0.12)
        assert result.n_samples == 20
        assert result.interventions >= 1
        assert result.metrics.interventions == result.interventions

    def test_twh_shrinks_relative_to_total_elapsed(self):
        _, workcell, result = self._recovering_run(failure_rate=0.12)
        total_elapsed = workcell.clock.now()
        assert result.metrics.time_without_humans_s < total_elapsed

    def test_intervention_trashes_compromised_plate(self):
        _, workcell, result = self._recovering_run(failure_rate=0.12)
        # Deck is clean at the end: nothing left at the camera or OT-2.
        assert not workcell.deck.is_occupied("camera.stage")
        assert not workcell.deck.is_occupied("ot2.deck")
        assert len(workcell.deck.trashed_plates) >= result.interventions

    def test_max_interventions_cap_eventually_reraises(self):
        with pytest.raises(WorkflowError):
            self._recovering_run(failure_rate=0.6, max_interventions=1, n_samples=40)

    def test_clean_run_records_no_interventions(self):
        config = ExperimentConfig(
            n_samples=8, batch_size=4, seed=2, publish=False, recover_from_failures=True
        )
        result = ColorPickerApp(config).run()
        assert result.interventions == 0
        assert result.metrics.interventions == 0
