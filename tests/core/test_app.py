"""Tests for the colour-picker application (unit level)."""

import numpy as np
import pytest

from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig
from repro.publish.portal import DataPortal
from repro.solvers.oracle import OracleSolver
from repro.wei.workcell import build_color_picker_workcell


def small_config(**kwargs):
    defaults = dict(n_samples=12, batch_size=4, seed=21, measurement="direct", publish=True)
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestRun:
    def test_produces_requested_number_of_samples(self):
        result = ColorPickerApp(small_config()).run()
        assert result.n_samples == 12
        assert len({s.well for s in result.samples}) == 12
        assert result.metrics is not None

    def test_sample_scores_match_distance_to_target(self):
        config = small_config()
        result = ColorPickerApp(config).run()
        target = config.target.as_array()
        for sample in result.samples:
            expected = np.linalg.norm(sample.measured_rgb - target)
            assert sample.score == pytest.approx(expected, rel=1e-9)

    def test_elapsed_times_are_increasing(self):
        result = ColorPickerApp(small_config(batch_size=1)).run()
        times = [s.elapsed_s for s in sorted(result.samples, key=lambda s: s.sample_index)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_workflow_counts_match_figure2_flow(self):
        result = ColorPickerApp(small_config(batch_size=4)).run()
        assert result.workflow_counts["cp_wf_newplate"] == 1
        assert result.workflow_counts["cp_wf_mix_colors"] == 3
        assert result.workflow_counts["cp_wf_trashplate"] == 1

    def test_seed_reproducibility(self):
        result_a = ColorPickerApp(small_config()).run()
        result_b = ColorPickerApp(small_config()).run()
        assert result_a.best_score == pytest.approx(result_b.best_score)
        np.testing.assert_allclose(
            [s.score for s in result_a.samples], [s.score for s in result_b.samples]
        )

    def test_different_seeds_differ(self):
        result_a = ColorPickerApp(small_config(seed=1)).run()
        result_b = ColorPickerApp(small_config(seed=2)).run()
        assert not np.allclose(
            [s.score for s in result_a.samples], [s.score for s in result_b.samples]
        )

    def test_success_threshold_terminates_early(self):
        workcell = build_color_picker_workcell(seed=9)
        config = small_config(n_samples=64, batch_size=4, success_threshold=6.0, publish=False)
        solver = OracleSolver(
            seed=0,
            chemistry=workcell.chemistry,
            target_rgb=config.target.rgb,
            max_component_volume_ul=config.max_component_volume_ul,
        )
        result = ColorPickerApp(config, workcell=workcell, solver=solver).run()
        assert result.terminated_early
        assert result.n_samples < 64
        assert result.best_score <= 6.0 + 3 * config.direct_noise_sigma

    def test_publication_receipts_per_iteration(self):
        result = ColorPickerApp(small_config(batch_size=4)).run()
        assert len(result.publication_receipts) == 3
        assert all(receipt["success"] for receipt in result.publication_receipts)

    def test_publish_disabled(self):
        portal = DataPortal()
        result = ColorPickerApp(small_config(publish=False), portal=portal).run()
        assert result.publication_receipts == []
        assert portal.n_runs == 0

    def test_portal_receives_cumulative_record(self):
        portal = DataPortal()
        config = small_config()
        ColorPickerApp(config, portal=portal).run()
        record = portal.get_run(config.run_id)
        assert record.n_samples == 12
        assert record.solver == "evolutionary"

    def test_vision_measurement_mode(self):
        config = small_config(n_samples=4, batch_size=2, measurement="vision", publish=False)
        result = ColorPickerApp(config).run()
        assert result.n_samples == 4
        # Vision readings should still be close to chemistry predictions.
        assert result.best_score < 250.0

    def test_plate_swap_when_budget_exceeds_plate_capacity(self):
        config = ExperimentConfig(
            n_samples=100, batch_size=50, seed=4, measurement="direct", publish=False
        )
        result = ColorPickerApp(config).run()
        assert result.n_samples == 100
        assert result.workflow_counts["cp_wf_newplate"] == 2
        assert result.workflow_counts["cp_wf_trashplate"] == 2
        barcodes = {s.plate_barcode for s in result.samples}
        assert len(barcodes) == 2

    def test_solver_mismatch_rejected(self):
        workcell = build_color_picker_workcell(seed=1)
        solver = OracleSolver(
            n_dyes=3,
            seed=0,
            chemistry=__import__("repro").SubtractiveMixingModel(
                dye_set=__import__("repro").DyeSet.cmy()
            ),
            target_rgb=[120, 120, 120],
        )
        with pytest.raises(ValueError, match="dyes"):
            ColorPickerApp(small_config(), workcell=workcell, solver=solver)


class TestMetricsIntegration:
    def test_metrics_partition_and_command_count(self):
        result = ColorPickerApp(small_config(batch_size=1, n_samples=8)).run()
        metrics = result.metrics
        assert metrics.total_colors == 8
        assert metrics.synthesis_time_s + metrics.transfer_time_s == pytest.approx(
            metrics.time_without_humans_s
        )
        # 3 robotic commands per iteration + plate handling.
        assert 8 * 3 <= metrics.commands_completed <= 8 * 3 + 8

    def test_batch_size_reduces_total_time_but_not_samples(self):
        small = ColorPickerApp(small_config(batch_size=1, n_samples=16, seed=5)).run()
        large = ColorPickerApp(small_config(batch_size=16, n_samples=16, seed=5)).run()
        assert small.n_samples == large.n_samples == 16
        assert large.elapsed_s < small.elapsed_s
