"""Tests for multi-run campaigns (Figure 3 machinery)."""

import pytest

from repro.core.campaign import run_campaign
from repro.publish.portal import DataPortal


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(n_runs=4, samples_per_run=5, seed=1, experiment_id="test-campaign")


class TestCampaign:
    def test_run_and_sample_counts(self, small_campaign):
        assert small_campaign.n_runs == 4
        assert small_campaign.total_samples == 20

    def test_portal_has_one_record_per_run(self, small_campaign):
        portal = small_campaign.portal
        assert portal.n_runs == 4
        experiment = portal.get_experiment("test-campaign")
        assert experiment.n_samples == 20

    def test_summary_view_matches_figure3_fields(self, small_campaign):
        summary = small_campaign.summary_view()
        assert summary["n_runs"] == 4
        assert summary["total_samples"] == 20
        assert summary["samples_per_run"] == [5, 5, 5, 5]
        assert summary["best_score"] == pytest.approx(small_campaign.best_score)

    def test_detail_view_for_each_run(self, small_campaign):
        for run_index in range(4):
            detail = small_campaign.detail_view(run_index)
            assert detail["run_index"] == run_index
            assert detail["n_samples"] == 5
            assert len(detail["samples"]) == 5
        with pytest.raises(KeyError):
            small_campaign.detail_view(99)

    def test_runs_have_timing_breakdown(self, small_campaign):
        record = small_campaign.portal.search(experiment_id="test-campaign")[0]
        assert record.timings["elapsed_s"] > 0
        assert record.timings["synthesis_s"] > 0


class TestCampaignOptions:
    def test_targets_cycle(self):
        campaign = run_campaign(
            n_runs=3,
            samples_per_run=3,
            seed=2,
            targets=["teal", "plum"],
            experiment_id="targets-campaign",
        )
        records = campaign.portal.search(experiment_id="targets-campaign")
        target_sets = {tuple(record.target_rgb) for record in records}
        assert len(target_sets) == 2

    def test_shared_portal_accumulates_campaigns(self):
        portal = DataPortal()
        run_campaign(n_runs=2, samples_per_run=3, seed=3, experiment_id="camp-a", portal=portal)
        run_campaign(n_runs=2, samples_per_run=3, seed=4, experiment_id="camp-b", portal=portal)
        assert portal.n_experiments == 2
        assert portal.n_runs == 4

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(n_runs=0)
        with pytest.raises(ValueError):
            run_campaign(samples_per_run=0)
