"""Tests for multi-run campaigns (Figure 3 machinery)."""

import hashlib
import json

import numpy as np
import pytest

from repro.core.app import ColorPickerApp
from repro.core.campaign import predict_experiment_duration, run_campaign
from repro.core.experiment import ExperimentConfig
from repro.publish.portal import DataPortal
from repro.sim.durations import paper_calibrated_durations
from repro.wei.chaos.soak import campaign_fingerprint
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.coordinator import MultiWorkcellCoordinator
from repro.wei.workcell import build_color_picker_workcell


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(n_runs=4, samples_per_run=5, seed=1, experiment_id="test-campaign")


class TestCampaign:
    def test_run_and_sample_counts(self, small_campaign):
        assert small_campaign.n_runs == 4
        assert small_campaign.total_samples == 20

    def test_portal_has_one_record_per_run(self, small_campaign):
        portal = small_campaign.portal
        assert portal.n_runs == 4
        experiment = portal.get_experiment("test-campaign")
        assert experiment.n_samples == 20

    def test_summary_view_matches_figure3_fields(self, small_campaign):
        summary = small_campaign.summary_view()
        assert summary["n_runs"] == 4
        assert summary["total_samples"] == 20
        assert summary["samples_per_run"] == [5, 5, 5, 5]
        assert summary["best_score"] == pytest.approx(small_campaign.best_score)

    def test_detail_view_for_each_run(self, small_campaign):
        for run_index in range(4):
            detail = small_campaign.detail_view(run_index)
            assert detail["run_index"] == run_index
            assert detail["n_samples"] == 5
            assert len(detail["samples"]) == 5
        with pytest.raises(KeyError):
            small_campaign.detail_view(99)

    def test_runs_have_timing_breakdown(self, small_campaign):
        record = small_campaign.portal.search(experiment_id="test-campaign")[0]
        assert record.timings["elapsed_s"] > 0
        assert record.timings["synthesis_s"] > 0


class TestCampaignOptions:
    def test_targets_cycle(self):
        campaign = run_campaign(
            n_runs=3,
            samples_per_run=3,
            seed=2,
            targets=["teal", "plum"],
            experiment_id="targets-campaign",
        )
        records = campaign.portal.search(experiment_id="targets-campaign")
        target_sets = {tuple(record.target_rgb) for record in records}
        assert len(target_sets) == 2

    def test_shared_portal_accumulates_campaigns(self):
        portal = DataPortal()
        run_campaign(n_runs=2, samples_per_run=3, seed=3, experiment_id="camp-a", portal=portal)
        run_campaign(n_runs=2, samples_per_run=3, seed=4, experiment_id="camp-b", portal=portal)
        assert portal.n_experiments == 2
        assert portal.n_runs == 4

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(n_runs=0)
        with pytest.raises(ValueError):
            run_campaign(samples_per_run=0)


class TestPredictorParity:
    """``predict_experiment_duration`` matches the program it predicts.

    With a zero-jitter table the prediction must equal the simulated elapsed
    time exactly, minus the two action families the predictor deliberately
    excludes (reservoir refills and tip replacement -- resource maintenance
    that depends on run history, see the predictor docstring).
    """

    #: 1, 2 and 3 full plates, plus a batch size that does not divide 96
    #: (partial final batch on each plate) and one that leaves a plate
    #: part-filled (N=100, B=7 -> 2 plates).
    CONFIGS = [(96, 4), (192, 4), (288, 4), (96, 8), (10, 4), (100, 7)]

    EXCLUDED = {("barty", "refill_colors"), ("ot2", "replace_tips")}

    @pytest.mark.parametrize("n_samples,batch_size", CONFIGS)
    def test_prediction_equals_program_elapsed(self, n_samples, batch_size):
        table = paper_calibrated_durations(jitter_cv=0.0)
        config = ExperimentConfig(
            n_samples=n_samples,
            batch_size=batch_size,
            solver="random",
            seed=5,
            publish=False,
            measurement="direct",
        )
        # Deep plate towers and an effectively bottomless reservoir keep the
        # run free of mid-campaign restocking, which the predictor excludes.
        workcell = build_color_picker_workcell(
            seed=5, durations=table, plates_per_tower=50, bulk_capacity_ul=1e9
        )
        result = ColorPickerApp(config, workcell=workcell).run()
        records = workcell.action_records()
        excluded = sum(
            record.duration
            for record in records
            if (record.module, record.action) in self.EXCLUDED
        )
        predicted = predict_experiment_duration(config, durations=table)
        assert predicted == pytest.approx(result.elapsed_s - excluded)
        # The per-plate walk is real: one fetch and one drain per plate.
        plates = -(-n_samples // 96)
        assert sum(1 for r in records if r.action == "get_plate") == plates
        assert sum(1 for r in records if r.action == "drain_colors") == plates

    def test_prediction_uses_the_given_table(self):
        config = ExperimentConfig(n_samples=8, batch_size=4, solver="random", seed=1)
        base = paper_calibrated_durations(jitter_cv=0.0)
        slow = base.scaled({"ot2": 2.0})
        assert predict_experiment_duration(config, durations=slow) > predict_experiment_duration(
            config, durations=base
        )


class TestHeterogeneousCampaign:
    """``module_speeds``: per-workcell speed profiles with unchanged science."""

    SPEEDS = [{"ot2": 1.0}, {"ot2": 2.0, "pf400": 2.0}]

    @staticmethod
    def fingerprint(campaign):
        return hashlib.sha256(
            json.dumps(campaign_fingerprint(campaign), sort_keys=True).encode()
        ).hexdigest()

    def test_mixed_speed_fleet_is_bit_identical_to_sequential(self):
        kwargs = dict(n_runs=4, samples_per_run=4, seed=21, experiment_id="hetero")
        sequential = run_campaign(**kwargs)
        lookahead = run_campaign(
            n_workcells=2, assignment="lookahead", module_speeds=self.SPEEDS, **kwargs
        )
        lpt = run_campaign(
            n_workcells=2, assignment="stealing-lpt", module_speeds=self.SPEEDS, **kwargs
        )
        assert self.fingerprint(sequential) == self.fingerprint(lookahead)
        assert self.fingerprint(sequential) == self.fingerprint(lpt)

    def test_unknown_module_rejected(self):
        with pytest.raises(ValueError, match="unknown module"):
            run_campaign(
                n_runs=2, samples_per_run=3, seed=1, n_workcells=2,
                module_speeds={"warp_drive": 2.0},
            )

    def test_module_speeds_with_explicit_coordinator_rejected(self):
        coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(2, seed=1)
        with pytest.raises(ValueError, match="module_speeds"):
            run_campaign(
                n_runs=2, samples_per_run=3, seed=1,
                coordinator=coordinator, module_speeds={"ot2": 2.0},
            )


class TestStreamingElasticCampaign:
    SEED = 11
    N_RUNS = 6
    SAMPLES = 4

    def test_records_stream_before_run_jobs_returns(self):
        """Every run's record must be in the portal at the moment its
        shard-completion callback fires -- streamed, not merged post-hoc."""
        portal = DataPortal()
        seen = []

        def inspect(completion):
            record = portal.get_run(completion.job.run_id)
            assert record.run_index == completion.job_index
            assert record.metadata["workcell"] == completion.assignment.workcell
            assert list(record.metadata["lane"]) == list(completion.assignment.lane)
            seen.append(completion.job_index)

        campaign = run_campaign(
            n_runs=self.N_RUNS,
            samples_per_run=self.SAMPLES,
            seed=self.SEED,
            portal=portal,
            experiment_id="streamed",
            n_workcells=2,
            on_run_complete=inspect,
        )
        assert sorted(seen) == list(range(self.N_RUNS))
        assert portal.n_runs == self.N_RUNS
        assert campaign.portal.get_experiment("streamed").n_samples == self.N_RUNS * self.SAMPLES

    def test_elastic_campaign_matches_sequential_scores(self):
        """Attach mid-flight, drain before the end: per-run scores stay
        identical to the sequential engine and the portal stays complete."""
        sequential = run_campaign(
            n_runs=self.N_RUNS,
            samples_per_run=self.SAMPLES,
            seed=self.SEED,
            experiment_id="seq",
        )

        coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(2, seed=self.SEED)
        portal = DataPortal()
        completions = []

        def reshape_fleet(completion):
            assert portal.get_run(completion.job.run_id) is not None
            completions.append(completion.job_index)
            if len(completions) == 2:
                workcell = build_color_picker_workcell(name="workcell-late", seed=77)
                coordinator.attach_workcell(
                    ConcurrentWorkflowEngine(workcell),
                    lanes=workcell.ot2_barty_pairs()[:1],
                )
            if len(completions) == 4:
                active = [s for s in coordinator.status().shards if s.state == "active"]
                if len(active) > 1:
                    coordinator.drain_workcell(active[0].shard_id)

        elastic = run_campaign(
            n_runs=self.N_RUNS,
            samples_per_run=self.SAMPLES,
            seed=self.SEED,
            portal=portal,
            experiment_id="elastic",
            coordinator=coordinator,
            on_run_complete=reshape_fleet,
        )

        assert sorted(completions) == list(range(self.N_RUNS))
        assert portal.n_runs == self.N_RUNS
        assert coordinator.n_workcells == 3
        assert elastic.n_workcells == 3
        events = [e["event"] for e in coordinator.fleet_events]
        assert "workcell-attached" in events
        assert "workcell-retired" in events
        # The science is placement-independent: identical per-run scores.
        for seq_run, elastic_run in zip(sequential.runs, elastic.runs):
            np.testing.assert_allclose(seq_run.scores(), elastic_run.scores())
        # Portal run_indexes are stable regardless of completion order.
        runs = portal.get_experiment("elastic").runs
        assert [run.run_index for run in runs] == list(range(self.N_RUNS))

    def test_sequential_campaign_fires_completion_hook(self):
        seen = []
        run_campaign(
            n_runs=2,
            samples_per_run=3,
            seed=5,
            experiment_id="seq-hook",
            on_run_complete=lambda completion: seen.append(
                (completion.job_index, completion.assignment)
            ),
        )
        assert seen == [(0, None), (1, None)]
