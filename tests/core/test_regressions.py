"""Regression tests for application-level bugs fixed alongside the
concurrent-engine work.

* ``_maybe_replenish`` contained a verbatim-duplicated tip-rack check that
  double-fired ``replace_tips``, inflating command counts and simulated time.
* ``_publish`` hardcoded ``run_index=0``, so standalone runs published to the
  same experiment collided in every portal view sorted by run index.
"""


from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig
from repro.core.protocol import build_mix_protocol
from repro.hardware.labware import TipRack
from repro.publish.portal import DataPortal
from repro.wei.workcell import build_color_picker_workcell


def drive(app, generator):
    """Run one of the app's program fragments against the sequential engine."""
    value = None
    try:
        while True:
            value = app._execute_sequential(generator.send(value))
    except StopIteration as stop:
        return stop.value


class TestReplenishSingleFire:
    def _protocol(self, workcell, n_wells):
        dye_names = workcell.chemistry.dyes.names
        wells = [f"A{i + 1}" for i in range(n_wells)]
        return build_mix_protocol(
            name="regression",
            wells=wells,
            ratios=[[0.25, 0.25, 0.25, 0.25]] * n_wells,
            dye_names=dye_names,
            max_component_volume_ul=40.0,
        )

    def test_replace_tips_fires_at_most_once_per_check(self):
        """Even when one fresh rack cannot satisfy the protocol, the tip check
        must issue a single replace_tips command, not two."""
        workcell = build_color_picker_workcell(seed=0)
        config = ExperimentConfig(n_samples=4, batch_size=2, seed=0, publish=False)
        app = ColorPickerApp(config, workcell=workcell)
        ot2 = workcell.module("ot2").device
        ot2.tip_rack = TipRack(capacity=4)
        for reservoir in ot2.reservoirs.values():
            reservoir.fill()

        drive(app, app._maybe_replenish(self._protocol(workcell, 6)))

        replaced = [r for r in ot2.action_log if r.action == "replace_tips"]
        assert len(replaced) == 1

    def test_exhausted_rack_is_replaced_exactly_once(self):
        """The common path: tips run out mid-experiment, one swap suffices."""
        workcell = build_color_picker_workcell(seed=6)
        config = ExperimentConfig(
            n_samples=120, batch_size=24, seed=6, measurement="direct", publish=False
        )
        app = ColorPickerApp(config, workcell=workcell)
        result = app.run()
        assert result.n_samples == 120
        ot2 = workcell.module("ot2").device
        replaced = [r for r in ot2.action_log if r.action == "replace_tips"]
        # 120 wells at one tip per well against a 96-tip rack: one swap.
        assert len(replaced) == 1


class TestPublishRunIndex:
    def _run(self, portal, run_id, seed, run_index=None):
        config = ExperimentConfig(
            n_samples=4,
            batch_size=2,
            seed=seed,
            measurement="direct",
            publish=True,
            experiment_id="shared-experiment",
            run_id=run_id,
            run_index=run_index,
        )
        ColorPickerApp(config, portal=portal).run()
        return portal.get_run(run_id)

    def test_two_standalone_runs_get_distinct_indices(self):
        portal = DataPortal()
        first = self._run(portal, "run-a", seed=1)
        second = self._run(portal, "run-b", seed=2)
        assert first.run_index == 0
        assert second.run_index == 1
        experiment = portal.get_experiment("shared-experiment")
        assert [record.run_id for record in experiment.runs] == ["run-a", "run-b"]

    def test_run_index_stable_across_iterative_uploads(self):
        # Each iteration re-publishes the cumulative record; the index must
        # not drift as the run's own record lands in the portal.
        portal = DataPortal()
        self._run(portal, "run-a", seed=1)
        record = self._run(portal, "run-b", seed=2)
        assert record.run_index == 1

    def test_config_can_pin_the_index(self):
        portal = DataPortal()
        record = self._run(portal, "run-z", seed=3, run_index=7)
        assert record.run_index == 7

    def test_detail_views_resolve_per_run(self):
        portal = DataPortal()
        self._run(portal, "run-a", seed=1)
        self._run(portal, "run-b", seed=2)
        detail = portal.detail_view("run-b")
        assert detail["run_index"] == 1
        assert detail["n_samples"] == 4
