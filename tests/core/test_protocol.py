"""Tests for OT-2 protocol generation."""

import numpy as np
import pytest

from repro.core.protocol import MIN_DISPENSE_UL, build_mix_protocol, ratios_to_volumes


class TestRatiosToVolumes:
    def test_scaling(self):
        volumes = ratios_to_volumes([[0.5, 1.0, 0.0, 0.25]], 80.0)
        np.testing.assert_allclose(volumes, [[40.0, 80.0, 0.0, 20.0]])

    def test_sub_dispensable_volumes_become_zero(self):
        volumes = ratios_to_volumes([[0.005, 0.5, 0.0, 0.0]], 80.0)
        assert volumes[0, 0] == 0.0

    def test_out_of_range_ratios_rejected(self):
        with pytest.raises(ValueError):
            ratios_to_volumes([[1.5, 0.0, 0.0, 0.0]], 80.0)
        with pytest.raises(ValueError):
            ratios_to_volumes([[-0.1, 0.0, 0.0, 0.0]], 80.0)

    def test_invalid_max_volume_rejected(self):
        with pytest.raises(ValueError):
            ratios_to_volumes([[0.5, 0.5, 0.5, 0.5]], 0.0)


class TestBuildMixProtocol:
    DYES = ("cyan", "magenta", "yellow", "black")

    def test_one_step_per_well(self):
        ratios = np.array([[0.5, 0.0, 0.25, 0.0], [0.0, 1.0, 0.0, 0.1]])
        protocol = build_mix_protocol("mix", ["A1", "A2"], ratios, self.DYES, 80.0)
        assert protocol.n_wells == 2
        assert protocol.steps[0].well == "A1"
        assert protocol.steps[0].volumes_ul == {"cyan": 40.0, "yellow": 20.0}
        assert protocol.steps[1].volumes_ul == {"magenta": 80.0, "black": 8.0}

    def test_zero_volumes_are_omitted(self):
        protocol = build_mix_protocol("mix", ["A1"], [[0.5, 0.0, 0.0, 0.0]], self.DYES, 80.0)
        assert list(protocol.steps[0].volumes_ul) == ["cyan"]

    def test_all_zero_proposal_gets_minimum_dispense(self):
        protocol = build_mix_protocol("mix", ["A1"], [[0.0, 0.0, 0.0, 0.0]], self.DYES, 80.0)
        assert protocol.steps[0].volumes_ul == {"cyan": MIN_DISPENSE_UL}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            build_mix_protocol("mix", ["A1", "A2"], [[0.5, 0.5, 0.5, 0.5]], self.DYES, 80.0)
        with pytest.raises(ValueError):
            build_mix_protocol("mix", ["A1"], [[0.5, 0.5]], self.DYES, 80.0)

    def test_protocol_total_volume_consistency(self):
        ratios = np.array([[0.5, 0.5, 0.5, 0.5]] * 3)
        protocol = build_mix_protocol("mix", ["A1", "A2", "A3"], ratios, self.DYES, 80.0)
        totals = protocol.total_volume_by_liquid()
        assert totals == {dye: pytest.approx(120.0) for dye in self.DYES}
