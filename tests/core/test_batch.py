"""Tests for the batch-size sweep (Figure 4 machinery)."""

import numpy as np
import pytest

import repro.core.batch as batch_module
from repro.core.batch import PAPER_BATCH_SIZES, run_batch_sweep
from repro.sim.durations import paper_calibrated_durations


@pytest.fixture(scope="module")
def small_sweep():
    """A reduced sweep (small N) shared by several tests to keep runtime low."""
    return run_batch_sweep(batch_sizes=(1, 4, 16), n_samples=32, seed=7, measurement="direct")


class TestSweep:
    def test_paper_batch_sizes_constant(self):
        assert PAPER_BATCH_SIZES == (1, 2, 4, 8, 16, 32, 64)

    def test_one_experiment_per_batch_size(self, small_sweep):
        assert small_sweep.batch_sizes == [1, 4, 16]
        for size in small_sweep.batch_sizes:
            assert small_sweep.experiments[size].n_samples == 32

    def test_smaller_batches_take_longer(self, small_sweep):
        times = small_sweep.total_times_minutes()
        assert times[1] > times[4] > times[16]

    def test_trajectories_are_nonincreasing(self, small_sweep):
        for size in small_sweep.batch_sizes:
            _, best = small_sweep.trajectory(size)
            assert np.all(np.diff(best) <= 1e-9)

    def test_final_scores_reasonable(self, small_sweep):
        for score in small_sweep.final_scores().values():
            assert 0.0 <= score < 150.0

    def test_to_dict_serialisable(self, small_sweep):
        import json

        data = json.loads(json.dumps(small_sweep.to_dict()))
        assert set(data) == {"1", "4", "16"}
        assert data["1"]["n_samples"] == 32


class TestValidation:
    def test_empty_batch_sizes_rejected(self):
        with pytest.raises(ValueError):
            run_batch_sweep(batch_sizes=())

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            run_batch_sweep(batch_sizes=(0,), n_samples=8)

    def test_seeded_sweep_reproducible(self):
        a = run_batch_sweep(batch_sizes=(2,), n_samples=8, seed=3)
        b = run_batch_sweep(batch_sizes=(2,), n_samples=8, seed=3)
        assert a.final_scores() == b.final_scores()

    def test_solver_can_be_swapped(self):
        sweep = run_batch_sweep(batch_sizes=(4,), n_samples=8, seed=3, solver="random")
        assert sweep.experiments[4].config.solver == "random"

    def test_lookahead_assignment_rejected(self):
        with pytest.raises(ValueError, match="run_campaign"):
            run_batch_sweep(batch_sizes=(2, 4), n_samples=8, n_ot2=2, assignment="lookahead")


class TestLptUsesActualDurations:
    """Regression: the stealing-lpt ordering must be predicted against the
    table the shared workcell actually runs, not the default calibration."""

    def test_custom_table_reaches_the_predictor(self, monkeypatch):
        seen = []
        real = batch_module.predict_experiment_duration

        def spy(config, **kwargs):
            seen.append(kwargs.get("durations"))
            return real(config, **kwargs)

        monkeypatch.setattr(batch_module, "predict_experiment_duration", spy)
        table = paper_calibrated_durations(jitter_cv=0.0).scaled({"ot2": 2.0})
        run_batch_sweep(
            batch_sizes=(2, 4),
            n_samples=8,
            seed=3,
            solver="random",
            n_ot2=2,
            assignment="stealing-lpt",
            durations=table,
        )
        assert seen, "stealing-lpt never consulted the predictor"
        for observed in seen:
            assert observed is not None
            assert observed.mean("ot2", "run_protocol", units=1) == pytest.approx(
                table.mean("ot2", "run_protocol", units=1)
            )

    def test_durations_override_applies_sequentially(self):
        fast = paper_calibrated_durations(jitter_cv=0.0).scaled(0.5)
        slow = paper_calibrated_durations(jitter_cv=0.0)
        quick = run_batch_sweep(batch_sizes=(4,), n_samples=8, seed=3, durations=fast)
        normal = run_batch_sweep(batch_sizes=(4,), n_samples=8, seed=3, durations=slow)
        assert quick.experiments[4].elapsed_s < normal.experiments[4].elapsed_s
        # The science is duration-independent.
        np.testing.assert_allclose(
            quick.experiments[4].scores(), normal.experiments[4].scores()
        )
