"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_match_paper(self):
        args = build_parser().parse_args(["run"])
        assert args.samples == 128
        assert args.batch_size == 1
        assert args.solver == "evolutionary"

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--solver", "magic"])


class TestCommands:
    def test_run_small_experiment(self, capsys):
        exit_code = main(
            ["run", "--samples", "8", "--batch-size", "4", "--seed", "3", "--solver", "random"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Samples: 8" in output
        assert "Table 1" in output

    def test_run_json_output(self, capsys):
        exit_code = main(
            ["run", "--samples", "6", "--batch-size", "3", "--seed", "1", "--json"]
        )
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_samples"] == 6
        assert data["metrics"]["total_colors"] == 6

    def test_run_with_rgb_target(self, capsys):
        exit_code = main(
            ["run", "--samples", "4", "--batch-size", "2", "--seed", "1", "--target", "100,120,140"]
        )
        assert exit_code == 0

    def test_run_with_malformed_target_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "--samples", "4", "--target", "1,2"])

    def test_sweep_command(self, capsys):
        exit_code = main(
            ["sweep", "--batch-sizes", "2,8", "--samples", "16", "--seed", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "batch size" in output

    def test_sweep_rejects_malformed_batch_sizes(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--batch-sizes", "two,four"])

    def test_campaign_command_with_portal_dir(self, capsys, tmp_path):
        portal_dir = tmp_path / "portal"
        exit_code = main(
            [
                "campaign",
                "--runs",
                "2",
                "--samples-per-run",
                "3",
                "--seed",
                "2",
                "--portal-dir",
                str(portal_dir),
            ]
        )
        assert exit_code == 0
        assert "summary view" in capsys.readouterr().out
        assert any(portal_dir.rglob("*.json"))

    def test_fleet_status_command_with_attach_and_drain(self, capsys):
        exit_code = main(
            [
                "fleet-status",
                "--runs", "5",
                "--samples-per-run", "3",
                "--seed", "5",
                "--n-workcells", "2",
                "--attach-after", "1",
                "--drain-after", "2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "attached workcell-2" in out
        assert "draining workcell-0" in out
        assert "fleet event: workcell-attached workcell-2" in out
        assert "fleet event: workcell-retired workcell-0" in out
        assert "5 runs streamed to the portal (5 records)" in out

    def test_fleet_status_json_output(self, capsys):
        exit_code = main(
            ["fleet-status", "--runs", "2", "--samples-per-run", "3", "--seed", "5", "--json"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["status"]["n_active"] == 2
        assert len(payload["status"]["shards"]) == 2
        assert all(shard["state"] == "active" for shard in payload["status"]["shards"])

    def test_solvers_listing(self, capsys):
        assert main(["solvers"]) == 0
        output = capsys.readouterr().out
        for name in ("evolutionary", "bayesian", "random", "annealing", "sobol"):
            assert name in output

    def test_targets_listing(self, capsys):
        assert main(["targets"]) == 0
        assert "paper-grey" in capsys.readouterr().out

    def test_workcell_description(self, capsys):
        assert main(["workcell"]) == 0
        output = capsys.readouterr().out
        for module in ("sciclops", "pf400", "ot2", "barty", "camera"):
            assert module in output

    def test_invalid_configuration_returns_error_code(self, capsys):
        # batch size larger than sample budget -> ExperimentConfig ValueError.
        exit_code = main(["run", "--samples", "4", "--batch-size", "8", "--seed", "1"])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestPositiveIntValidation:
    @pytest.mark.parametrize("value", ["0", "-1", "-7"])
    def test_campaign_rejects_non_positive_n_ot2(self, value, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--n-ot2", value])
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_campaign_rejects_non_positive_n_workcells(self, value, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--n-workcells", value])
        assert "positive integer" in capsys.readouterr().err

    def test_sweep_rejects_non_positive_n_ot2(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--n-ot2", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--n-workcells", "two"])
        assert "expected an integer" in capsys.readouterr().err

    def test_campaign_command_accepts_n_workcells(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--runs",
                "2",
                "--samples-per-run",
                "3",
                "--seed",
                "4",
                "--n-workcells",
                "2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "sharded across 2 workcells" in out


class TestPositiveFloatValidation:
    @pytest.mark.parametrize("value", ["0", "-1.5", "-7"])
    def test_non_positive_speedup_rejected(self, value, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--speedup", value])
        assert "positive number" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["nan", "inf", "-inf"])
    def test_non_finite_speedup_rejected(self, value, capsys):
        with pytest.raises(SystemExit):
            # The '=' form keeps argparse from reading '-inf' as an option.
            main(["run", f"--speedup={value}"])
        assert "finite number" in capsys.readouterr().err

    def test_non_numeric_speedup_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--speedup", "fast"])
        assert "expected a number" in capsys.readouterr().err

    def test_fractional_speedup_accepted(self):
        args = build_parser().parse_args(["run", "--speedup", "2.5"])
        assert args.speedup == 2.5

    def test_speedup_defaults_to_1000(self):
        for command in ("run", "campaign"):
            args = build_parser().parse_args([command])
            assert args.transport == "sim"
            assert args.speedup == 1000.0


class TestPacedTransportCommands:
    def test_run_with_paced_transport_reports_delivery(self, capsys):
        exit_code = main(
            [
                "run",
                "--samples", "4",
                "--batch-size", "2",
                "--seed", "3",
                "--solver", "random",
                "--transport", "paced",
                "--speedup", "100000",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Transport paced-mock" in out
        assert "completions delivered out-of-band" in out

    def test_paced_run_scores_match_sim_run(self, capsys):
        args = ["run", "--samples", "4", "--batch-size", "2", "--seed", "11", "--json"]
        assert main(args) == 0
        sim = json.loads(capsys.readouterr().out)
        assert main(args + ["--transport", "paced", "--speedup", "100000"]) == 0
        paced = json.loads(capsys.readouterr().out)
        assert paced["best_score"] == sim["best_score"]
        assert [s["score"] for s in paced["samples"]] == [s["score"] for s in sim["samples"]]

    def test_campaign_with_paced_transport_reports_delivery(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--runs", "2",
                "--samples-per-run", "3",
                "--seed", "2",
                "--transport", "paced",
                "--speedup", "100000",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Paced transport (speedup 100000x)" in out
        assert "completions delivered out-of-band" in out

    def test_unknown_transport_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--transport", "telepathy"])

    def test_campaign_accepts_stealing_lpt_assignment(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--runs", "3",
                "--samples-per-run", "3",
                "--seed", "6",
                "--n-ot2", "2",
                "--assignment", "stealing-lpt",
            ]
        )
        assert exit_code == 0
        assert "summary view" in capsys.readouterr().out

    def test_fleet_status_table_shows_transport_column(self, capsys):
        exit_code = main(
            ["fleet-status", "--runs", "2", "--samples-per-run", "3", "--seed", "5"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "transport" in out
        assert "sim" in out

    def test_fleet_status_table_shows_retry_and_resync_columns(self, capsys):
        exit_code = main(
            ["fleet-status", "--runs", "2", "--samples-per-run", "3", "--seed", "5"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "retries" in out
        assert "resyncs" in out

    def test_fleet_status_json_includes_retry_counters(self, capsys):
        exit_code = main(
            ["fleet-status", "--runs", "2", "--samples-per-run", "3", "--seed", "5", "--json"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        for shard in payload["status"]["shards"]:
            assert shard["retries"] == 0 and shard["resyncs"] == 0  # sim shards


class TestModuleSpeedsFlag:
    @pytest.mark.parametrize("value", ["ot2=0", "ot2=-2", "ot2=nan", "pf400=inf"])
    def test_non_positive_or_non_finite_factor_rejected(self, value, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--module-speeds", value])
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["ot2", "ot2=fast", "=2.0"])
    def test_malformed_spec_rejected(self, value, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--module-speeds", value])
        assert "error" in capsys.readouterr().err

    def test_unknown_module_is_a_clean_error(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--runs", "1",
                "--samples-per-run", "2",
                "--n-workcells", "2",
                "--module-speeds", "warp_drive=2.0",
            ]
        )
        assert exit_code == 2
        assert "unknown module" in capsys.readouterr().err

    def test_flag_count_must_match_fleet_size(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--runs", "1",
                "--samples-per-run", "2",
                "--n-workcells", "3",
                "--module-speeds", "ot2=1.0",
                "--module-speeds", "ot2=2.0",
            ]
        )
        assert exit_code == 2
        assert "once per workcell" in capsys.readouterr().err

    def test_parsed_into_profiles(self):
        args = build_parser().parse_args(
            ["campaign", "--module-speeds", "ot2=2.5,pf400=0.5"]
        )
        assert len(args.module_speeds) == 1
        assert args.module_speeds[0].to_dict() == {"ot2": 2.5, "pf400": 0.5}

    def test_heterogeneous_campaign_runs_end_to_end(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--runs", "2",
                "--samples-per-run", "3",
                "--seed", "4",
                "--n-workcells", "2",
                "--assignment", "lookahead",
                "--module-speeds", "ot2=1.0",
                "--module-speeds", "ot2=2.0,pf400=2.0",
            ]
        )
        assert exit_code == 0
        assert "sharded across 2 workcells" in capsys.readouterr().out

    def test_fleet_status_shows_drift_column(self, capsys):
        exit_code = main(
            [
                "fleet-status",
                "--runs", "3",
                "--samples-per-run", "3",
                "--seed", "5",
                "--assignment", "lookahead",
                "--module-speeds", "ot2=1.0",
                "--module-speeds", "ot2=2.0",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "drift" in out
        assert "queue mean" in out


class TestWireTransportCommands:
    def test_campaign_with_wire_transport_and_chaos_seed(self, capsys):
        exit_code = main(
            [
                "campaign",
                "--runs", "2",
                "--samples-per-run", "3",
                "--seed", "2",
                "--transport", "wire",
                "--speedup", "1000000",
                "--chaos-seed", "7",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Wire transport (speedup 1e+06x)" in out
        assert "Wire recovery:" in out
        assert "(chaos seed 7)" in out

    def test_chaos_seed_without_wire_transport_is_a_clean_error(self, capsys):
        # No traceback: run_campaign's ValueError surfaces as `error: ...`
        # with exit code 2, like every other invalid configuration.
        exit_code = main(
            ["campaign", "--runs", "1", "--samples-per-run", "2", "--chaos-seed", "7"]
        )
        assert exit_code == 2
        assert "chaos schedules require transport='wire'" in capsys.readouterr().err

    def test_wire_run_scores_match_sim_run(self, capsys):
        args = ["run", "--samples", "4", "--batch-size", "2", "--seed", "11", "--json"]
        assert main(args) == 0
        sim = json.loads(capsys.readouterr().out)
        assert main(args + ["--transport", "wire", "--speedup", "1000000"]) == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire["best_score"] == sim["best_score"]
        assert [s["score"] for s in wire["samples"]] == [s["score"] for s in sim["samples"]]


class TestSoakCommand:
    SMALL = [
        "soak",
        "--runs", "1",
        "--samples-per-run", "2",
        "--batch-size", "2",
        "--n-workcells", "1",
        "--speedup", "1000000",
    ]

    def test_soak_invariant_holds_and_reports_per_seed(self, capsys):
        exit_code = main(self.SMALL + ["--seeds", "101,202"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "chaos seed    101: ok" in out
        assert "chaos seed    202: ok" in out
        assert "Soak invariant held for all 2 seed(s)" in out

    def test_soak_writes_frame_event_logs(self, capsys, tmp_path):
        log_dir = tmp_path / "soak-logs"
        exit_code = main(self.SMALL + ["--seeds", "101", "--log-dir", str(log_dir)])
        assert exit_code == 0
        assert (log_dir / "soak-seed-101.json").exists()
        summary = json.loads((log_dir / "summary.json").read_text())
        assert summary["ok"] is True
        assert "retries" in summary["cases"][0]["transport_stats"]

    def test_soak_json_output(self, capsys):
        exit_code = main(self.SMALL + ["--seeds", "303", "--json"])
        assert exit_code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["ok"] is True
        assert payload["cases"][0]["chaos_seed"] == 303

    def test_soak_rejects_malformed_seeds(self):
        with pytest.raises(SystemExit):
            main(["soak", "--seeds", "one,two"])
        with pytest.raises(SystemExit):
            main(["soak", "--seeds", ","])

    def test_soak_defaults_to_builtin_matrix(self):
        from repro.wei.chaos.soak import DEFAULT_SEED_MATRIX

        args = build_parser().parse_args(["soak"])
        assert args.seeds is None  # resolved to DEFAULT_SEED_MATRIX at run time
        assert len(DEFAULT_SEED_MATRIX) >= 3
