"""Tests for the minimal YAML-subset parser/dumper."""

import pytest

from repro.utils import yamlite


class TestScalars:
    def test_integer(self):
        assert yamlite.loads("value: 42") == {"value": 42}

    def test_float(self):
        assert yamlite.loads("value: 3.25") == {"value": 3.25}

    def test_booleans(self):
        assert yamlite.loads("a: true\nb: false") == {"a": True, "b": False}

    def test_null(self):
        assert yamlite.loads("a: null\nb: ~") == {"a": None, "b": None}

    def test_bare_string(self):
        assert yamlite.loads("name: pf400") == {"name": "pf400"}

    def test_quoted_string_preserves_special_characters(self):
        assert yamlite.loads('name: "a: b # c"') == {"name": "a: b # c"}

    def test_single_scalar_document(self):
        assert yamlite.loads("42") == 42

    def test_empty_document_is_none(self):
        assert yamlite.loads("") is None
        assert yamlite.loads("\n# just a comment\n") is None


class TestCollections:
    def test_nested_mapping(self):
        text = """
parent:
  child: 1
  other:
    deep: yes
"""
        assert yamlite.loads(text) == {"parent": {"child": 1, "other": {"deep": True}}}

    def test_block_sequence_of_scalars(self):
        text = """
items:
  - 1
  - 2
  - three
"""
        assert yamlite.loads(text) == {"items": [1, 2, "three"]}

    def test_sequence_at_same_indent_as_key(self):
        text = """
modules:
- sciclops
- pf400
"""
        assert yamlite.loads(text) == {"modules": ["sciclops", "pf400"]}

    def test_sequence_of_mappings(self):
        text = """
modules:
  - name: sciclops
    type: crane
  - name: ot2
    type: liquid_handler
"""
        assert yamlite.loads(text) == {
            "modules": [
                {"name": "sciclops", "type": "crane"},
                {"name": "ot2", "type": "liquid_handler"},
            ]
        }

    def test_inline_list(self):
        assert yamlite.loads("rgb: [120, 120, 120]") == {"rgb": [120, 120, 120]}

    def test_inline_mapping(self):
        assert yamlite.loads("args: {source: a, target: b}") == {
            "args": {"source": "a", "target": "b"}
        }

    def test_nested_inline_collections(self):
        assert yamlite.loads("matrix: [[1, 2], [3, 4]]") == {"matrix": [[1, 2], [3, 4]]}

    def test_comments_are_ignored(self):
        text = """
# leading comment
key: value  # trailing comment
"""
        assert yamlite.loads(text) == {"key": "value"}

    def test_document_marker_is_ignored(self):
        assert yamlite.loads("---\nkey: 1") == {"key": 1}

    def test_top_level_sequence(self):
        assert yamlite.loads("- 1\n- 2") == [1, 2]


class TestErrors:
    def test_tabs_are_rejected(self):
        with pytest.raises(yamlite.YamliteError):
            yamlite.loads("key:\n\tvalue: 1")

    def test_duplicate_keys_are_rejected(self):
        with pytest.raises(yamlite.YamliteError):
            yamlite.loads("a: 1\na: 2")

    def test_unbalanced_flow_list(self):
        with pytest.raises(yamlite.YamliteError):
            yamlite.loads("a: [1, 2")

    def test_malformed_mapping_line(self):
        with pytest.raises(yamlite.YamliteError):
            yamlite.loads("key: 1\njust a bare line")

    def test_error_carries_line_number(self):
        with pytest.raises(yamlite.YamliteError) as excinfo:
            yamlite.loads("ok: 1\nbad line here")
        assert excinfo.value.line_no == 2


class TestRoundTrip:
    CASES = [
        {"name": "workcell", "modules": [{"type": "ot2", "count": 2}, {"type": "camera"}]},
        {"steps": [{"module": "pf400", "action": "transfer", "args": {"source": "a", "target": "b"}}]},
        {"empty_list": [], "empty_map": {}, "nothing": None, "flag": True},
        {"numbers": [1, 2.5, -3], "nested": {"deep": {"deeper": "value"}}},
        ["a", {"b": 1}, [1, 2]],
        {"tricky string": "needs: quoting # really"},
        # Keys the dumper must quote (null/bool/numeric-looking or containing
        # a colon) round-trip even as single-key mappings inside sequences.
        {"a": [{"Null": None}]},
        {"a": [{"true": 1, "x": 2}]},
        {"k:v": [{"12": None}]},
        [{"Null": [{"off": "on"}]}],
        # Embedded double quotes survive the dumper's escaping.
        {'he"y: x': 1, "v": 'say "hi"'},
        {"a": [{'q"uo"ted': None}]},
        # Backslashes (including a trailing one next to the closing quote).
        {"a:\\": 1, "b": "back\\slash"},
        {"a": [{"k:\\": None}]},
        {"a": ['ends with \\"', "\\"]},
    ]

    @pytest.mark.parametrize("value", CASES)
    def test_dumps_loads_round_trip(self, value):
        assert yamlite.loads(yamlite.dumps(value)) == value

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "doc.yaml"
        value = {"a": [1, 2, 3], "b": {"c": "text"}}
        yamlite.dump_file(value, path)
        assert yamlite.load_file(path) == value

    def test_numeric_looking_strings_stay_strings(self):
        dumped = yamlite.dumps({"version": "1.0"})
        assert yamlite.loads(dumped) == {"version": "1.0"}
