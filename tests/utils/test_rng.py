"""Tests for the seeded random-number plumbing."""

import numpy as np
import pytest

from repro.utils.rng import RandomSource, derive_rng, ensure_rng


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_allclose(a, b)

    def test_existing_generator_is_returned_unchanged(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_random_source_unwraps_to_its_generator(self):
        source = RandomSource(3)
        assert ensure_rng(source) is source.generator


class TestRandomSource:
    def test_same_seed_same_child_stream(self):
        a = RandomSource(11).child("camera").generator.random(4)
        b = RandomSource(11).child("camera").generator.random(4)
        np.testing.assert_allclose(a, b)

    def test_different_children_are_independent(self):
        source = RandomSource(11)
        a = source.child("camera").generator.random(4)
        b = source.child("ot2").generator.random(4)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomSource(1).child("x").generator.random(4)
        b = RandomSource(2).child("x").generator.random(4)
        assert not np.allclose(a, b)

    def test_nested_children(self):
        source = RandomSource(5)
        path = source.child("a").child("b")
        assert path.path == "a/b"
        again = RandomSource(5).child("a").child("b")
        np.testing.assert_allclose(path.generator.random(3), again.generator.random(3))

    def test_empty_child_name_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(1).child("")

    def test_spawn_seed_is_deterministic(self):
        assert RandomSource(9).spawn_seed("x") == RandomSource(9).spawn_seed("x")

    def test_unseeded_source_still_works(self):
        source = RandomSource(None)
        assert isinstance(source.generator.random(), float)


class TestDeriveRng:
    def test_derive_by_name_is_deterministic(self):
        a = derive_rng(3, "noise").random(4)
        b = derive_rng(3, "noise").random(4)
        np.testing.assert_allclose(a, b)

    def test_derive_from_random_source(self):
        source = RandomSource(3)
        a = derive_rng(source, "noise").random(4)
        b = RandomSource(3).child("noise").generator.random(4)
        np.testing.assert_allclose(a, b)
