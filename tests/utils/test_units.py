"""Tests for time/volume unit helpers."""

import pytest

from repro.utils.units import (
    format_duration,
    hours,
    microliters,
    milliliters,
    minutes,
    parse_duration,
    seconds,
)


class TestConversions:
    def test_seconds_identity(self):
        assert seconds(5) == 5.0

    def test_minutes(self):
        assert minutes(2) == 120.0

    def test_hours(self):
        assert hours(1.5) == 5400.0

    def test_microliters_identity(self):
        assert microliters(10) == 10.0

    def test_milliliters(self):
        assert milliliters(2.5) == 2500.0


class TestFormatDuration:
    def test_paper_style_hours_and_minutes(self):
        assert format_duration(8 * 3600 + 12 * 60) == "8 hours 12 mins"

    def test_minutes_only(self):
        assert format_duration(4 * 60) == "4 mins"

    def test_exact_hours(self):
        assert format_duration(2 * 3600) == "2 hours"

    def test_seconds_only(self):
        assert format_duration(42) == "42 secs"

    def test_rounding_to_nearest_minute(self):
        assert format_duration(3600 + 29) == "1 hours"
        assert format_duration(3600 + 31 + 60) == "1 hours 2 mins"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("90", 90.0),
            ("90s", 90.0),
            ("4 mins", 240.0),
            ("8h 12m", 8 * 3600 + 12 * 60),
            ("1.5 hours", 5400.0),
            ("2m30s", 150.0),
        ],
    )
    def test_examples(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_round_trips_with_format(self):
        assert parse_duration(format_duration(4920)) == 4920

    @pytest.mark.parametrize("text", ["", "abc", "ten minutes"])
    def test_invalid_rejected(self, text):
        with pytest.raises(ValueError):
            parse_duration(text)
