"""Tests for validation helpers."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_length,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.1) == 0.1

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.01)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)

    def test_fraction_is_alias(self):
        assert check_fraction is check_probability


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range("x", 5, 5, 10) == 5
        assert check_in_range("x", 10, 5, 10) == 10

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 11, 5, 10)


class TestCheckLength:
    def test_accepts_exact_length(self):
        assert check_length("v", [1, 2, 3], 3) == [1, 2, 3]

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            check_length("v", [1, 2], 3)
