#!/usr/bin/env python3
"""Resiliency demo: run the colour picker with injected command failures.

The paper's CCWH metric exists because real instruments fail ("most failures
occur during reception and processing of commands").  This example injects a
configurable per-command failure probability into every simulated device, lets
the workflow engine retry recoverable failures, and reports how the run's SDL
metrics change relative to a fault-free run.

Run with:  python examples/fault_injection.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ColorPickerApp, ExperimentConfig, build_color_picker_workcell  # noqa: E402
from repro.analysis.report import format_table  # noqa: E402
from repro.sim.faults import FaultPolicy  # noqa: E402


def run_with_failure_rate(probability: float):
    config = ExperimentConfig(
        n_samples=24, batch_size=4, seed=55, measurement="direct", publish=False
    )
    policy = (
        FaultPolicy.none()
        if probability == 0.0
        else FaultPolicy.uniform(probability, unrecoverable_fraction=0.0)
    )
    workcell = build_color_picker_workcell(seed=55, fault_policy=policy)
    app = ColorPickerApp(config, workcell=workcell)
    result = app.run()
    retries = sum(step.retries for run in app.run_logger.runs for step in run.steps)
    failed_commands = sum(
        1
        for device in [module.device for module in workcell.modules.values()]
        for record in device.action_log
        if not record.success
    )
    return result, retries, failed_commands


def main() -> None:
    rows = []
    for probability in (0.0, 0.02, 0.08):
        result, retries, failed = run_with_failure_rate(probability)
        metrics = result.metrics
        rows.append(
            (
                f"{probability:.0%}",
                f"{metrics.time_without_humans_s / 3600:.2f} h",
                metrics.commands_completed,
                failed,
                retries,
                f"{result.best_score:.2f}",
            )
        )
    print(
        format_table(
            [
                "command failure rate",
                "TWH",
                "CCWH (successful)",
                "failed commands",
                "retries",
                "best score",
            ],
            rows,
            title="Effect of injected command failures on the SDL metrics (24 samples, B=4)",
        )
    )
    print(
        "\nRecoverable failures cost time (higher TWH) but the run still completes;\n"
        "only unrecoverable failures would require human intervention and end the TWH clock."
    )


if __name__ == "__main__":
    main()
