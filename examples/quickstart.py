#!/usr/bin/env python3
"""Quickstart: run one small colour-matching experiment end to end.

Builds the simulated five-module workcell, runs the colour-picker application
for 16 samples in batches of 4 with the paper's evolutionary solver, and
prints the best match found plus the SDL metrics of the run.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ColorPickerApp, ExperimentConfig  # noqa: E402


def main() -> None:
    config = ExperimentConfig(
        target="paper-grey",      # RGB (120, 120, 120), the paper's target
        n_samples=16,
        batch_size=4,
        solver="evolutionary",
        measurement="direct",     # fast path; use "vision" for the full camera pipeline
        seed=7,
    )
    app = ColorPickerApp(config)
    result = app.run()

    best = result.best_sample
    print(f"Ran {result.n_samples} samples in {result.elapsed_s / 60:.1f} simulated minutes")
    print(f"Best score (Euclidean RGB distance to target): {result.best_score:.2f}")
    print(f"Best sample: well {best.well}, measured RGB "
          f"({best.measured_rgb[0]:.0f}, {best.measured_rgb[1]:.0f}, {best.measured_rgb[2]:.0f})")
    print("Dye volumes (µl):", {k: round(v, 1) for k, v in best.volumes_ul.items()})
    print()
    print("Proposed SDL metrics for this run (paper Table 1 format):")
    print(result.metrics.as_table())
    print()
    print("Workflows executed:", result.workflow_counts)


if __name__ == "__main__":
    main()
