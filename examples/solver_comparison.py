#!/usr/bin/env python3
"""Compare the paper's two solvers (GA and Bayesian) plus baselines.

Runs the colour-picker application with the evolutionary solver, the Bayesian
solver, uniform random search and the analytic oracle (which is allowed to see
the chemistry model and therefore bounds achievable accuracy), all under the
same sample budget, and prints the best score each one reaches.

Run with:  python examples/solver_comparison.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ColorPickerApp, ExperimentConfig, OracleSolver, build_color_picker_workcell  # noqa: E402
from repro.analysis.report import format_table  # noqa: E402

N_SAMPLES = 48
BATCH_SIZE = 4
SEED = 11


def run_with_solver(solver_name: str) -> float:
    config = ExperimentConfig(
        target="paper-grey",
        n_samples=N_SAMPLES,
        batch_size=BATCH_SIZE,
        solver=solver_name if solver_name != "oracle" else "evolutionary",
        measurement="direct",
        seed=SEED,
        publish=False,
    )
    workcell = build_color_picker_workcell(seed=SEED)
    solver = None
    if solver_name == "oracle":
        solver = OracleSolver(
            seed=SEED,
            chemistry=workcell.chemistry,
            target_rgb=config.target.rgb,
            max_component_volume_ul=config.max_component_volume_ul,
        )
    result = ColorPickerApp(config, workcell=workcell, solver=solver).run()
    return result.best_score


def main() -> None:
    rows = []
    for solver_name in ("evolutionary", "bayesian", "random", "grid", "oracle"):
        print(f"Running {solver_name} solver ...")
        best = run_with_solver(solver_name)
        rows.append((solver_name, f"{best:.2f}"))
    print()
    print(
        format_table(
            ["solver", f"best score after {N_SAMPLES} samples"],
            rows,
            title="Solver comparison (lower is better; 'oracle' cheats by inverting the chemistry)",
        )
    )


if __name__ == "__main__":
    main()
