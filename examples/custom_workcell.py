#!/usr/bin/env python3
"""Define a workcell declaratively (YAML) and retarget the application to it.

The WEI platform configures workcells from declarative YAML files and lets
workflows be "retargeted to different modules and workcells that provide
comparable capabilities" (paper Section 2.2).  This example builds a two-OT-2
workcell from a YAML spec, runs half of the experiment on each liquid handler
and compares their results -- the "multiple OT2s" scenario from the paper's
discussion section.

Run with:  python examples/custom_workcell.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ColorPickerApp, ExperimentConfig  # noqa: E402
from repro.analysis.report import format_table  # noqa: E402
from repro.wei.workcell import Workcell  # noqa: E402

WORKCELL_SPEC = """
name: rpl_colorpicker_dual
modules:
  - name: sciclops
    type: sciclops
  - name: pf400
    type: pf400
  - name: ot2
    type: ot2
  - name: ot2_2
    type: ot2
  - name: barty
    type: barty
  - name: camera
    type: camera
"""


def main() -> None:
    workcell = Workcell.from_yaml(WORKCELL_SPEC, seed=21)
    print(f"Built workcell {workcell.name!r} with modules: {sorted(workcell.modules)}")
    print()

    rows = []
    for ot2, barty in (("ot2", "barty"), ("ot2_2", "barty_2")):
        config = ExperimentConfig(
            n_samples=16,
            batch_size=8,
            seed=21,
            measurement="direct",
            publish=False,
            experiment_id="dual-ot2",
            run_id=f"dual-{ot2}",
        )
        app = ColorPickerApp(config, workcell=workcell, ot2=ot2, barty=barty)
        result = app.run()
        rows.append((ot2, result.n_samples, f"{result.best_score:.2f}", f"{result.elapsed_s / 60:.0f} min"))

    print(
        format_table(
            ["liquid handler", "samples", "best score", "elapsed (cumulative clock)"],
            rows,
            title="Same application, two different OT-2 modules on one workcell",
        )
    )
    print()
    print(
        "Total robotic commands across both runs (CCWH):",
        workcell.total_commands(robotic_only=True),
    )
    print("Declarative description of the workcell:\n")
    print(workcell.to_yaml())


if __name__ == "__main__":
    main()
