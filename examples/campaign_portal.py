#!/usr/bin/env python3
"""Reproduce the paper's Figure 3: a campaign published to the data portal.

Runs a campaign of 12 short colour-matching runs (15 samples each, different
target colours), publishes every run to the simulated ACDC portal, and prints
the portal's experiment summary view and the detail view of the final run --
the two views shown in the paper's Figure 3.  Also demonstrates persisting the
portal to disk and searching it.

Run with:  python examples/campaign_portal.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DataPortal, run_campaign  # noqa: E402
from repro.analysis.figure3 import render_figure3  # noqa: E402


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        portal = DataPortal(directory=Path(tmp) / "acdc")
        print("Running campaign: 12 runs x 15 samples ...")
        campaign = run_campaign(
            n_runs=12,
            samples_per_run=15,
            experiment_id="acdc-demo",
            targets=["paper-grey", "teal", "plum", "olive"],
            seed=816,
            portal=portal,
        )

        print(render_figure3(campaign))
        print()

        # The portal is also a search index, like the Globus Search portal.
        good_runs = portal.search(experiment_id="acdc-demo", max_best_score=15.0)
        print(f"Runs that matched their target within 15 RGB units: {len(good_runs)}")

        # And it persists to disk: reload it and query again.
        reloaded = DataPortal.load(Path(tmp) / "acdc")
        summary = reloaded.summary_view("acdc-demo")
        print(
            f"Reloaded portal from disk: {summary['n_runs']} runs, "
            f"{summary['total_samples']} samples, best score {summary['best_score']:.2f}"
        )


if __name__ == "__main__":
    main()
