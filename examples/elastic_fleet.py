#!/usr/bin/env python3
"""Elastic fleet demo: attach a workcell mid-campaign, drain one before the end.

A long-running autonomous lab cannot stop the campaign every time a robot
joins or leaves the fleet.  This example runs a 10-run campaign on a
two-workcell fleet and, while it is in flight,

* **attaches** a third workcell after the 3rd run completes -- its lanes
  immediately start stealing pending runs from the shared queue;
* **drains** workcell-0 after the 6th run -- it finishes its in-flight run
  (two-phase action completions included), claims nothing new, and reports
  its retirement in the merged fleet log.

Run records *stream* into the data portal as each shard completes a run
(original run_index, workcell/lane tags preserved), so the portal is fully
populated the moment the campaign returns -- and, with direct measurement,
the per-run scores are identical to a sequential campaign with the same seed
no matter how the fleet was reshaped.

Run with:  python examples/elastic_fleet.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import run_campaign  # noqa: E402
from repro.publish.portal import DataPortal  # noqa: E402
from repro.wei.concurrent import ConcurrentWorkflowEngine  # noqa: E402
from repro.wei.coordinator import MultiWorkcellCoordinator  # noqa: E402
from repro.wei.workcell import build_color_picker_workcell  # noqa: E402

N_RUNS = 10
SAMPLES_PER_RUN = 6
SEED = 816
ATTACH_AFTER = 3   # attach workcell-2 after this many completed runs
DRAIN_AFTER = 6    # drain workcell-0 after this many completed runs


def main() -> None:
    coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(2, seed=SEED)
    portal = DataPortal()
    completed = []

    def show_status(note: str = "") -> None:
        status = coordinator.status()
        shards = "  ".join(
            f"{s.workcell}:{s.state}({s.completed} done)" for s in status.shards
        )
        line = f"[t={status.time:7.0f}s] queue {status.queue_depth:2d} | {shards}"
        print(line + (f"  <- {note}" if note else ""))

    def reshape_fleet(completion) -> None:
        completed.append(completion.job_index)
        note = f"run {completion.job_index} done on {completion.assignment.workcell}"
        if len(completed) == ATTACH_AFTER:
            workcell = build_color_picker_workcell(name="workcell-2", seed=SEED + 999)
            coordinator.attach_workcell(
                ConcurrentWorkflowEngine(workcell),
                lanes=workcell.ot2_barty_pairs()[:1],
            )
            note += "; ATTACHED workcell-2"
        if len(completed) == DRAIN_AFTER:
            coordinator.drain_workcell(0)
            note += "; DRAINING workcell-0"
        show_status(note)

    print(f"Elastic campaign: {N_RUNS} runs x {SAMPLES_PER_RUN} samples on a 2-workcell fleet\n")
    campaign = run_campaign(
        n_runs=N_RUNS,
        samples_per_run=SAMPLES_PER_RUN,
        seed=SEED,
        portal=portal,
        experiment_id="elastic-fleet",
        coordinator=coordinator,
        on_run_complete=reshape_fleet,
    )

    print("\nFleet lifecycle (from the merged log):")
    for event in coordinator.fleet_events:
        print(f"  t={event['start_time']:7.0f}s  {event['event']:18s}  {event['workcell']}")

    print(f"\nPortal streamed {portal.n_runs}/{N_RUNS} records before the campaign returned.")
    summary = portal.summary_view("elastic-fleet")
    print(
        f"Campaign: {summary['n_runs']} runs, {summary['total_samples']} samples, "
        f"best score {summary['best_score']:.2f}, fleet makespan "
        f"{campaign.makespan_s / 3600:.2f} h"
    )
    placements = {}
    for placement in campaign.assignments:
        placements[placement.workcell] = placements.get(placement.workcell, 0) + 1
    print("Run placement: " + ", ".join(f"{k}: {v}" for k, v in sorted(placements.items())))


if __name__ == "__main__":
    main()
