#!/usr/bin/env python3
"""Paced-transport demo: real-time execution with out-of-band completions.

The simulation usually finishes an 8-hour campaign in milliseconds because
the `SimClock` jumps straight to each action's sampled end time.  Real
hardware does not: a driver accepts the command immediately and reports the
completion later, from its own callback thread.  This example runs the same
small campaign twice --

* once on the **sim clock** (instant), and
* once over a **paced mock transport** at 2000x wall speed: every module's
  actions are dispatched to a `PacedMockTransport` whose background worker
  paces the already-sampled duration against a speedup-scaled `WallClock`
  and posts the completion to the engine's `CompletionBridge` strictly
  out-of-band --

and verifies the per-run scores are identical (the transport changes *when,
in real time* completions arrive, never the science).  It then demonstrates
deterministic transport-fault handling: a duplicated completion is deduped
exactly once, and a silent transport fails fast with `CompletionTimeout`
instead of hanging the event loop.

Run with:  python examples/paced_transport.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import run_campaign  # noqa: E402
from repro.wei.concurrent import ConcurrentWorkflowEngine  # noqa: E402
from repro.wei.drivers import (  # noqa: E402
    CompletionTimeout,
    DriverRegistry,
    TransportFaultPlan,
)
from repro.wei.workcell import build_color_picker_workcell  # noqa: E402
from repro.wei.workflow import WorkflowSpec, WorkflowStep  # noqa: E402

N_RUNS = 3
SAMPLES_PER_RUN = 4
SEED = 816
SPEEDUP = 2000.0


def main() -> int:
    shared = dict(
        n_runs=N_RUNS, samples_per_run=SAMPLES_PER_RUN, batch_size=2, seed=SEED
    )

    print(f"1) sim-clock campaign ({N_RUNS} runs x {SAMPLES_PER_RUN} samples)")
    wall = time.monotonic()
    sim = run_campaign(experiment_id="paced-demo-sim", **shared)
    print(
        f"   simulated {sim.makespan_s / 3600:.2f} h "
        f"in {time.monotonic() - wall:.2f} s real time"
    )

    print(f"\n2) paced transport at {SPEEDUP:g}x wall speed")
    paced = run_campaign(
        experiment_id="paced-demo-paced", transport="paced", speedup=SPEEDUP, **shared
    )
    stats = paced.transport_stats
    print(
        f"   simulated {paced.makespan_s / 3600:.2f} h "
        f"in {stats['wall_elapsed_s']:.2f} s real time "
        f"(effective {paced.makespan_s / stats['wall_elapsed_s']:.0f}x)"
    )
    print(
        f"   {stats['delivered']} completions delivered out-of-band, "
        f"mean delivery latency {stats['mean_delivery_latency_s'] * 1000:.2f} ms"
    )

    sim_scores = [run.best_score for run in sim.runs]
    paced_scores = [run.best_score for run in paced.runs]
    assert sim_scores == paced_scores, "transport must never change the science"
    print(f"   per-run best scores identical to sim: {[f'{s:.1f}' for s in paced_scores]}")

    print("\n3) transport faults are deterministic")
    spec = WorkflowSpec(
        name="wf_fetch",
        steps=[
            WorkflowStep(module="sciclops", action="get_plate", args={}),
            WorkflowStep(
                module="pf400",
                action="transfer",
                args={"source": "sciclops.exchange", "target": "camera.stage"},
            ),
        ],
    )

    # A duplicated completion is rejected exactly once; the run still succeeds.
    workcell = build_color_picker_workcell(seed=SEED)
    registry = DriverRegistry.paced(
        workcell,
        speedup=1_000_000.0,
        fault_plan=TransportFaultPlan(by_ticket={0: "duplicate"}),
    )
    engine = ConcurrentWorkflowEngine(workcell, drivers=registry)
    result = engine.run_all([spec])[0]
    bridge_stats = registry.bridge.stats()
    registry.close()
    print(
        f"   duplicate completion: run success={result.success}, "
        f"rejected_duplicate={bridge_stats.rejected_duplicate}"
    )

    # A silent transport times out instead of hanging the event loop.
    workcell = build_color_picker_workcell(seed=SEED)
    registry = DriverRegistry.paced(
        workcell,
        speedup=1_000_000.0,
        fault_plan=TransportFaultPlan(by_ticket={1: "timeout"}),
    )
    engine = ConcurrentWorkflowEngine(
        workcell, drivers=registry, completion_timeout_s=0.2
    )
    try:
        engine.run_all([spec])
        raise AssertionError("expected the silent transport to time out")
    except CompletionTimeout as error:
        print(f"   silent transport: {error}")
    finally:
        registry.close()

    print("\nTransport bindings are visible on every module:")
    described = build_color_picker_workcell(seed=SEED).module("sciclops").describe()
    print(f"   unbound module: two_phase={described['two_phase']}, driver={described['driver']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
