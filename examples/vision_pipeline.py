#!/usr/bin/env python3
"""Walk through the image-processing pipeline of paper Section 2.4.

Fills a plate with random dye mixes, renders a synthetic camera frame, then
runs each stage of the vision pipeline explicitly -- fiducial detection,
circular Hough transform, grid fitting/completion, colour extraction -- and
reports how accurately the pipeline recovered the known ground truth.

Run with:  python examples/vision_pipeline.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import SubtractiveMixingModel  # noqa: E402
from repro.hardware.labware import Plate  # noqa: E402
from repro.vision import (  # noqa: E402
    WellColorExtractor,
    detect_fiducial,
    fit_well_grid,
    hough_circles,
    render_plate_image,
)


def main() -> None:
    chemistry = SubtractiveMixingModel()
    rng = np.random.default_rng(4)

    plate = Plate(barcode="vision-demo")
    for name in plate.empty_wells[:40]:
        well = plate.well(name)
        for dye, volume in zip(chemistry.dyes.names, rng.uniform(5, 70, size=4)):
            well.add(dye, float(volume))

    image, truth = render_plate_image(plate, chemistry, rng=rng, return_truth=True)
    print(f"Rendered synthetic frame: {image.shape[1]}x{image.shape[0]} px, "
          f"{len(plate.used_wells)} filled wells")

    # Stage 1: fiducial marker.
    fiducial = detect_fiducial(image, min_size=28, max_size=96)
    print(f"Fiducial marker found: {fiducial.found}, centre {fiducial.center}, size {fiducial.size:.0f} px")

    # Stage 2: circular Hough transform.
    circles = hough_circles(image, radii=[12.0, 13.0, 14.0], min_distance=20.0)
    print(f"Hough transform detected {len(circles)} well-sized circles")

    # Stage 3: grid fit (recovers wells the detector missed).
    grid = fit_well_grid(circles, pitch_guess=34.0)
    print(f"Grid fit: pitch {grid.pitch:.2f} px, rotation {grid.rotation_deg:.2f} deg, "
          f"{grid.inliers} inlier detections")

    # Stage 4: the full extraction pipeline.
    extractor = WellColorExtractor()
    result = extractor.extract(image)
    errors = [
        np.linalg.norm(result.well_colors[name] - truth["colors"][name])
        for name in plate.used_wells
    ]
    print(f"Well colour error vs. ground truth: mean {np.mean(errors):.2f}, "
          f"max {np.max(errors):.2f} RGB units")
    center_errors = [
        np.hypot(
            result.well_centers[name][0] - truth["centers"][name][0],
            result.well_centers[name][1] - truth["centers"][name][1],
        )
        for name in plate.used_wells
    ]
    print(f"Well centre error vs. ground truth: mean {np.mean(center_errors):.2f} px")


if __name__ == "__main__":
    main()
