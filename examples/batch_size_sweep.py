#!/usr/bin/env python3
"""Reproduce the paper's Figure 4: the batch-size sweep.

Runs one colour-picker experiment per batch size (1, 2, 4, ..., 64), each with
128 samples and the evolutionary solver, and prints the best-score-so-far
trajectories as an ASCII scatter plot plus a per-batch-size summary table.

Pass ``--quick`` to run a reduced sweep (3 batch sizes, 32 samples) that
finishes in about a second.

Run with:  python examples/batch_size_sweep.py [--quick]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PAPER_BATCH_SIZES, run_batch_sweep  # noqa: E402
from repro.analysis.figure4 import check_figure4_shape, render_figure4  # noqa: E402


def main() -> None:
    quick = "--quick" in sys.argv
    batch_sizes = (1, 8, 64) if quick else PAPER_BATCH_SIZES
    n_samples = 32 if quick else 128

    print(f"Running batch-size sweep: B in {batch_sizes}, N = {n_samples} samples each ...")
    sweep = run_batch_sweep(
        batch_sizes=batch_sizes,
        n_samples=n_samples,
        target="paper-grey",
        solver="evolutionary",
        seed=2023,
    )

    print(render_figure4(sweep))
    print()
    checks = check_figure4_shape(sweep)
    print("Shape checks (paper observations):")
    for name, passed in checks.items():
        print(f"  {name}: {'PASS' if passed else 'FAIL'}")


if __name__ == "__main__":
    main()
