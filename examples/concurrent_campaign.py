#!/usr/bin/env python3
"""Execute the paper's Section 4 multi-OT-2 ablation, not just plan it.

The paper proposes "integrating additional OT2s in our workflow, so that
multiple plates of colors could be mixed at once.  This would lead to an
increase in CCWH, but potentially a lower TWH for the same experimental
results."  This example runs the *same* campaign twice -- once with the
sequential engine (one OT-2, runs back to back) and once with the
event-driven concurrent engine interleaving the runs over two OT-2/barty
lanes -- and compares the outcome with the offline resource-timeline planner.

Because the runs use the same seeds, the solvers propose identical batches
and reach identical scores under both engines; only the simulated wall time
differs, which is exactly the TWH-vs-CCWH trade-off the paper describes.

Run with:  python examples/concurrent_campaign.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import run_campaign  # noqa: E402
from repro.wei.scheduler import plan_parallel_mixes  # noqa: E402

N_RUNS = 4
SAMPLES_PER_RUN = 16
BATCH_SIZE = 8
SEED = 2023


def main() -> None:
    print(f"Campaign: {N_RUNS} runs x {SAMPLES_PER_RUN} samples, batch size {BATCH_SIZE}\n")

    print("Sequential engine (1 OT-2, runs back to back)...")
    sequential = run_campaign(
        n_runs=N_RUNS,
        samples_per_run=SAMPLES_PER_RUN,
        batch_size=BATCH_SIZE,
        seed=SEED,
        experiment_id="ablation-seq",
    )

    print("Concurrent engine (2 OT-2 lanes, runs interleaved)...\n")
    concurrent = run_campaign(
        n_runs=N_RUNS,
        samples_per_run=SAMPLES_PER_RUN,
        batch_size=BATCH_SIZE,
        seed=SEED,
        experiment_id="ablation-conc",
        n_ot2=2,
    )

    for label, campaign in (("sequential", sequential), ("concurrent x2", concurrent)):
        print(
            f"{label:>14}: {campaign.total_samples} samples, "
            f"best score {campaign.best_score:.2f}, "
            f"makespan {campaign.makespan_s / 3600:.2f} h"
        )
    speedup = sequential.makespan_s / concurrent.makespan_s
    print(f"\nSpeedup from the second OT-2: {speedup:.2f}x "
          f"(same scores, lower TWH, more commands in flight)")

    # The offline planner predicts the same trade-off from mean durations.
    batches = [BATCH_SIZE] * (N_RUNS * SAMPLES_PER_RUN // BATCH_SIZE)
    planned = {n: plan_parallel_mixes(batches, n_ot2=n).makespan for n in (1, 2)}
    print(f"Planner prediction for the mix pipeline alone: "
          f"{planned[1] / 3600:.2f} h -> {planned[2] / 3600:.2f} h "
          f"({planned[1] / planned[2]:.2f}x)")


if __name__ == "__main__":
    main()
