#!/usr/bin/env python3
"""Fail on broken intra-repo links in README.md and docs/*.md.

Scans every markdown link ``[text](target)`` in the repo's user-facing docs,
resolves relative targets against the containing file, and exits non-zero
listing any target that does not exist.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are skipped; an anchor
suffix on a file link (``file.md#section``) is stripped before checking the
file.  Used by the CI ``docs`` job and by ``tests/test_docs.py`` so broken
links fail the tier-1 suite too.

Beyond resolvability, a small set of cross-links is *required* to exist (see
``REQUIRED_LINKS``): the concurrency contract must stay reachable from the
docs describing the code it governs, and vice versa, so the invariants never
drift out of the reading path.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: ``[text](target)`` — target captured up to the closing parenthesis.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes that point outside the repository and are not checked.
_EXTERNAL = ("http://", "https://", "mailto:")

#: Cross-links that must be present: each source doc (repo-relative) must
#: contain at least one markdown link resolving to each listed target.  These
#: keep the concurrency contract wired into the docs it governs.
REQUIRED_LINKS = {
    "docs/drivers.md": ["docs/concurrency_contract.md", "docs/observability.md"],
    "docs/architecture.md": [
        "docs/concurrency_contract.md",
        "docs/performance.md",
        "docs/portal.md",
        "docs/observability.md",
        "docs/scheduling.md",
    ],
    "docs/scheduling.md": ["docs/architecture.md", "docs/fleet_operations.md"],
    "docs/fleet_operations.md": ["docs/architecture.md", "docs/scheduling.md"],
    "docs/concurrency_contract.md": ["docs/drivers.md", "docs/architecture.md"],
    "docs/performance.md": ["docs/architecture.md", "docs/observability.md"],
    "docs/portal.md": ["docs/architecture.md", "docs/concurrency_contract.md"],
    "docs/observability.md": [
        "docs/architecture.md",
        "docs/concurrency_contract.md",
        "docs/performance.md",
    ],
    "README.md": ["docs/performance.md", "docs/portal.md", "docs/observability.md"],
}


def iter_doc_files(root: Path) -> List[Path]:
    """The markdown files whose links are checked."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """Return ``(file, target)`` pairs for every unresolvable intra-repo link."""
    problems = []
    for path in iter_doc_files(root):
        text = path.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append((path, target))
    return problems


def missing_required_links(root: Path) -> List[Tuple[str, str]]:
    """Return ``(source, target)`` pairs for absent mandatory cross-links.

    A missing *source* document is itself reported (as ``(source, source)``)
    so deleting a contracted doc cannot silently drop its obligations.
    """
    problems: List[Tuple[str, str]] = []
    for source, targets in sorted(REQUIRED_LINKS.items()):
        path = root / source
        if not path.exists():
            problems.append((source, source))
            continue
        linked = set()
        for match in _LINK.finditer(path.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if resolved.exists():
                linked.add(resolved)
        for target in targets:
            if (root / target).resolve() not in linked:
                problems.append((source, target))
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    problems = broken_links(root)
    checked = iter_doc_files(root)
    for path, target in problems:
        print(f"{path.relative_to(root)}: broken link -> {target}", file=sys.stderr)
    missing = missing_required_links(root)
    for source, target in missing:
        if source == target:
            print(f"{source}: required doc is missing", file=sys.stderr)
        else:
            print(f"{source}: missing required cross-link -> {target}", file=sys.stderr)
    if problems or missing:
        return 1
    print(
        f"checked {len(checked)} file(s), all intra-repo links resolve, "
        f"{len(REQUIRED_LINKS)} doc(s) carry their required cross-links"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
