#!/usr/bin/env python3
"""Validate the committed ``BENCH_<area>.json`` perf-trajectory files.

Checks, for every bench file at the repo root:

* **schema** -- ``schema_version`` is the current one, the ``area`` matches
  the filename, all required keys are present, metric values are finite and
  non-negative with a sane ``direction``, and each ``hot_paths`` entry's
  recorded ``speedup`` is consistent with its timings;
* **claims** -- the four core areas (events, codec, campaign, vision) are
  present and each records at least one hot path at >= the minimum speedup
  the optimisation pass claims (so nobody quietly commits a regressed
  baseline file);
* **freshness** -- ``created_utc`` parses and is not in the future, and the
  recorded ``git_sha`` is a commit that actually exists in this repository
  (provenance, not age: an age cutoff would make the suite rot on its own).

Used by the CI ``bench`` job and mirrored in ``tests/test_bench.py`` so a
malformed committed file fails the tier-1 suite too.
"""

from __future__ import annotations

import json
import math
import subprocess
import sys
from datetime import datetime, timedelta, timezone
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 1

#: Areas whose committed file must exist and must record at least one hot
#: path at the claimed minimum speedup.
CORE_AREAS = ("events", "codec", "campaign", "vision")

#: All areas a bench file may describe.
KNOWN_AREAS = ("events", "codec", "campaign", "portal", "vision", "obs")

#: The optimisation pass's acceptance floor: every core area's committed
#: file must show its hot path at least this much faster than the frozen
#: pre-optimisation baseline measured in the same run.
MIN_CORE_SPEEDUP = 1.3

#: The observability acceptance gate: the committed ``obs`` file must show
#: disabled tracing costing less than this percentage of the benched
#: campaign scenario's wall time.
MAX_OBS_OFF_OVERHEAD_PCT = 2.0

REQUIRED_KEYS = (
    "schema_version",
    "area",
    "git_sha",
    "created_utc",
    "machine",
    "repeats",
    "config",
    "metrics",
    "hot_paths",
    "science",
)


def _sha_exists(sha: str, root: Path) -> bool:
    """True when ``sha`` names a commit in this checkout (best effort: a
    missing git binary or gitdir skips the provenance check rather than
    failing it)."""
    try:
        completed = subprocess.run(
            ["git", "cat-file", "-e", f"{sha}^{{commit}}"],
            cwd=str(root),
            capture_output=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return True
    if completed.returncode != 0 and b"not a git repository" in completed.stderr.lower():
        return True
    return completed.returncode == 0


def check_bench_file(path: Path, *, root: Path = REPO_ROOT) -> List[str]:
    """All problems with one bench file (empty list = valid)."""
    problems: List[str] = []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if not isinstance(data, dict):
        return [f"{path.name}: top level must be a JSON object"]

    for key in REQUIRED_KEYS:
        if key not in data:
            problems.append(f"{path.name}: missing required key {key!r}")
    if problems:
        return problems

    if data["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"{path.name}: schema_version {data['schema_version']!r} != {SCHEMA_VERSION}"
        )
    area = data["area"]
    if area not in KNOWN_AREAS:
        problems.append(f"{path.name}: unknown area {area!r}")
    if path.name != f"BENCH_{area}.json":
        problems.append(f"{path.name}: filename does not match area {area!r}")

    metrics = data["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        problems.append(f"{path.name}: metrics must be a non-empty object")
    else:
        for name, metric in metrics.items():
            value = metric.get("value")
            if not isinstance(value, (int, float)) or not math.isfinite(value) or value < 0:
                problems.append(f"{path.name}: metric {name!r} value {value!r} is not a finite non-negative number")
            if metric.get("direction", "higher") not in ("higher", "lower"):
                problems.append(f"{path.name}: metric {name!r} direction {metric.get('direction')!r} invalid")
            if not metric.get("unit"):
                problems.append(f"{path.name}: metric {name!r} has no unit")

    hot_paths = data["hot_paths"]
    if not isinstance(hot_paths, list):
        problems.append(f"{path.name}: hot_paths must be a list")
        hot_paths = []
    for entry in hot_paths:
        name = entry.get("name", "<unnamed>")
        baseline_s = entry.get("baseline_s")
        optimised_s = entry.get("optimised_s")
        speedup = entry.get("speedup")
        for field, value in (("baseline_s", baseline_s), ("optimised_s", optimised_s), ("speedup", speedup)):
            if not isinstance(value, (int, float)) or not math.isfinite(value) or value <= 0:
                problems.append(f"{path.name}: hot path {name!r} {field} {value!r} invalid")
                break
        else:
            implied = baseline_s / optimised_s
            if abs(implied - speedup) > 0.01 * max(implied, speedup):
                problems.append(
                    f"{path.name}: hot path {name!r} speedup {speedup:.3f} inconsistent "
                    f"with timings ({implied:.3f})"
                )
    if area == "obs" and isinstance(metrics, dict):
        off = metrics.get("tracing_off_overhead_pct", {})
        value = off.get("value") if isinstance(off, dict) else None
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            problems.append(f"{path.name}: obs area records no tracing_off_overhead_pct")
        elif value >= MAX_OBS_OFF_OVERHEAD_PCT:
            problems.append(
                f"{path.name}: tracing-off overhead {value:.3f}% >= "
                f"{MAX_OBS_OFF_OVERHEAD_PCT}% acceptance gate"
            )

    if area in CORE_AREAS and not any(
        isinstance(entry.get("speedup"), (int, float)) and entry["speedup"] >= MIN_CORE_SPEEDUP
        for entry in hot_paths
    ):
        problems.append(
            f"{path.name}: core area {area!r} records no hot path at >= {MIN_CORE_SPEEDUP}x"
        )

    created = data["created_utc"]
    try:
        stamp = datetime.strptime(created, "%Y-%m-%dT%H:%M:%SZ").replace(tzinfo=timezone.utc)
    except (TypeError, ValueError):
        problems.append(f"{path.name}: created_utc {created!r} is not ISO-8601 Z")
    else:
        if stamp > datetime.now(timezone.utc) + timedelta(days=1):
            problems.append(f"{path.name}: created_utc {created!r} is in the future")

    sha = data["git_sha"]
    if not isinstance(sha, str) or not sha or sha == "unknown":
        problems.append(f"{path.name}: git_sha {sha!r} records no provenance")
    elif not _sha_exists(sha, root):
        problems.append(f"{path.name}: git_sha {sha} is not a commit in this repository")

    return problems


def check_all(root: Path = REPO_ROOT) -> List[str]:
    """Problems across every committed bench file plus missing core areas."""
    problems: List[str] = []
    found = {}
    for path in sorted(root.glob("BENCH_*.json")):
        found[path.name] = path
        problems.extend(check_bench_file(path, root=root))
    for area in CORE_AREAS:
        if f"BENCH_{area}.json" not in found:
            problems.append(f"BENCH_{area}.json: missing (core area {area!r} has no committed trajectory)")
    return problems


def main() -> int:
    problems = check_all()
    if problems:
        print(f"{len(problems)} bench-file problem(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    count = len(list(REPO_ROOT.glob("BENCH_*.json")))
    print(f"{count} bench file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
