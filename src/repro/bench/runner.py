"""Bench orchestration: run areas, persist ``BENCH_<area>.json``, compare.

The persisted files are the repo's perf trajectory.  One schema-versioned
JSON per area lives at the repo root; a later run with ``--compare`` diffs
fresh measurements against them and flags any metric that moved the wrong
way by more than the regression threshold.  Comparisons are only made
between runs of the *same* pinned scenario (``config`` equality) on any
machine -- the machine fingerprint is recorded so a cross-machine delta can
be read with the right amount of salt, while the ``hot_paths`` speedups are
measured baseline-vs-optimised in-process and are machine-independent
claims.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.areas import AREA_ORDER, AreaResult, run_area

__all__ = [
    "SCHEMA_VERSION",
    "bench_filename",
    "machine_fingerprint",
    "git_sha",
    "run_bench",
    "area_payload",
    "write_results",
    "load_bench_file",
    "MetricDelta",
    "compare_results",
]

#: Bump when the persisted JSON layout changes incompatibly;
#: ``tools/check_bench.py`` and ``--compare`` refuse other versions.
SCHEMA_VERSION = 1

#: Regression threshold ``--compare`` applies when none is given: a metric
#: may move up to this fraction the wrong way before it counts as a
#: regression (benchmarks on shared machines are that noisy).
DEFAULT_THRESHOLD = 0.15


def bench_filename(area: str) -> str:
    """The repo-root filename holding ``area``'s trajectory point."""
    return f"BENCH_{area}.json"


def machine_fingerprint() -> Dict[str, Any]:
    """Where these numbers were measured (absolute numbers are only
    comparable on a matching fingerprint; in-process speedup ratios travel)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def git_sha(root: Optional[Path] = None) -> str:
    """The current commit's sha, or ``"unknown"`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def run_bench(
    areas: Optional[Sequence[str]] = None,
    *,
    repeats: int = 3,
    scale: float = 1.0,
    progress=None,
) -> List[AreaResult]:
    """Run the pinned scenarios for ``areas`` (default: all, canonical order)."""
    selected = list(areas) if areas else list(AREA_ORDER)
    unknown = [area for area in selected if area not in AREA_ORDER]
    if unknown:
        raise ValueError(f"unknown bench area(s) {unknown}; expected a subset of {AREA_ORDER}")
    results = []
    for area in selected:
        if progress is not None:
            progress(area)
        results.append(run_area(area, repeats=repeats, scale=scale))
    return results


def area_payload(result: AreaResult, *, repeats: int, root: Optional[Path] = None) -> Dict[str, Any]:
    """The schema-versioned JSON document for one area."""
    return {
        "schema_version": SCHEMA_VERSION,
        "area": result.area,
        "git_sha": git_sha(root),
        "created_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "machine": machine_fingerprint(),
        "repeats": repeats,
        "config": result.config,
        "metrics": result.metrics,
        "hot_paths": result.hot_paths,
        "science": result.science,
    }


def write_results(
    results: Sequence[AreaResult], *, repeats: int, directory: Path
) -> List[Path]:
    """Persist one ``BENCH_<area>.json`` per result; returns written paths.

    Provenance (``git_sha``) is resolved from the current working directory,
    not ``directory`` -- ``--out`` may point anywhere, but the measurements
    belong to the checkout the bench ran from.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for result in results:
        payload = area_payload(result, repeats=repeats)
        path = directory / bench_filename(result.area)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        written.append(path)
    return written


def load_bench_file(path: Path) -> Dict[str, Any]:
    """Load and minimally validate a persisted bench file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: bench file must hold a JSON object")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema_version {version!r} (expected {SCHEMA_VERSION})"
        )
    for key in ("area", "metrics", "hot_paths", "config"):
        if key not in data:
            raise ValueError(f"{path}: missing required key {key!r}")
    return data


@dataclass
class MetricDelta:
    """One metric's movement between a committed baseline and a fresh run."""

    area: str
    metric: str
    baseline: float
    current: float
    unit: str
    direction: str
    #: Fractional change, signed so positive is always an *improvement*.
    change: float = field(init=False)

    def __post_init__(self) -> None:
        if self.baseline == 0:
            self.change = 0.0
        else:
            raw = (self.current - self.baseline) / abs(self.baseline)
            self.change = raw if self.direction == "higher" else -raw

    def is_regression(self, threshold: float) -> bool:
        return self.change < -threshold


def compare_results(
    results: Sequence[AreaResult],
    *,
    baseline_dir: Path,
) -> Dict[str, Any]:
    """Diff fresh results against the committed files in ``baseline_dir``.

    Returns ``{"deltas": [MetricDelta...], "skipped": {area: reason}}``.
    An area is skipped (never judged) when no baseline file exists or the
    pinned scenario config differs -- a config change starts a fresh
    trajectory, it is not a regression.
    """
    deltas: List[MetricDelta] = []
    skipped: Dict[str, str] = {}
    for result in results:
        path = Path(baseline_dir) / bench_filename(result.area)
        if not path.exists():
            skipped[result.area] = "no committed baseline file"
            continue
        try:
            baseline = load_bench_file(path)
        except ValueError as exc:
            skipped[result.area] = f"unreadable baseline: {exc}"
            continue
        if baseline.get("config") != result.config:
            skipped[result.area] = "scenario config changed; trajectory restarts"
            continue
        for name, metric in result.metrics.items():
            base_metric = baseline["metrics"].get(name)
            if base_metric is None:
                continue
            deltas.append(
                MetricDelta(
                    area=result.area,
                    metric=name,
                    baseline=float(base_metric["value"]),
                    current=float(metric["value"]),
                    unit=metric.get("unit", ""),
                    direction=metric.get("direction", "higher"),
                )
            )
    return {"deltas": deltas, "skipped": skipped}
