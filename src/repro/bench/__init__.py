"""``repro.bench``: the pinned perf scenario matrix and its trajectory files.

``python -m repro bench`` runs seeded scenarios for five areas -- engine
event throughput, frame codec throughput, campaign makespan, portal ingest
and vision scoring -- and persists one ``BENCH_<area>.json`` per area at the
repo root.  Each file records the headline metrics, the machine fingerprint
they were measured on, and in-process baseline-vs-optimised timings against
the frozen pre-optimisation implementations in
:mod:`repro.bench.reference`.  See ``docs/performance.md`` for the
methodology and the regression threshold protocol.
"""

from repro.bench.areas import AREA_ORDER, AreaResult, run_area
from repro.bench.runner import (
    DEFAULT_THRESHOLD,
    SCHEMA_VERSION,
    MetricDelta,
    area_payload,
    bench_filename,
    compare_results,
    git_sha,
    load_bench_file,
    machine_fingerprint,
    run_bench,
    write_results,
)

__all__ = [
    "AREA_ORDER",
    "AreaResult",
    "run_area",
    "run_bench",
    "area_payload",
    "write_results",
    "load_bench_file",
    "compare_results",
    "MetricDelta",
    "bench_filename",
    "machine_fingerprint",
    "git_sha",
    "SCHEMA_VERSION",
    "DEFAULT_THRESHOLD",
]
