"""The pinned bench scenario matrix, one function per area.

Each area function runs a fixed, seeded scenario and returns an
:class:`AreaResult` with

* ``metrics`` -- the headline numbers (throughputs, makespans) the perf
  trajectory tracks across commits via ``--compare``,
* ``hot_paths`` -- in-process baseline-vs-optimised timings, where the
  baseline is the frozen pre-optimisation implementation from
  :mod:`repro.bench.reference` run in the *same* process (so the recorded
  speedup never depends on another machine's committed numbers), and
* ``science`` -- digests proving the optimised paths produce bit-identical
  results (the point of a perf pass over a reproduction is that the numbers
  move and the science does not).

Scenario sizes are part of the persisted ``config``: ``--compare`` refuses
to diff two files whose configs differ, so changing a size here starts a
fresh trajectory instead of silently polluting the old one.  Tests shrink
the scenarios through the ``scale`` knob rather than their own configs for
the same reason.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.bench import reference
from repro.utils.rng import ensure_rng

__all__ = ["AreaResult", "AREA_ORDER", "run_area"]

#: Canonical area order (also the order ``python -m repro bench`` runs them).
AREA_ORDER = ("events", "codec", "campaign", "portal", "vision", "obs")


@dataclass
class AreaResult:
    """Everything one area's scenario measured."""

    area: str
    config: Dict[str, Any]
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    hot_paths: List[Dict[str, Any]] = field(default_factory=list)
    science: Dict[str, str] = field(default_factory=dict)


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum elapsed seconds of ``fn`` over ``repeats`` runs.

    Min, not mean: scheduler noise on a shared machine only ever adds time,
    so the minimum is the most stable estimator of the true cost (and the
    one that makes baseline/optimised ratios reproducible run-to-run).
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _hot_path(
    name: str,
    baseline: Callable[[], Any],
    optimised: Callable[[], Any],
    repeats: int,
    unit: str = "s/op",
) -> Dict[str, Any]:
    """Interleaved baseline/optimised timing for one hot path.

    Alternating the two keeps a machine-load drift from landing entirely on
    one side of the ratio.
    """
    base_best = float("inf")
    opt_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        baseline()
        base_best = min(base_best, time.perf_counter() - start)
        start = time.perf_counter()
        optimised()
        opt_best = min(opt_best, time.perf_counter() - start)
    return {
        "name": name,
        "baseline_s": base_best,
        "optimised_s": opt_best,
        "speedup": base_best / opt_best if opt_best > 0 else float("inf"),
        "unit": unit,
    }


def _digest(value: Any) -> str:
    """Stable sha256 of a JSON-serialisable value."""
    return hashlib.sha256(
        json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _rate(name: str, count: float, seconds: float, unit: str, direction: str = "higher") -> Tuple[str, Dict[str, Any]]:
    return name, {"value": count / seconds if seconds > 0 else float("inf"), "unit": unit, "direction": direction}


# ---------------------------------------------------------------------------
# events: engine event throughput at n_workcells in {1, 4, 16}
# ---------------------------------------------------------------------------


def _bench_events(repeats: int, scale: float) -> AreaResult:
    from repro.sim.events import EventScheduler

    n_events = max(int(60_000 * scale), 500)
    merge_events = max(int(48_000 * scale), 480)
    config = {
        "n_events": n_events,
        "merge_events": merge_events,
        "cancel_every": 3,
        "step_every": 7,
        "n_workcells": [1, 4, 16],
    }
    result = AreaResult(area="events", config=config)

    def churn(make_scheduler: Callable[[], Any]) -> None:
        # The coordinator's traffic shape: schedule ahead, cancel a third
        # (timeouts/retries), interleave stepping with scheduling.
        sched = make_scheduler()
        sink = []
        callback = sink.append
        for index in range(n_events):
            event = sched.schedule_after(
                (index % 97) * 0.25 + 0.01, lambda: callback(None), label="churn"
            )
            if index % config["cancel_every"] == 0:
                event.cancel()
            if index % config["step_every"] == 0:
                sched.step()
        while sched.step() is not None:
            pass

    def merged_throughput(n_workcells: int) -> float:
        # The fleet merge loop: always step the shard with the earliest
        # next event (exactly what MultiWorkcellCoordinator._run_merged does).
        shards = [EventScheduler() for _ in range(n_workcells)]
        per_shard = merge_events // n_workcells

        def reschedule(sched, remaining):
            if remaining[0] > 0:
                remaining[0] -= 1
                sched.schedule_after(1.0, lambda: reschedule(sched, remaining))

        for sched in shards:
            remaining = [per_shard]
            sched.schedule_after(0.5, lambda s=sched, r=remaining: reschedule(s, r))
        start = time.perf_counter()
        while True:
            best = None
            best_time = None
            for sched in shards:
                pending = sched.next_time()
                if pending is None:
                    continue
                if best_time is None or pending < best_time:
                    best, best_time = sched, pending
            if best is None:
                break
            best.step()
        elapsed = time.perf_counter() - start
        executed = sum(sched.processed for sched in shards)
        return executed / elapsed if elapsed > 0 else float("inf")

    for n_workcells in config["n_workcells"]:
        rates = [merged_throughput(n_workcells) for _ in range(repeats)]
        name, metric = _rate(
            f"events_per_s_{n_workcells}wc", 1.0, 1.0 / float(np.median(rates)), "events/s"
        )
        result.metrics[name] = metric

    result.hot_paths.append(
        _hot_path(
            "scheduler-churn",
            lambda: churn(reference.ReferenceEventScheduler),
            lambda: churn(EventScheduler),
            repeats,
        )
    )
    return result


# ---------------------------------------------------------------------------
# codec: frame encode/decode throughput, clean and under chaos
# ---------------------------------------------------------------------------


def _make_traffic(n_actions: int) -> List[Any]:
    """The wire protocol's real traffic shape: every device action crosses
    the pipe four times (SUBMIT, ACK, COMPLETE, ACK)."""
    from repro.wei.drivers.protocol import Frame

    frames: List[Any] = []
    for index in range(n_actions):
        seq = index * 2
        frames.append(
            Frame(
                kind="SUBMIT",
                seq=seq,
                payload={
                    "ticket_id": f"wire:{index}",
                    "module": "ot2" if index % 3 else "camera",
                    "action": "run_protocol",
                    "duration_s": 12.5 + (index % 7),
                },
            )
        )
        frames.append(Frame(kind="ACK", seq=seq, payload={}))
        frames.append(
            Frame(
                kind="COMPLETE",
                seq=seq + 1,
                payload={
                    "ticket_id": f"wire:{index}",
                    "ok": True,
                    "result": {"well": f"A{index % 12 + 1}", "score": 12.25 + index * 1e-6},
                },
            )
        )
        frames.append(Frame(kind="ACK", seq=seq + 1, payload={}))
    return frames


def _corrupt_stream(stream: bytes, seed: int) -> bytes:
    """Deterministically damage a frame stream: flipped bytes plus garbage
    runs, the same wire faults the chaos schedule injects."""
    rng = ensure_rng(seed)
    data = bytearray(stream)
    n_flips = max(len(data) // 400, 1)
    for position in rng.integers(0, len(data), size=n_flips):
        data[int(position)] ^= int(rng.integers(1, 256))
    garbage_at = sorted(int(p) for p in rng.integers(0, len(data), size=8))
    for offset, position in enumerate(garbage_at):
        junk = bytes(rng.integers(0, 256, size=37, dtype=np.uint8))
        data[position + offset * 37 : position + offset * 37] = junk
    return bytes(data)


def _bench_codec(repeats: int, scale: float) -> AreaResult:
    from repro.wei.drivers.protocol import FrameDecoder, encode_frame

    n_actions = max(int(4_000 * scale), 50)
    config = {"n_actions": n_actions, "frames": n_actions * 4, "chaos_seed": 9090}
    result = AreaResult(area="codec", config=config)

    frames = _make_traffic(n_actions)
    clean_stream = b"".join(encode_frame(frame) for frame in frames)
    chaos_stream = _corrupt_stream(clean_stream, config["chaos_seed"])

    encode_s = _best_of(lambda: [encode_frame(frame) for frame in frames], repeats)

    def decode(stream: bytes) -> int:
        decoder = FrameDecoder()
        return len(decoder.feed(stream))

    decode_s = _best_of(lambda: decode(clean_stream), repeats)
    chaos_s = _best_of(lambda: decode(chaos_stream), repeats)
    recovered = decode(chaos_stream)

    for name, metric in (
        _rate("frames_per_s_encode", len(frames), encode_s, "frames/s"),
        _rate("frames_per_s_decode", len(frames), decode_s, "frames/s"),
        _rate("frames_per_s_decode_chaos", recovered, chaos_s, "frames/s"),
    ):
        result.metrics[name] = metric
    result.metrics["chaos_recovered_frames"] = {
        "value": float(recovered), "unit": "frames", "direction": "higher",
    }

    def roundtrip(encode, make_decoder) -> None:
        decoder = make_decoder()
        for frame in frames:
            decoder.feed(encode(frame))

    result.hot_paths.append(
        _hot_path(
            "encode-decode-roundtrip",
            lambda: roundtrip(reference.reference_encode_frame, reference.ReferenceFrameDecoder),
            lambda: roundtrip(encode_frame, FrameDecoder),
            repeats,
        )
    )
    result.science["clean_stream_sha256"] = hashlib.sha256(clean_stream).hexdigest()
    reference_stream = b"".join(reference.reference_encode_frame(frame) for frame in frames)
    if reference_stream != clean_stream:  # pragma: no cover - equivalence guard
        raise AssertionError("optimised encoder is not byte-identical to the reference")
    return result


# ---------------------------------------------------------------------------
# campaign: the ROADMAP's 10k-run, 16-workcell stealing campaign
# ---------------------------------------------------------------------------


#: The heterogeneous scheduling scenario: one big run among fifteen small
#: ones on a two-workcell fleet whose second workcell runs its OT-2 and arm
#: twice as fast.  Fixed-size (it is seconds of wall time at any ``--scale``)
#: so the lookahead-vs-speed-blind makespans stay comparable release over
#: release.
_HETERO_SPEEDS = ({}, {"ot2": 2.0, "pf400": 2.0})
_HETERO_RUNS = ((64, 2),) + ((4, 4),) * 15
_HETERO_SEED = 99


def _run_heterogeneous_campaign(assignment: str, duration_hint) -> Tuple[float, int, list]:
    """(makespan_s, shard of the big run, per-run score lists) for one policy."""
    from repro.core.app import ColorPickerApp
    from repro.core.experiment import ExperimentConfig
    from repro.wei.coordinator import MultiWorkcellCoordinator

    coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(
        2, seed=_HETERO_SEED, module_speeds=list(_HETERO_SPEEDS)
    )
    jobs = [
        ExperimentConfig(
            n_samples=n_samples,
            batch_size=batch_size,
            solver="random",
            seed=_HETERO_SEED + index,
            publish=False,
            experiment_id="bench-hetero",
            run_id=f"bench-hetero-run{index}",
            run_index=index,
        )
        for index, (n_samples, batch_size) in enumerate(_HETERO_RUNS)
    ]

    def make_program(config, shard, lane):
        app = ColorPickerApp(
            config,
            workcell=coordinator.engines[shard].workcell,
            ot2=lane[0],
            barty=lane[1],
            staging="ot2",
        )
        return app.program()

    lanes = [engine.workcell.ot2_barty_pairs()[:1] for engine in coordinator.engines]
    results = coordinator.run_jobs(
        jobs, make_program, lanes=lanes, assignment=assignment, duration_hint=duration_hint
    )
    scores = [[float(score) for score in run.scores()] for run in results]
    return coordinator.makespan, coordinator.assignments[0].shard, scores


def _bench_campaign(repeats: int, scale: float) -> AreaResult:
    from repro.core.campaign import predict_experiment_duration, run_campaign
    from repro.publish.portal import DataPortal
    from repro.wei.chaos.soak import _diff_fingerprints, campaign_fingerprint
    from repro.wei.coordinator import MultiWorkcellCoordinator

    n_runs = max(int(10_000 * scale), 32)
    n_workcells = 16 if n_runs >= 512 else 4
    config = {
        "n_runs": n_runs,
        "samples_per_run": 1,
        "n_workcells": n_workcells,
        "assignment": "work-stealing",
        "seed": 816,
        # Consumables must outlast the campaign: 10k runs / 16 workcells is
        # ~625 plates per workcell *if stealing were perfectly even* -- it
        # is not, so provision each 2-tower sciclops far past the skew.
        "plates_per_tower": 2000,
        "bulk_capacity_ul": 1e9,
        # The fixed-size heterogeneous scheduling scenario (see
        # docs/scheduling.md): speed-blind stealing-lpt vs lookahead.
        "heterogeneous": {
            "module_speeds": [dict(profile) for profile in _HETERO_SPEEDS],
            "runs": [list(run) for run in _HETERO_RUNS],
            "seed": _HETERO_SEED,
        },
    }
    result = AreaResult(area="campaign", config=config)

    # One pass regardless of --repeat: the campaign is minutes of wall time,
    # and its headline number (simulated makespan) is deterministic anyway.
    coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(
        n_workcells,
        seed=config["seed"],
        plates_per_tower=config["plates_per_tower"],
        bulk_capacity_ul=config["bulk_capacity_ul"],
    )
    wall_start = time.perf_counter()
    campaign = run_campaign(
        n_runs=n_runs,
        samples_per_run=config["samples_per_run"],
        seed=config["seed"],
        portal=DataPortal(),
        experiment_id="bench-campaign",
        coordinator=coordinator,
        assignment=config["assignment"],
    )
    wall_s = time.perf_counter() - wall_start

    result.metrics["makespan_h"] = {
        "value": campaign.makespan_s / 3600.0, "unit": "h", "direction": "lower",
    }
    name, metric = _rate("runs_per_wall_s", campaign.n_runs, wall_s, "runs/s")
    result.metrics[name] = metric
    result.metrics["wall_s"] = {"value": wall_s, "unit": "s", "direction": "lower"}

    baseline_fp = reference.reference_campaign_fingerprint(campaign)
    optimised_fp = campaign_fingerprint(campaign)
    if optimised_fp != baseline_fp:  # pragma: no cover - equivalence guard
        raise AssertionError("optimised fingerprint is not identical to the reference")
    result.science["campaign_fingerprint_sha256"] = _digest(optimised_fp)

    result.hot_paths.append(
        _hot_path(
            "fingerprint-and-diff",
            lambda: reference.reference_diff_fingerprints(
                baseline_fp, reference.reference_campaign_fingerprint(campaign)
            ),
            lambda: _diff_fingerprints(optimised_fp, campaign_fingerprint(campaign)),
            max(repeats, 3),
        )
    )

    # Heterogeneous scheduling scenario: same 16 runs, same mixed-speed
    # fleet, two policies.  A one-argument hint prices every shard off the
    # default calibration (speed-blind); passing the predictor itself gives
    # the lane-aware two-argument form lookahead re-ranks with.
    blind_makespan, blind_shard, blind_scores = _run_heterogeneous_campaign(
        "stealing-lpt", lambda job: predict_experiment_duration(job)
    )
    look_makespan, look_shard, look_scores = _run_heterogeneous_campaign(
        "lookahead", predict_experiment_duration
    )
    if blind_scores != look_scores:  # pragma: no cover - equivalence guard
        raise AssertionError("scheduling policy changed the heterogeneous campaign's science")
    result.metrics["hetero_blind_makespan_h"] = {
        "value": blind_makespan / 3600.0, "unit": "h", "direction": "lower",
    }
    result.metrics["hetero_lookahead_makespan_h"] = {
        "value": look_makespan / 3600.0, "unit": "h", "direction": "lower",
    }
    result.metrics["hetero_lookahead_speedup"] = {
        "value": blind_makespan / look_makespan, "unit": "x", "direction": "higher",
    }
    result.science["hetero_scores_sha256"] = _digest(look_scores)
    result.science["hetero_big_run_shards"] = {
        "stealing-lpt-blind": blind_shard, "lookahead": look_shard,
    }
    return result


# ---------------------------------------------------------------------------
# portal: ingest and search throughput
# ---------------------------------------------------------------------------


def _bench_portal(repeats: int, scale: float) -> AreaResult:
    from repro.publish.portal import DataPortal
    from repro.publish.records import RunRecord, SampleRecord

    n_records = max(int(5_000 * scale), 64)
    config = {"n_records": n_records, "samples_per_record": 4, "seed": 4242}
    result = AreaResult(area="portal", config=config)

    rng = ensure_rng(config["seed"])
    records = []
    for index in range(n_records):
        samples = [
            SampleRecord(
                sample_index=sample_index,
                well=f"A{sample_index + 1}",
                plate_barcode=f"plate-{index:05d}",
                volumes_ul={
                    dye: float(volume)
                    for dye, volume in zip(
                        ("cyan", "magenta", "yellow", "black"), rng.uniform(0.0, 200.0, 4)
                    )
                },
                measured_rgb=rng.uniform(0.0, 255.0, 3).tolist(),
                score=float(rng.uniform(0.0, 441.0)),
            )
            for sample_index in range(config["samples_per_record"])
        ]
        records.append(
            RunRecord(
                experiment_id=f"bench-{index % 8}",
                run_id=f"run-{index:06d}",
                run_index=index,
                target_rgb=rng.uniform(0.0, 255.0, 3).tolist(),
                samples=samples,
                solver="evolutionary",
            )
        )

    def ingest_all() -> DataPortal:
        portal = DataPortal()
        for record in records:
            portal.ingest(record)
        return portal

    ingest_s = _best_of(ingest_all, repeats)
    portal = ingest_all()
    search_s = _best_of(
        lambda: [portal.search(experiment_id=f"bench-{bucket}") for bucket in range(8)], repeats
    )

    for name, metric in (
        _rate("rows_per_s_ingest", n_records, ingest_s, "rows/s"),
        _rate("rows_per_s_search", n_records, search_s, "rows/s"),
    ):
        result.metrics[name] = metric

    # Durable-backend scenarios over the SAME pinned record set (the shared
    # ``config`` is untouched, so the in-memory metrics' trajectory
    # continues; these metrics are simply new rows in the same scenario).
    import shutil
    import tempfile

    from repro.publish.store import DurableDataPortal

    work_dir = tempfile.mkdtemp(prefix="bench-portal-")
    try:
        def durable_ingest_all() -> None:
            store_dir = f"{work_dir}/ingest"
            shutil.rmtree(store_dir, ignore_errors=True)
            with DurableDataPortal(store_dir) as store:
                for record in records:
                    store.ingest(record)

        durable_ingest_s = _best_of(durable_ingest_all, repeats)

        durable_dir = f"{work_dir}/query"
        with DurableDataPortal(durable_dir) as store:
            for record in records:
                store.ingest(record)
            durable_search_s = _best_of(
                lambda: [store.search(experiment_id=f"bench-{bucket}") for bucket in range(8)],
                repeats,
            )
            # The durable backend must return the exact same rows as the
            # in-memory portal -- a parity guard on the measured scenario.
            memory_rows = [record.to_dict() for record in portal.search()]
            durable_rows = [record.to_dict() for record in store.search()]
            if durable_rows != memory_rows:  # pragma: no cover - parity guard
                raise AssertionError("durable portal is not identical to the in-memory portal")
            result.science["portal_rows_sha256"] = _digest(memory_rows)

        def durable_reopen() -> None:
            DurableDataPortal(durable_dir).close()

        durable_reopen_s = _best_of(durable_reopen, repeats)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    for name, metric in (
        _rate("rows_per_s_ingest_durable", n_records, durable_ingest_s, "rows/s"),
        _rate("rows_per_s_search_durable", n_records, durable_search_s, "rows/s"),
        _rate("rows_per_s_reopen_durable", n_records, durable_reopen_s, "rows/s"),
    ):
        result.metrics[name] = metric
    return result


# ---------------------------------------------------------------------------
# vision: well scoring throughput
# ---------------------------------------------------------------------------


def _bench_vision(repeats: int, scale: float) -> AreaResult:
    from repro.color.mixing import SubtractiveMixingModel
    from repro.hardware.labware import Plate, well_names
    from repro.vision.extraction import WellColorExtractor
    from repro.vision.render import render_plate_image, well_pixel_centers

    n_passes = max(int(60 * scale), 3)
    config = {"n_passes": n_passes, "rows": 8, "cols": 12, "seed": 77}
    result = AreaResult(area="vision", config=config)

    chemistry = SubtractiveMixingModel()
    rng = ensure_rng(config["seed"])
    plate = Plate(barcode="bench-vision")
    for name in well_names(config["rows"], config["cols"]):
        well = plate.well(name)
        for dye, volume in zip(("cyan", "magenta", "yellow", "black"), rng.uniform(5.0, 60.0, 4)):
            well.add(dye, float(volume))
    image = render_plate_image(plate, chemistry, rng=ensure_rng(config["seed"] + 1))
    extractor = WellColorExtractor(rows=config["rows"], cols=config["cols"])
    centers = well_pixel_centers(plate)

    def score_all() -> Dict[str, np.ndarray]:
        return extractor.sample_colors(image, centers)

    scoring_s = _best_of(lambda: [score_all() for _ in range(n_passes)], repeats)
    wells_scored = n_passes * len(centers)
    name, metric = _rate("wells_per_s_scoring", wells_scored, scoring_s, "wells/s")
    result.metrics[name] = metric

    optimised = score_all()
    baseline = reference.reference_sample_colors(extractor, image, centers)
    if list(baseline) != list(optimised) or any(
        not np.array_equal(baseline[well], optimised[well]) for well in baseline
    ):  # pragma: no cover - equivalence guard
        raise AssertionError("vectorised well scoring is not bit-identical to the reference")
    result.science["well_colors_sha256"] = _digest(
        {well: optimised[well].tolist() for well in optimised}
    )

    result.hot_paths.append(
        _hot_path(
            "well-color-scoring",
            lambda: [reference.reference_sample_colors(extractor, image, centers) for _ in range(n_passes)],
            lambda: [score_all() for _ in range(n_passes)],
            repeats,
        )
    )
    return result


# ---------------------------------------------------------------------------
# obs: tracing-off vs tracing-on overhead on the 16-workcell campaign
# ---------------------------------------------------------------------------


def _bench_obs(repeats: int, scale: float) -> AreaResult:
    from repro import obs
    from repro.core.campaign import run_campaign
    from repro.obs import tracer as obs_tracer
    from repro.publish.portal import DataPortal
    from repro.wei.chaos.soak import campaign_fingerprint
    from repro.wei.coordinator import MultiWorkcellCoordinator

    n_runs = max(int(1024 * scale), 32)
    n_workcells = 16 if n_runs >= 512 else 4
    guard_ops = max(int(200_000 * scale), 2_000)
    config = {
        "n_runs": n_runs,
        "samples_per_run": 1,
        "n_workcells": n_workcells,
        "assignment": "work-stealing",
        "seed": 816,
        "plates_per_tower": 2000,
        "bulk_capacity_ul": 1e9,
        "guard_ops": guard_ops,
    }
    result = AreaResult(area="obs", config=config)

    def campaign_pass() -> Tuple[Any, float]:
        coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(
            n_workcells,
            seed=config["seed"],
            plates_per_tower=config["plates_per_tower"],
            bulk_capacity_ul=config["bulk_capacity_ul"],
        )
        start = time.perf_counter()
        campaign = run_campaign(
            n_runs=n_runs,
            samples_per_run=config["samples_per_run"],
            seed=config["seed"],
            portal=DataPortal(),
            experiment_id="bench-obs",
            coordinator=coordinator,
            assignment=config["assignment"],
        )
        return campaign, time.perf_counter() - start

    # One pass each regardless of --repeat (the campaign costs minutes at
    # full scale and its fingerprint is deterministic); the gated off-cost
    # below comes from the repeated guard microbenchmark instead.
    campaign_off, wall_off = campaign_pass()
    with obs.observed() as session:
        campaign_on, wall_on = campaign_pass()
    n_spans = len(session.spans)

    fingerprint_off = campaign_fingerprint(campaign_off)
    fingerprint_on = campaign_fingerprint(campaign_on)
    if fingerprint_on != fingerprint_off:  # pragma: no cover - equivalence guard
        raise AssertionError("tracing changed the campaign's science")
    result.science["campaign_fingerprint_sha256"] = _digest(fingerprint_off)

    # The disabled fast path every instrumentation site pays: one global
    # read plus a shared no-op context manager.  Baseline is the same loop
    # with a live tracer recording, so the hot path's speedup is "what
    # turning tracing off buys".
    def guard_loop() -> None:
        for _ in range(guard_ops):
            with obs_tracer.span("bench.guard"):
                pass

    def traced_loop() -> None:
        obs_tracer.install(obs_tracer.Tracer())
        try:
            guard_loop()
        finally:
            obs_tracer.uninstall()

    hot = _hot_path("null-span-guard", traced_loop, guard_loop, repeats)
    result.hot_paths.append(hot)

    # Tracing-off overhead: the measured per-site guard cost scaled by how
    # many sites the instrumented campaign actually hit, as a percentage of
    # the uninstrumented campaign's wall time.  This is the <2% acceptance
    # gate enforced by tools/check_bench.py.
    per_op_off_s = hot["optimised_s"] / guard_ops
    off_overhead_pct = per_op_off_s * n_spans / wall_off * 100.0 if wall_off > 0 else 0.0
    on_overhead_pct = max((wall_on - wall_off) / wall_off * 100.0, 0.0) if wall_off > 0 else 0.0

    result.metrics["tracing_off_overhead_pct"] = {
        "value": max(off_overhead_pct, 0.0), "unit": "%", "direction": "lower",
    }
    result.metrics["tracing_on_overhead_pct"] = {
        "value": on_overhead_pct, "unit": "%", "direction": "lower",
    }
    result.metrics["span_record_cost_us"] = {
        "value": hot["baseline_s"] / guard_ops * 1e6, "unit": "us/span", "direction": "lower",
    }
    result.metrics["spans_per_campaign"] = {
        "value": float(n_spans), "unit": "spans", "direction": "higher",
    }
    result.metrics["wall_off_s"] = {"value": wall_off, "unit": "s", "direction": "lower"}
    result.metrics["wall_on_s"] = {"value": wall_on, "unit": "s", "direction": "lower"}
    return result


_AREA_FUNCTIONS = {
    "events": _bench_events,
    "codec": _bench_codec,
    "campaign": _bench_campaign,
    "portal": _bench_portal,
    "vision": _bench_vision,
    "obs": _bench_obs,
}


def run_area(area: str, repeats: int = 3, scale: float = 1.0) -> AreaResult:
    """Run one area's pinned scenario.

    ``repeats`` is the measurement repeat count (medians/minima are taken
    over it); ``scale`` shrinks scenario sizes proportionally and exists for
    tests and smoke runs -- results from a scaled run are persisted with the
    scaled config and therefore never compare against full-size baselines.
    """
    try:
        fn = _AREA_FUNCTIONS[area]
    except KeyError:
        raise ValueError(f"unknown bench area {area!r}; expected one of {AREA_ORDER}") from None
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if not (scale > 0):
        raise ValueError(f"scale must be positive, got {scale}")
    return fn(repeats, scale)
