"""Frozen pre-optimisation implementations of the benched hot paths.

Every ``BENCH_<area>.json`` records a speedup "over the pre-PR baseline
*recorded in the same file*": the bench does not trust numbers measured on
some other machine at some other time, it re-runs the old implementation
side by side with the optimised one in the same process.  This module is
that old implementation -- verbatim copies of the hot paths as they stood
before the optimisation pass (see ``docs/performance.md``), kept importable
so both the bench and the equivalence property tests
(``tests/properties/test_codec_equivalence.py``) can diff the two.

Nothing here is wired into the application; editing these to "win" a
benchmark defeats the point of having them.
"""

from __future__ import annotations

import heapq
import itertools
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.clock import Clock, SimClock
from repro.wei.drivers.protocol import (
    _BODY_PREFIX,
    _CODE_KINDS,
    _KIND_CODES,
    MAGIC,
    MAX_BODY_BYTES,
    Frame,
    FrameError,
)

__all__ = [
    "ReferenceEvent",
    "ReferenceEventScheduler",
    "reference_encode_frame",
    "ReferenceFrameDecoder",
    "reference_sample_colors",
    "reference_campaign_fingerprint",
    "reference_diff_fingerprints",
]


# ---------------------------------------------------------------------------
# Event scheduler (pre: @dataclass(order=True) heap entries, no lazy-deletion
# accounting, schedule_after via schedule_at)
# ---------------------------------------------------------------------------


@dataclass(order=True)
class ReferenceEvent:
    """The old ordered-dataclass heap entry."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class ReferenceEventScheduler:
    """The old scheduler: Event objects on the heap, compared via dataclass
    ``order=True`` (which builds a tuple per comparison), cancelled entries
    never compacted, ``pending`` counting them."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._queue: List[ReferenceEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def processed(self) -> int:
        return self._processed

    def next_time(self) -> Optional[float]:
        event = self._peek()
        return event.time if event is not None else None

    def schedule_at(self, timestamp: float, callback: Callable[[], None], label: str = "") -> ReferenceEvent:
        if timestamp < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past (now={self.clock.now()}, requested={timestamp})"
            )
        event = ReferenceEvent(
            time=float(timestamp), sequence=next(self._counter), callback=callback, label=label
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay_s: float, callback: Callable[[], None], label: str = "") -> ReferenceEvent:
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        return self.schedule_at(self.clock.now() + delay_s, callback, label)

    def step(self) -> Optional[ReferenceEvent]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                break
            if self.step() is not None:
                executed += 1
        if until is not None and self.clock.now() < until and not self._queue:
            self.clock.advance_to(until)
        return executed

    def _peek(self) -> Optional[ReferenceEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None


# ---------------------------------------------------------------------------
# Frame codec (pre: per-frame json.dumps with kwargs, body concatenation and
# whole-body CRC on a fresh bytes object; decoder re-slicing the buffer and
# re-scanning from offset 0 after every frame/resync)
# ---------------------------------------------------------------------------


def reference_encode_frame(frame: Frame) -> bytes:
    """The old ``encode_frame``: concatenating encode, byte-identical output."""
    payload = json.dumps(frame.payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    body = _BODY_PREFIX.pack(_KIND_CODES[frame.kind], frame.seq) + payload
    if len(body) > MAX_BODY_BYTES:
        raise FrameError(f"frame body too large: {len(body)} bytes")
    return MAGIC + len(body).to_bytes(4, "big") + body + zlib.crc32(body).to_bytes(4, "big")


class ReferenceFrameDecoder:
    """The old ``FrameDecoder``: slice-copying, offset-0 rescanning."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.crc_errors = 0
        self.frames_decoded = 0

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            start = self._buffer.find(MAGIC)
            if start < 0:
                del self._buffer[: max(0, len(self._buffer) - 1)]
                return frames
            if start:
                del self._buffer[:start]
            if len(self._buffer) < 6:
                return frames
            body_len = int.from_bytes(self._buffer[2:6], "big")
            if body_len > MAX_BODY_BYTES:
                self.crc_errors += 1
                del self._buffer[:1]
                continue
            end = 6 + body_len + 4
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[6 : 6 + body_len])
            crc = int.from_bytes(self._buffer[6 + body_len : end], "big")
            if zlib.crc32(body) != crc:
                self.crc_errors += 1
                del self._buffer[:1]
                continue
            del self._buffer[:end]
            try:
                kind_code, seq = _BODY_PREFIX.unpack_from(body)
                payload = json.loads(body[_BODY_PREFIX.size :].decode("utf-8"))
                frame = Frame(kind=_CODE_KINDS[kind_code], seq=seq, payload=payload)
            except (KeyError, ValueError, struct.error):
                self.crc_errors += 1
                continue
            self.frames_decoded += 1
            frames.append(frame)


# ---------------------------------------------------------------------------
# Vision well scoring (pre: one np.mgrid per well)
# ---------------------------------------------------------------------------


def reference_sample_colors(
    extractor, image: np.ndarray, centers: Dict[str, Tuple[float, float]]
) -> Dict[str, np.ndarray]:
    """The old scoring loop: ``sample_color`` (with its per-well ``np.mgrid``)
    called once per well."""
    height, width = image.shape[:2]
    r = extractor.sample_radius
    colors: Dict[str, np.ndarray] = {}
    for name, (cx, cy) in centers.items():
        x0, x1 = int(max(cx - r, 0)), int(min(cx + r + 1, width))
        y0, y1 = int(max(cy - r, 0)), int(min(cy + r + 1, height))
        if x0 >= x1 or y0 >= y1:
            colors[name] = np.zeros(3)
            continue
        patch = image[y0:y1, x0:x1]
        yy, xx = np.mgrid[y0:y1, x0:x1]
        mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= r**2
        if not mask.any():
            colors[name] = patch.reshape(-1, 3).mean(axis=0)
        else:
            colors[name] = patch[mask].mean(axis=0)
    return colors


# ---------------------------------------------------------------------------
# Soak fingerprint / diff (pre: eight round() calls per sample, three-set diff)
# ---------------------------------------------------------------------------


def reference_campaign_fingerprint(campaign) -> Dict[str, Any]:
    """The old per-sample ``round`` fingerprint builder."""
    records = campaign.portal.search(experiment_id=campaign.experiment_id)
    runs: Dict[str, Any] = {}
    for record in records:
        runs[str(record.run_index)] = {
            "run_id": record.run_id,
            "target_rgb": list(record.target_rgb),
            "solver": record.solver,
            "samples": [
                [
                    sample.sample_index,
                    sample.well,
                    {dye: round(volume, 9) for dye, volume in sample.volumes_ul.items()},
                    [round(channel, 9) for channel in sample.measured_rgb],
                    round(sample.score, 9),
                ]
                for sample in record.samples
            ],
        }
    return {
        "experiment_runs": campaign.n_runs,
        "total_samples": campaign.total_samples,
        "portal_run_count": len(records),
        "best_scores": [round(run.best_score, 9) for run in campaign.runs],
        "runs": runs,
    }


def reference_diff_fingerprints(baseline: Dict[str, Any], candidate: Dict[str, Any]) -> List[str]:
    """The old three-set fingerprint diff (no wholesale-equality early-out)."""
    mismatches: List[str] = []
    for key in ("experiment_runs", "total_samples", "portal_run_count", "best_scores"):
        if baseline[key] != candidate[key]:
            mismatches.append(f"{key}: baseline {baseline[key]!r} != chaos {candidate[key]!r}")
    baseline_runs, candidate_runs = baseline["runs"], candidate["runs"]
    missing = sorted(set(baseline_runs) - set(candidate_runs), key=int)
    extra = sorted(set(candidate_runs) - set(baseline_runs), key=int)
    if missing:
        mismatches.append(f"portal lost runs: {missing}")
    if extra:
        mismatches.append(f"portal grew runs: {extra}")
    for run_index in sorted(set(baseline_runs) & set(candidate_runs), key=int):
        if baseline_runs[run_index] != candidate_runs[run_index]:
            mismatches.append(f"run {run_index}: record contents differ")
    return mismatches
