"""Record schemas for published experiment data.

The schema mirrors what the paper's portal shows (Figure 3): experiments
contain runs, runs contain samples; each sample stores the proposed dye
volumes, the measured colour and its score against the target; each run keeps
its timing breakdown and a pointer to the raw plate image.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["SampleRecord", "RunRecord", "ExperimentRecord"]


def _listify(values) -> List[float]:
    """Convert arrays/sequences of numbers into plain lists of floats."""
    return [float(v) for v in np.asarray(values).ravel()]


@dataclass
class SampleRecord:
    """One mixed-and-measured colour sample."""

    sample_index: int
    well: str
    plate_barcode: str
    volumes_ul: Dict[str, float]
    measured_rgb: List[float]
    score: float
    proposed_by: str = "solver"
    timestamp: float = 0.0

    def __post_init__(self):
        self.measured_rgb = _listify(self.measured_rgb)
        self.volumes_ul = {name: float(volume) for name, volume in self.volumes_ul.items()}
        self.score = float(self.score)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return asdict(self)


@dataclass
class RunRecord:
    """One run: a batch of samples plus its timing and provenance."""

    experiment_id: str
    run_id: str
    run_index: int
    target_rgb: List[float]
    samples: List[SampleRecord] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    solver: str = ""
    image_reference: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.target_rgb = _listify(self.target_rgb)

    @property
    def n_samples(self) -> int:
        """Number of samples in the run."""
        return len(self.samples)

    @property
    def best_score(self) -> float:
        """Best (lowest) score among this run's samples (inf when empty)."""
        if not self.samples:
            return float("inf")
        return min(sample.score for sample in self.samples)

    @property
    def best_sample(self) -> Optional[SampleRecord]:
        """The sample with the best score (None when the run has no samples)."""
        if not self.samples:
            return None
        return min(self.samples, key=lambda sample: sample.score)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "experiment_id": self.experiment_id,
            "run_id": self.run_id,
            "run_index": self.run_index,
            "target_rgb": list(self.target_rgb),
            "solver": self.solver,
            "image_reference": self.image_reference,
            "timings": dict(self.timings),
            "metadata": dict(self.metadata),
            "n_samples": self.n_samples,
            "best_score": self.best_score if self.samples else None,
            "samples": [sample.to_dict() for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from its dict form (inverse of :meth:`to_dict`)."""
        samples = [
            SampleRecord(**{key: value for key, value in sample.items()})
            for sample in data.get("samples", [])
        ]
        return cls(
            experiment_id=data["experiment_id"],
            run_id=data["run_id"],
            run_index=int(data.get("run_index", 0)),
            target_rgb=data.get("target_rgb", [0, 0, 0]),
            samples=samples,
            timings=dict(data.get("timings", {})),
            solver=data.get("solver", ""),
            image_reference=data.get("image_reference"),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class ExperimentRecord:
    """Summary of one experiment: an ordered collection of runs.

    This is what the portal's summary view shows -- e.g. the Figure 3
    experiment of August 16th 2023 "involving 12 runs each with 15 samples,
    for a total of 180 experiments".
    """

    experiment_id: str
    title: str = ""
    runs: List[RunRecord] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        """Number of runs in the experiment."""
        return len(self.runs)

    @property
    def n_samples(self) -> int:
        """Total samples across all runs."""
        return sum(run.n_samples for run in self.runs)

    @property
    def best_score(self) -> float:
        """Best score achieved by any run (inf when empty)."""
        if not self.runs:
            return float("inf")
        return min(run.best_score for run in self.runs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "metadata": dict(self.metadata),
            "n_runs": self.n_runs,
            "n_samples": self.n_samples,
            "best_score": self.best_score if self.runs else None,
            "runs": [run.to_dict() for run in self.runs],
        }
