"""Durable append-only backend for the data portal.

:class:`DurableDataPortal` stores run records in rolling **JSONL segment
files** (``segment-000001.jsonl``, ...): every ingest -- including an
explicit ``overwrite=True`` re-publication -- appends exactly one envelope
line and never rewrites earlier bytes, so the write path is sequential I/O
and a crash can only ever damage the tail of the newest segment.  On open
the segments are replayed in order, **latest append wins** per ``run_id``
(versioned overwrites need no tombstones), and the in-memory indexes --
run locations, per-experiment membership, the pagination order -- are
rebuilt; records themselves stay on disk and are loaded lazily, so the
resident cost of a million-record store is the index, not the data.

Envelope format (one JSON object per line)::

    {"crc": <crc32 of the canonical record JSON>, "record": {...},
     "v": 1, "version": <per-run ingest counter>}

The CRC plus line framing make torn or corrupted tails *detectable*:
:meth:`DurableDataPortal.open`-time replay skips any line that fails to
parse or checksum, records each skip in the :class:`RecoveryReport`
(never raising), resumes at the next newline, and starts a **fresh
segment** for new appends so recovered garbage is never extended.
:meth:`DurableDataPortal.compact` rewrites the store to one envelope per
live run (versions preserved -- they ride in the envelope), dropping both
superseded versions and recovered-around damage; :meth:`snapshot` writes
the same compacted form to another directory without touching the live
store.  Compaction is crash-safe via a commit-marker protocol: the
rewrite is staged in ``.compact-tmp``, the live segments are renamed
aside (never unlinked while they are the only copy), and an fsynced
``compact-commit`` marker is the atomic decision point -- on the next
open, :meth:`_recover_compaction` rolls the store forward (marker
present: the staged segments are authoritative) or back (marker absent:
the originals are), so a crash at *any* instant leaves one complete
copy.

Durability contract (see ``docs/portal.md`` for the full protocol):

* every append is ``flush()``\\ ed before :meth:`ingest` returns, so other
  *threads* and queries always see it (exactly-once visibility);
* ``fsync`` points are explicit and policy-controlled
  (``fsync_policy="always"|"segment"|"never"``): ``"always"`` fsyncs every
  append, ``"segment"`` (the default) fsyncs on segment roll, on
  :meth:`sync` and on :meth:`close`, ``"never"`` leaves flushing to the OS;
  whenever the policy fsyncs file *contents*, the store directory is also
  fsynced after creating a segment (and around compaction's renames), so
  the directory entries those bytes live under are durable too
  (``dir_fsyncs`` counts these separately);
* concurrent ingest from many coordinator shards is supported: one
  coarse store lock (built through
  :func:`repro.analysis.runtime.make_lock`, so it is a named node in the
  instrumented lock-order graph) serialises every mutation, every index
  read *and* every record load from disk -- so a query can never observe
  compaction's rename window or read a stale offset from a freshly
  rewritten segment.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Tuple

from repro.analysis.runtime import make_lock
from repro.obs import metrics as obs_metrics
from repro.publish.portal import (
    PortalBackend,
    PortalQueryError,
    SearchPage,
    _decode_cursor,
    _encode_cursor,
)
from repro.publish.records import ExperimentRecord, RunRecord

__all__ = ["StoreFault", "RecoveryReport", "DurableDataPortal"]

#: Envelope schema version (bump on incompatible line-format changes).
ENVELOPE_VERSION = 1

#: Segment filename pattern; the numeric part orders replay.
_SEGMENT_GLOB = "segment-*.jsonl"

#: Compaction staging directory (inside the store directory).
_COMPACT_TMP = ".compact-tmp"

#: Compaction commit marker: present on disk exactly while the staged
#: compacted segments (not the renamed-aside originals) are authoritative.
_COMPACT_MARKER = "compact-commit"

#: Suffix live segments are renamed to during compaction (never matches
#: ``_SEGMENT_GLOB``, so an aside segment is invisible to replay).
_ASIDE_SUFFIX = ".old"
_ASIDE_GLOB = _SEGMENT_GLOB + _ASIDE_SUFFIX

#: Allowed fsync policies (see the module docstring).
FSYNC_POLICIES = ("always", "segment", "never")

#: Lock-order-graph role name of the store's mutation lock.
STORE_LOCK_ROLE = "durable-portal"


def _canonical_record_json(record_dict: Dict[str, Any]) -> str:
    """The canonical serialisation the CRC covers.

    ``sort_keys`` + tight separators make the bytes a pure function of the
    record's *content*, so the checksum computed at append time and the one
    recomputed from the parsed line at replay time agree exactly.
    """
    return json.dumps(record_dict, sort_keys=True, separators=(",", ":"), default=str)


def _segment_name(index: int) -> str:
    return f"segment-{index:06d}.jsonl"


def _segment_index(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


@dataclass(frozen=True)
class StoreFault:
    """One damaged byte range the replay skipped (and recovered around)."""

    segment: str
    offset: int
    length: int
    reason: str
    at_tail: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "segment": self.segment,
            "offset": self.offset,
            "length": self.length,
            "reason": self.reason,
            "at_tail": self.at_tail,
        }


@dataclass
class RecoveryReport:
    """What the last :meth:`DurableDataPortal` open found while replaying."""

    segments: int = 0
    records_replayed: int = 0
    faults: List[StoreFault] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every byte of every segment replayed as a valid record."""
        return not self.faults

    @property
    def torn_tail(self) -> Optional[StoreFault]:
        """The trailing-partial-write fault, if the newest segment has one."""
        for fault in reversed(self.faults):
            if fault.at_tail:
                return fault
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "segments": self.segments,
            "records_replayed": self.records_replayed,
            "clean": self.clean,
            "faults": [fault.to_dict() for fault in self.faults],
        }


@dataclass
class _IndexEntry:
    """Where one run's *latest* record lives, plus its searchable fields."""

    run_id: str
    experiment_id: str
    run_index: int
    solver: str
    best_score: float
    version: int
    segment: str
    offset: int
    length: int


class DurableDataPortal(PortalBackend):
    """Append-only on-disk portal backend (see the module docstring).

    Parameters
    ----------
    directory:
        The store directory (created if missing); holds only segment files
        and, transiently while a compaction is in flight, a
        ``.compact-tmp`` staging directory, renamed-aside ``*.jsonl.old``
        segments and the ``compact-commit`` marker.
    segment_max_bytes:
        Roll to a new segment once the active one would exceed this size
        (default 8 MiB).  Smaller segments bound the blast radius of tail
        damage and the cost of partial compaction; tests shrink this to
        force multi-segment stores.
    fsync_policy:
        ``"always"`` | ``"segment"`` (default) | ``"never"``; see the
        module docstring.  ``fsyncs`` counts the calls actually issued so
        the policy is observable.
    """

    backend_name = "durable"

    def __init__(
        self,
        directory: Path,
        *,
        segment_max_bytes: int = 8 * 1024 * 1024,
        fsync_policy: str = "segment",
    ):
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync_policy {fsync_policy!r}; expected one of {FSYNC_POLICIES}"
            )
        if segment_max_bytes < 1:
            raise ValueError(f"segment_max_bytes must be >= 1, got {segment_max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = int(segment_max_bytes)
        self.fsync_policy = fsync_policy
        # Fsync counters live on the metrics registry (mutated under the
        # store lock); the fsyncs/dir_fsyncs properties stay as thin views.
        registry = obs_metrics.get_registry()
        labels = {"store": self.directory.name, "instance": obs_metrics.next_instance()}
        self._m_fsyncs = registry.counter("portal_fsyncs_total", labels)
        self._m_dir_fsyncs = registry.counter("portal_dir_fsyncs_total", labels)
        self.recovery = RecoveryReport()
        self._lock = make_lock(STORE_LOCK_ROLE)
        self._index: Dict[str, _IndexEntry] = {}
        self._experiments: Dict[str, List[str]] = {}
        #: Sorted pagination keys ``(experiment_id, run_index, run_id)``.
        self._order: List[Tuple[str, int, str]] = []
        self._write_handle: Optional[IO[bytes]] = None
        self._write_segment = ""
        self._write_offset = 0
        self._closed = False
        self._load()

    # ------------------------------------------------------------------
    # Open / replay
    # ------------------------------------------------------------------
    def _segment_paths(self) -> List[Path]:
        return sorted(self.directory.glob(_SEGMENT_GLOB), key=_segment_index)

    def _recover_compaction(self) -> None:
        """Finish or roll back a compaction a previous process died inside.

        :meth:`compact` stages the rewrite in ``.compact-tmp``, renames
        the live segments aside (``*.jsonl.old``), then fsyncs a
        ``compact-commit`` marker before renaming the staged segments in.
        The marker is the atomic decision point:

        * marker present -- the staged segments are authoritative: finish
          renaming them in, then drop the aside originals and the marker;
        * marker absent -- the originals are authoritative: restore any
          aside segments to their live names and discard the staging
          directory (it may be incomplete).

        Either way exactly one complete copy survives a crash at any
        instant, so this never loses data.
        """
        working = self.directory / _COMPACT_TMP
        marker = self.directory / _COMPACT_MARKER
        aside = sorted(self.directory.glob(_ASIDE_GLOB))
        if not (marker.exists() or aside or working.exists()):
            return
        if marker.exists():
            # Committed: the staged rewrite is complete and fsynced.
            if working.exists():
                for path in sorted(working.glob(_SEGMENT_GLOB), key=_segment_index):
                    path.replace(self.directory / path.name)
                shutil.rmtree(working, ignore_errors=True)
            for path in aside:
                path.unlink()
            marker.unlink()
        else:
            # Not committed: the staging directory was never part of the
            # live store and may be torn mid-write -- discard it and put
            # back any segments the crashed compact had renamed aside.
            if working.exists():
                shutil.rmtree(working, ignore_errors=True)
            for path in aside:
                original = self.directory / path.name[: -len(_ASIDE_SUFFIX)]
                if original.exists():
                    path.unlink()
                else:
                    path.rename(original)
        self._fsync_dir(self.directory)

    def _load(self) -> None:
        """Replay every segment, rebuilding the indexes; never raises on
        damaged data -- each skipped byte range lands in ``self.recovery``."""
        self._recover_compaction()
        self._index.clear()
        self._experiments.clear()
        self._order = []
        report = RecoveryReport()
        paths = self._segment_paths()
        report.segments = len(paths)
        for path_number, path in enumerate(paths):
            last_segment = path_number == len(paths) - 1
            data = path.read_bytes()
            offset = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                if newline < 0:
                    # Trailing bytes with no terminator: a torn append.
                    report.faults.append(
                        StoreFault(
                            segment=path.name,
                            offset=offset,
                            length=len(data) - offset,
                            reason="torn tail (no trailing newline)",
                            at_tail=last_segment,
                        )
                    )
                    break
                line = data[offset:newline]
                problem = self._replay_line(path.name, offset, line)
                if problem is None:
                    report.records_replayed += 1
                else:
                    report.faults.append(
                        StoreFault(
                            segment=path.name,
                            offset=offset,
                            length=len(line) + 1,
                            reason=problem,
                            at_tail=last_segment and data.find(b"\n", newline + 1) < 0
                            and newline + 1 == len(data),
                        )
                    )
                offset = newline + 1
        self.recovery = report
        # Sort once; ingest maintains the order incrementally afterwards.
        self._order = sorted(
            (entry.experiment_id, entry.run_index, entry.run_id)
            for entry in self._index.values()
        )
        # Appends go to the last segment only if it is intact and has room;
        # damaged or full tails are left in place (until compact) and a
        # fresh segment takes the writes, so recovered-around garbage is
        # never extended into fresh appends.
        self._write_handle = None
        self._write_segment = ""
        self._write_offset = 0
        if paths:
            tail = paths[-1]
            tail_damaged = any(fault.segment == tail.name for fault in report.faults)
            size = tail.stat().st_size
            if not tail_damaged and size < self.segment_max_bytes:
                self._write_segment = tail.name
                self._write_offset = size

    def _replay_line(self, segment: str, offset: int, line: bytes) -> Optional[str]:
        """Apply one envelope line; returns a fault reason or ``None``."""
        try:
            envelope = json.loads(line)
        except ValueError:
            return "unparseable envelope line"
        if not isinstance(envelope, dict):
            return "envelope is not a JSON object"
        record_dict = envelope.get("record")
        version = envelope.get("version")
        crc = envelope.get("crc")
        if not isinstance(record_dict, dict) or not isinstance(version, int):
            return "envelope missing record/version"
        if isinstance(version, bool) or version < 1:
            # bool is an int subclass; neither it nor a non-positive count
            # may seed the version counter ingest/overwrite build on.
            return f"envelope version invalid ({version!r})"
        if zlib.crc32(_canonical_record_json(record_dict).encode("utf-8")) != crc:
            return "record checksum mismatch"
        try:
            record = RunRecord.from_dict(record_dict)
        except (KeyError, TypeError, ValueError) as exc:
            return f"record schema invalid ({exc})"
        if not record.run_id or not record.experiment_id:
            return "record missing run_id/experiment_id"
        self._apply(
            record,
            version=version,
            segment=segment,
            offset=offset,
            length=len(line) + 1,
            maintain_order=False,
        )
        return None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, record: RunRecord, *, overwrite: bool = False) -> None:
        """Append one run record; durable per the fsync policy, visible to
        every query (from any thread) on return.

        Semantics mirror :meth:`DataPortal.ingest` exactly: duplicates
        raise :class:`~repro.publish.portal.DuplicateRunError` unless
        ``overwrite=True``, which appends a higher-``version`` envelope
        (latest-wins on replay -- no tombstones, no in-place rewrites).
        """
        self._validate_record(record)
        record_json = _canonical_record_json(record.to_dict())
        with self._lock:
            self._ensure_open()
            previous = self._index.get(record.run_id)
            if previous is not None and not overwrite:
                raise self._duplicate_error(record.run_id, previous.version)
            version = previous.version + 1 if previous is not None else 1
            line = (
                json.dumps(
                    {
                        "crc": zlib.crc32(record_json.encode("utf-8")),
                        "v": ENVELOPE_VERSION,
                        "version": version,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )[:-1]
                + ',"record":'
                + record_json
                + "}\n"
            ).encode("utf-8")
            segment, offset = self._append(line)
            self._apply(
                record,
                version=version,
                segment=segment,
                offset=offset,
                length=len(line),
                maintain_order=True,
            )

    def _apply(
        self,
        record: RunRecord,
        *,
        version: int,
        segment: str,
        offset: int,
        length: int,
        maintain_order: bool,
    ) -> None:
        """Update the indexes for one appended (or replayed) envelope."""
        import bisect

        previous = self._index.get(record.run_id)
        if previous is not None and previous.experiment_id != record.experiment_id:
            # Latest-wins across experiments: the run leaves its old
            # experiment entirely, exactly like the in-memory backend.
            old_runs = self._experiments[previous.experiment_id]
            old_runs.remove(record.run_id)
            if not old_runs:
                del self._experiments[previous.experiment_id]
        if maintain_order:
            key = (record.experiment_id, record.run_index, record.run_id)
            if previous is not None:
                old_key = (previous.experiment_id, previous.run_index, previous.run_id)
                if old_key != key:
                    position = bisect.bisect_left(self._order, old_key)
                    if position < len(self._order) and self._order[position] == old_key:
                        del self._order[position]
                    bisect.insort(self._order, key)
            else:
                bisect.insort(self._order, key)
        self._index[record.run_id] = _IndexEntry(
            run_id=record.run_id,
            experiment_id=record.experiment_id,
            run_index=record.run_index,
            solver=record.solver,
            best_score=record.best_score,
            version=version,
            segment=segment,
            offset=offset,
            length=length,
        )
        runs = self._experiments.setdefault(record.experiment_id, [])
        if record.run_id not in runs:
            runs.append(record.run_id)

    def _append(self, line: bytes) -> Tuple[str, int]:
        """Write one envelope line to the active segment (rolling first if
        it would overflow); returns ``(segment_name, offset)``."""
        if self._write_handle is None or (
            self._write_offset > 0 and self._write_offset + len(line) > self.segment_max_bytes
        ):
            self._roll_segment()
        assert self._write_handle is not None
        offset = self._write_offset
        self._write_handle.write(line)
        # Flush unconditionally: visibility ("a record is queryable the
        # moment ingest returns", from any thread or a concurrent reader
        # process) must not depend on the durability policy.
        self._write_handle.flush()
        if self.fsync_policy == "always":
            self._fsync(self._write_handle)
        self._write_offset = offset + len(line)
        return self._write_segment, offset

    def _roll_segment(self) -> None:
        """Seal the active segment (fsync point) and open the next one."""
        if self._write_handle is not None:
            if self.fsync_policy != "never":
                self._fsync(self._write_handle)
            self._write_handle.close()
            self._write_handle = None
        if not self._write_segment:
            paths = self._segment_paths()
            next_index = _segment_index(paths[-1]) + 1 if paths else 1
        else:
            next_index = _segment_index(Path(self._write_segment)) + 1
        self._write_segment = _segment_name(next_index)
        self._write_handle = open(self.directory / self._write_segment, "ab")
        self._write_offset = 0
        if self.fsync_policy != "never":
            # The new segment's *directory entry* must be durable too, or
            # a power loss can drop a fully-fsynced file from the tree.
            self._fsync_dir(self.directory)

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"portal store {self.directory} is closed")
        if self._write_handle is None and self._write_segment:
            # Lazily reattach to the intact tail segment found at open time.
            self._write_handle = open(self.directory / self._write_segment, "ab")

    def _fsync(self, handle: IO[bytes]) -> None:
        handle.flush()
        os.fsync(handle.fileno())
        self._m_fsyncs.inc()

    def _fsync_dir(self, directory: Path) -> None:
        """Make ``directory``'s entries (creates/renames/unlinks) durable;
        counted in ``dir_fsyncs``, separately from data fsyncs."""
        if os.name == "nt":  # pragma: no cover - directories aren't
            return  # openable on Windows; entry durability is best-effort
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        self._m_dir_fsyncs.inc()

    @property
    def fsyncs(self) -> int:
        """Data fsyncs issued so far (thin view over the registry counter)."""
        return int(self._m_fsyncs.value)

    @property
    def dir_fsyncs(self) -> int:
        """Directory fsyncs issued so far (thin view over the registry counter)."""
        return int(self._m_dir_fsyncs.value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def version(self, run_id: str) -> int:
        """How many times ``run_id`` has been ingested -- preserved across
        reopen (the counter rides in every appended envelope)."""
        with self._lock:
            entry = self._index.get(run_id)
        if entry is None:
            raise PortalQueryError(f"unknown run id {run_id!r}")
        return entry.version

    @property
    def ingest_count(self) -> int:
        """Total ingests ever accepted (every ingest bumps one run's
        version by one, so this is the version sum -- compaction-proof)."""
        with self._lock:
            return sum(entry.version for entry in self._index.values())

    @property
    def n_runs(self) -> int:
        """Total number of stored run records."""
        with self._lock:
            return len(self._index)

    @property
    def n_experiments(self) -> int:
        """Number of distinct experiments with at least one run."""
        with self._lock:
            return len(self._experiments)

    def experiment_ids(self) -> List[str]:
        """All experiment ids in insertion order."""
        with self._lock:
            return list(self._experiments)

    def _read_entry(self, entry: _IndexEntry) -> RunRecord:
        """Load one record from its segment byte range.

        Caller holds the store lock: a ``(segment, offset)`` pair is only
        meaningful against the segment files as they existed when the
        index entry was taken, and :meth:`compact` swaps those files (same
        names, different contents) under the same lock.
        """
        with open(self.directory / entry.segment, "rb") as handle:
            handle.seek(entry.offset)
            line = handle.read(entry.length)
        envelope = json.loads(line)
        return RunRecord.from_dict(envelope["record"])

    def get_run(self, run_id: str) -> RunRecord:
        """Fetch a run record by id (the latest version, if overwritten)."""
        with self._lock:
            entry = self._index.get(run_id)
            record = self._read_entry(entry) if entry is not None else None
        if record is None:
            raise PortalQueryError(f"unknown run id {run_id!r}")
        return record

    def get_experiment(self, experiment_id: str) -> ExperimentRecord:
        """Assemble the experiment record for ``experiment_id`` (runs
        sorted by ``run_index``, like the in-memory backend)."""
        with self._lock:
            run_ids = self._experiments.get(experiment_id)
            runs = (
                [self._read_entry(self._index[run_id]) for run_id in run_ids]
                if run_ids
                else None
            )
        if runs is None:
            raise PortalQueryError(f"unknown experiment id {experiment_id!r}")
        runs.sort(key=lambda run: run.run_index)
        return ExperimentRecord(experiment_id=experiment_id, runs=runs)

    def search(
        self,
        *,
        experiment_id: Optional[str] = None,
        solver: Optional[str] = None,
        max_best_score: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> List[RunRecord]:
        """Search run records by indexed fields (all criteria must match).

        The index pre-filters on its resident fields (experiment, solver,
        best score) so only candidate records are read from disk; the loaded
        records then pass through the *same* filter implementation as the
        in-memory backend, and results sort identically by
        ``(experiment_id, run_index)`` with insertion order breaking ties.
        """
        with self._lock:
            candidates = [
                entry
                for entry in self._index.values()
                if (experiment_id is None or entry.experiment_id == experiment_id)
                and (solver is None or entry.solver == solver)
                and (max_best_score is None or entry.best_score <= max_best_score)
            ]
            results = [
                record
                for record in (self._read_entry(entry) for entry in candidates)
                if self._matches(record, experiment_id, solver, max_best_score, metadata)
            ]
        results.sort(key=lambda record: (record.experiment_id, record.run_index))
        return results

    def search_page(
        self,
        *,
        experiment_id: Optional[str] = None,
        solver: Optional[str] = None,
        max_best_score: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
        limit: int = 100,
        cursor: Optional[str] = None,
    ) -> SearchPage:
        """One page of matches without materialising the full result set.

        Walks the maintained pagination order from the cursor position,
        index-pre-filtering before any disk read; behaviour (ordering,
        cursor semantics, page boundaries) is identical to the shared
        implementation in :class:`~repro.publish.portal.PortalBackend`.
        """
        import bisect

        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        after = _decode_cursor(cursor) if cursor is not None else None
        records: List[RunRecord] = []
        next_cursor: Optional[str] = None
        with self._lock:
            start = bisect.bisect_right(self._order, after) if after is not None else 0
            for key in self._order[start:]:
                entry = self._index[key[2]]
                if experiment_id is not None and entry.experiment_id != experiment_id:
                    continue
                if solver is not None and entry.solver != solver:
                    continue
                if max_best_score is not None and entry.best_score > max_best_score:
                    continue
                record = self._read_entry(entry)
                if not self._matches(record, experiment_id, solver, max_best_score, metadata):
                    continue
                if len(records) == limit:
                    # One match beyond the page proves there is a next page.
                    next_cursor = _encode_cursor(
                        (records[-1].experiment_id, records[-1].run_index, records[-1].run_id)
                    )
                    break
                records.append(record)
        return SearchPage(records=records, next_cursor=next_cursor)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Operational snapshot: sizes, segments, versions, recovery state."""
        with self._lock:
            n_runs = len(self._index)
            n_experiments = len(self._experiments)
            overwritten = sum(1 for entry in self._index.values() if entry.version > 1)
            live_bytes = sum(entry.length for entry in self._index.values())
            ingests = sum(entry.version for entry in self._index.values())
            # Under the lock too: compact() renames segments, so an
            # unlocked stat() walk could race a vanishing file.
            paths = self._segment_paths()
            total_bytes = sum(path.stat().st_size for path in paths)
        return {
            "backend": self.backend_name,
            "directory": str(self.directory),
            "n_runs": n_runs,
            "n_experiments": n_experiments,
            "ingest_count": ingests,
            "overwritten_runs": overwritten,
            "segments": len(paths),
            "total_bytes": total_bytes,
            "live_bytes": live_bytes,
            "fsync_policy": self.fsync_policy,
            "fsyncs": self.fsyncs,
            "dir_fsyncs": self.dir_fsyncs,
            "recovery": self.recovery.to_dict(),
        }

    def _write_compacted(self, directory: Path) -> Dict[str, Any]:
        """Write one envelope per live run (current versions preserved) as
        fresh segments under ``directory``; returns a manifest.

        Caller holds the store lock.  Output is fsynced regardless of
        policy: a compacted store or snapshot claims to be durable.
        """
        directory.mkdir(parents=True, exist_ok=True)
        segment_number = 1
        written_records = 0
        written_bytes = 0
        handle = open(directory / _segment_name(segment_number), "wb")
        try:
            offset = 0
            # Grouped live-iteration order: experiments in first-publication
            # order, runs in membership order.  Replaying this layout
            # reconstructs the exact experiment/run iteration order the
            # live store exposes (``experiment_ids()`` and friends), so
            # compaction is invisible to the parity suite.
            ordered_entries = [
                self._index[run_id]
                for run_ids in self._experiments.values()
                for run_id in run_ids
            ]
            for entry in ordered_entries:
                record_dict = self._read_entry(entry).to_dict()
                record_json = _canonical_record_json(record_dict)
                line = (
                    json.dumps(
                        {
                            "crc": zlib.crc32(record_json.encode("utf-8")),
                            "v": ENVELOPE_VERSION,
                            "version": entry.version,
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )[:-1]
                    + ',"record":'
                    + record_json
                    + "}\n"
                ).encode("utf-8")
                if offset > 0 and offset + len(line) > self.segment_max_bytes:
                    self._fsync(handle)
                    handle.close()
                    segment_number += 1
                    handle = open(directory / _segment_name(segment_number), "wb")
                    offset = 0
                handle.write(line)
                offset += len(line)
                written_records += 1
                written_bytes += len(line)
            self._fsync(handle)
        finally:
            handle.close()
        # Entries as well as contents: the compacted form claims to be
        # fully durable, so its directory must survive power loss too.
        self._fsync_dir(directory)
        return {
            "records": written_records,
            "segments": segment_number,
            "bytes": written_bytes,
            "directory": str(directory),
        }

    def snapshot(self, target: Path) -> Dict[str, Any]:
        """Write a compacted, self-contained copy of the live store to
        ``target`` (which must not already contain segments); the live
        store is untouched.  Returns the snapshot manifest."""
        target = Path(target)
        if sorted(target.glob(_SEGMENT_GLOB)):
            raise ValueError(f"snapshot target {target} already contains segment files")
        with self._lock:
            self._ensure_open()
            return self._write_compacted(target)

    def compact(self) -> Dict[str, Any]:
        """Rewrite the store to one envelope per live run.

        Drops superseded versions and any recovered-around damage; version
        counters are preserved (they ride in the envelopes).  Crash-safe
        commit-marker protocol -- at every instant at least one complete,
        recoverable copy of the store exists on disk:

        1. stage the rewrite in ``.compact-tmp`` (contents and directory
           entries fsynced);
        2. rename the live segments aside to ``*.jsonl.old`` -- renamed,
           never unlinked, because they are still the only committed copy;
        3. write and fsync the ``compact-commit`` marker: the atomic
           point of no return, after which the staged segments are
           authoritative;
        4. rename the staged segments in, then drop the aside originals,
           the staging directory and the marker.

        A crash before step 3 rolls back on the next open (originals
        restored, staging discarded); a crash after it rolls forward
        (staged rewrite completed) -- see :meth:`_recover_compaction`.
        Returns the compaction manifest.
        """
        working = self.directory / _COMPACT_TMP
        marker = self.directory / _COMPACT_MARKER
        with self._lock:
            self._ensure_open()
            if working.exists():
                shutil.rmtree(working)
            manifest = self._write_compacted(working)
            if self._write_handle is not None:
                self._write_handle.close()
                self._write_handle = None
            for path in self._segment_paths():
                path.rename(path.with_name(path.name + _ASIDE_SUFFIX))
            with open(marker, "wb") as handle:
                handle.write(b"commit\n")
                self._fsync(handle)
            self._fsync_dir(self.directory)
            for path in sorted(working.glob(_SEGMENT_GLOB), key=_segment_index):
                path.rename(self.directory / path.name)
            shutil.rmtree(working, ignore_errors=True)
            for path in sorted(self.directory.glob(_ASIDE_GLOB)):
                path.unlink()
            marker.unlink()
            self._fsync_dir(self.directory)
            self._load()
            manifest["directory"] = str(self.directory)
        return manifest

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Explicit fsync point: flush the active segment to stable storage."""
        with self._lock:
            if self._write_handle is not None:
                self._fsync(self._write_handle)

    def close(self) -> None:
        """Seal the active segment (final fsync point) and release handles.

        Idempotent; a closed store raises on further ingest but the object
        may simply be dropped -- reopening is ``DurableDataPortal(dir)``.
        """
        with self._lock:
            if self._closed:
                return
            if self._write_handle is not None:
                if self.fsync_policy != "never":
                    self._fsync(self._write_handle)
                self._write_handle.close()
                self._write_handle = None
            self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DurableDataPortal({str(self.directory)!r}, n_runs={self.n_runs})"
