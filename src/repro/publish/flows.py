"""Publication flows (stand-in for Globus automation flows).

"The publication step engages a Globus flow to publish data to the ALCF
Community Data Co-Op (ACDC) data portal" (paper Section 2.3).  The simulated
:class:`PublicationFlow` performs the same logical steps -- validate the run
record, transfer the raw image artefact, ingest the record into the search
index -- and returns a receipt listing each step, so the application's
"publish" stage has the same observable behaviour and failure surface as the
real service invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.publish.portal import DuplicateRunError, PortalBackend
from repro.publish.records import RunRecord

__all__ = ["FlowStepResult", "FlowReceipt", "PublicationFlow"]


@dataclass
class FlowStepResult:
    """One step of the publication flow (validate / transfer / ingest)."""

    name: str
    success: bool
    detail: str = ""


@dataclass
class FlowReceipt:
    """The receipt returned to the application after a publication flow run."""

    flow_id: str
    run_id: str
    success: bool
    steps: List[FlowStepResult] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "flow_id": self.flow_id,
            "run_id": self.run_id,
            "success": self.success,
            "steps": [
                {"name": step.name, "success": step.success, "detail": step.detail}
                for step in self.steps
            ],
        }


class PublicationFlow:
    """Validates, transfers and ingests run records into a portal backend.

    Works against any :class:`~repro.publish.portal.PortalBackend` -- the
    in-memory :class:`~repro.publish.portal.DataPortal` and the durable
    :class:`~repro.publish.store.DurableDataPortal` behave identically here.
    """

    def __init__(self, portal: PortalBackend, *, flow_name: str = "PublishColorPickerRPL"):
        self.portal = portal
        self.flow_name = flow_name
        self.flows_run = 0
        self.image_store: Dict[str, np.ndarray] = {}
        #: run_ids this flow has successfully published; only these may be
        #: overwritten by a re-publication through the same flow.
        self._published: set = set()

    def publish(self, record: RunRecord, image: Optional[np.ndarray] = None) -> FlowReceipt:
        """Run the flow for one run record (and optionally its raw plate image).

        Returns a :class:`FlowReceipt`; validation problems produce a failed
        receipt rather than an exception because a publication failure should
        not abort the experiment (the data stays in the local run log).
        """
        self.flows_run += 1
        flow_id = f"{self.flow_name}-{self.flows_run:05d}"
        steps: List[FlowStepResult] = []

        problems = self._validate(record)
        if problems:
            steps.append(FlowStepResult(name="validate", success=False, detail="; ".join(problems)))
            return FlowReceipt(flow_id=flow_id, run_id=record.run_id, success=False, steps=steps)
        steps.append(FlowStepResult(name="validate", success=True))

        if image is not None:
            reference = f"images/{record.experiment_id}/{record.run_id}.npy"
            self.image_store[reference] = np.asarray(image)
            record.image_reference = reference
            steps.append(
                FlowStepResult(name="transfer_image", success=True, detail=reference)
            )
        else:
            steps.append(FlowStepResult(name="transfer_image", success=True, detail="no image"))

        # Re-running the flow for a run *it* already published is a
        # legitimate re-publication (e.g. after adding the image artefact)
        # and lands as an explicit versioned overwrite.  A collision with a
        # record this flow never published keeps the portal's duplicate
        # protection: like a validation problem, it yields a failed receipt
        # rather than an exception, so the experiment is not aborted.
        try:
            self.portal.ingest(record, overwrite=record.run_id in self._published)
        except DuplicateRunError as exc:
            steps.append(FlowStepResult(name="ingest", success=False, detail=str(exc)))
            return FlowReceipt(flow_id=flow_id, run_id=record.run_id, success=False, steps=steps)
        self._published.add(record.run_id)
        steps.append(
            FlowStepResult(
                name="ingest",
                success=True,
                detail=f"{record.run_id} v{self.portal.version(record.run_id)}",
            )
        )
        return FlowReceipt(flow_id=flow_id, run_id=record.run_id, success=True, steps=steps)

    @staticmethod
    def _validate(record: RunRecord) -> List[str]:
        """Return a list of schema problems (empty when the record is publishable)."""
        problems = []
        if not record.run_id:
            problems.append("missing run_id")
        if not record.experiment_id:
            problems.append("missing experiment_id")
        if len(record.target_rgb) != 3:
            problems.append("target_rgb must have 3 components")
        for sample in record.samples:
            if len(sample.measured_rgb) != 3:
                problems.append(f"sample {sample.sample_index}: measured_rgb must have 3 components")
            if sample.score < 0:
                problems.append(f"sample {sample.sample_index}: negative score")
        return problems
