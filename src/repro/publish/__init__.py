"""Data publication substrate.

The paper publishes every run to the ALCF Community Data Co-Op (ACDC) portal
through a Globus flow (Section 2.3, Figure 3): "For each run, the data created
includes the colors produced, the timing of each step, the scoring results
from the solver, and the raw plate images for quality control."

This package provides the local, file-backed stand-in: the same record schema
(:mod:`repro.publish.records`), a publication flow with the transfer/ingest
steps of the Globus flow (:mod:`repro.publish.flows`), and a searchable portal
able to reproduce the summary and detail views of Figure 3 -- with two
interchangeable backends behind the one :class:`PortalBackend` contract: the
in-memory :class:`DataPortal` (:mod:`repro.publish.portal`) and the durable
append-only :class:`DurableDataPortal` (:mod:`repro.publish.store`, see
``docs/portal.md``).
"""

from repro.publish.flows import FlowReceipt, PublicationFlow
from repro.publish.portal import (
    DataPortal,
    DuplicateRunError,
    PortalBackend,
    PortalQueryError,
    SearchPage,
)
from repro.publish.records import ExperimentRecord, RunRecord, SampleRecord
from repro.publish.store import DurableDataPortal, RecoveryReport, StoreFault

__all__ = [
    "SampleRecord",
    "RunRecord",
    "ExperimentRecord",
    "PortalBackend",
    "DataPortal",
    "DurableDataPortal",
    "RecoveryReport",
    "StoreFault",
    "SearchPage",
    "PortalQueryError",
    "DuplicateRunError",
    "PublicationFlow",
    "FlowReceipt",
]
