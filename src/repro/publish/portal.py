"""A local, searchable data portal (stand-in for the ACDC Globus Search portal).

The portal stores published :class:`~repro.publish.records.RunRecord` entries,
indexes a handful of searchable fields, and can produce the two views shown in
the paper's Figure 3:

* the **summary view** of an experiment (number of runs, total samples, best
  score, thumbnails of the plate images), and
* the **detail view** of a single run (per-sample volumes, colours, scores,
  timing breakdown).

Two backends implement one contract (:class:`PortalBackend`):

* :class:`DataPortal` -- the original in-memory store (optionally writing
  per-run JSON files to a directory), kept bit-identical to its historical
  behaviour so every existing caller is unchanged, and
* :class:`~repro.publish.store.DurableDataPortal` -- the production-scale
  append-only on-disk store (JSONL segments, crash recovery, compaction)
  documented in ``docs/portal.md``.

Both expose the same queries, the same Figure-3 views, the same
``DuplicateRunError``/``overwrite=True``/``version()`` write contract, and
the same cursor-based :meth:`PortalBackend.search_page` pagination -- the
parity property suite (``tests/properties/test_portal_parity.py``) holds the
two to byte-identical observable behaviour.

Consistency, duplicates and thread safety
-----------------------------------------

:class:`DataPortal` is an **in-process, single-threaded** store: it takes no
locks, and concurrent mutation from several OS threads is not supported.  It
*is* safe to ingest from inside a fleet's merged event loop (the
:class:`~repro.wei.coordinator.MultiWorkcellCoordinator` streams each run's
record as the owning shard completes it): every mutation is applied
synchronously, so a record is visible to every query -- ``get_run``,
``search``, the Figure-3 views -- the moment :meth:`DataPortal.ingest`
returns, including to later run listeners of the same completion event.
(The durable backend additionally supports concurrent ingest from many
threads; see its docstring.)

Duplicate ``run_id``\\ s are **rejected, never silently clobbered**: a second
``ingest`` of an existing run raises :class:`DuplicateRunError` unless the
caller passes ``overwrite=True``, which performs an explicit *versioned
overwrite* -- the new record replaces the old one and the run's version
counter (:meth:`DataPortal.version`) increments.  Directory persistence
keeps only the latest version of each run on disk; version counters are
in-memory and restart at 1 when a portal is rebuilt with
:meth:`DataPortal.load`.  (The durable backend records the version in every
appended envelope, so *its* counters survive reopen.)
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.publish.records import ExperimentRecord, RunRecord

__all__ = [
    "PortalQueryError",
    "DuplicateRunError",
    "SearchPage",
    "PortalBackend",
    "DataPortal",
]


class PortalQueryError(KeyError):
    """Raised when a query references an unknown experiment or run."""


class DuplicateRunError(ValueError):
    """Raised when ingesting a ``run_id`` the portal already holds.

    Pass ``overwrite=True`` to :meth:`DataPortal.ingest` to replace the
    stored record explicitly (a versioned overwrite) instead.
    """


def _page_key(record: RunRecord) -> Tuple[str, int, str]:
    """The total order pagination walks: ``(experiment_id, run_index, run_id)``.

    ``run_id`` breaks ties so the order is stable under concurrent ingest --
    a cursor always names one exact position, never "somewhere between two
    equal keys".
    """
    return (record.experiment_id, record.run_index, record.run_id)


def _encode_cursor(key: Tuple[str, int, str]) -> str:
    """Opaque, URL-safe token naming the last-returned pagination key."""
    raw = json.dumps(list(key), separators=(",", ":")).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def _decode_cursor(cursor: str) -> Tuple[str, int, str]:
    """Inverse of :func:`_encode_cursor`; malformed tokens raise
    :class:`PortalQueryError` (a client bug, not a server state)."""
    try:
        parts = json.loads(base64.urlsafe_b64decode(cursor.encode("ascii")))
        experiment_id, run_index, run_id = parts
        return (str(experiment_id), int(run_index), str(run_id))
    except (ValueError, TypeError, KeyError):
        raise PortalQueryError(f"malformed search cursor {cursor!r}") from None


@dataclass
class SearchPage:
    """One page of :meth:`PortalBackend.search_page` results.

    ``next_cursor`` is ``None`` on the final page; otherwise pass it back to
    ``search_page`` (with the *same* filters) to fetch the next page.  The
    ordering is the stable total order ``(experiment_id, run_index,
    run_id)``, so walking every page yields each matching record exactly
    once even while new records are being ingested (records sorting before
    an already-consumed cursor are simply not revisited).
    """

    records: List[RunRecord] = field(default_factory=list)
    next_cursor: Optional[str] = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the CLI ``portal export`` page shape)."""
        return {
            "records": [record.to_dict() for record in self.records],
            "next_cursor": self.next_cursor,
        }


class PortalBackend:
    """The contract both portal backends implement, plus the shared logic.

    Subclasses provide the storage primitives (``ingest``, ``version``,
    ``get_run``, ``get_experiment``, ``search``, the counters); this base
    supplies everything defined *in terms of* those -- the Figure-3 views,
    cursor pagination, the context-manager lifecycle -- and the single
    filter implementation (:meth:`_matches`) so the two backends cannot
    drift on search semantics.
    """

    #: Human-readable backend name (CLI / stats / test ids).
    backend_name = "abstract"

    # -- storage primitives (subclass responsibilities) -------------------
    def ingest(self, record: RunRecord, *, overwrite: bool = False) -> None:
        raise NotImplementedError

    def version(self, run_id: str) -> int:
        raise NotImplementedError

    @property
    def n_runs(self) -> int:
        raise NotImplementedError

    @property
    def n_experiments(self) -> int:
        raise NotImplementedError

    def experiment_ids(self) -> List[str]:
        raise NotImplementedError

    def get_run(self, run_id: str) -> RunRecord:
        raise NotImplementedError

    def get_experiment(self, experiment_id: str) -> ExperimentRecord:
        raise NotImplementedError

    def search(
        self,
        *,
        experiment_id: Optional[str] = None,
        solver: Optional[str] = None,
        max_best_score: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> List[RunRecord]:
        raise NotImplementedError

    # -- shared write-contract helpers ------------------------------------
    @staticmethod
    def _validate_record(record: RunRecord) -> None:
        """The ingest preconditions both backends enforce identically."""
        if not record.run_id:
            raise ValueError("run record must have a non-empty run_id")
        if not record.experiment_id:
            raise ValueError("run record must have a non-empty experiment_id")

    @staticmethod
    def _duplicate_error(run_id: str, version: int) -> DuplicateRunError:
        """The one duplicate-rejection message, so parity holds to the byte."""
        return DuplicateRunError(
            f"portal already holds run {run_id!r} "
            f"(version {version}); "
            "pass overwrite=True for an explicit versioned overwrite"
        )

    @staticmethod
    def _matches(
        record: RunRecord,
        experiment_id: Optional[str],
        solver: Optional[str],
        max_best_score: Optional[float],
        metadata: Optional[Dict[str, Any]],
    ) -> bool:
        """The single search-filter implementation (all criteria must match)."""
        if experiment_id is not None and record.experiment_id != experiment_id:
            return False
        if solver is not None and record.solver != solver:
            return False
        if max_best_score is not None and record.best_score > max_best_score:
            return False
        if metadata:
            if any(record.metadata.get(key) != value for key, value in metadata.items()):
                return False
        return True

    # -- pagination --------------------------------------------------------
    def search_page(
        self,
        *,
        experiment_id: Optional[str] = None,
        solver: Optional[str] = None,
        max_best_score: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
        limit: int = 100,
        cursor: Optional[str] = None,
    ) -> SearchPage:
        """One page of matching records in stable ``(experiment_id,
        run_index, run_id)`` order.

        ``limit`` caps the page size; ``cursor`` (from a previous page's
        ``next_cursor``) resumes strictly *after* the last returned record.
        Both backends paginate identically; the durable backend overrides
        this with an index walk that never materialises the full result set.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        matches = self.search(
            experiment_id=experiment_id,
            solver=solver,
            max_best_score=max_best_score,
            metadata=metadata,
        )
        matches.sort(key=_page_key)
        if cursor is not None:
            after = _decode_cursor(cursor)
            matches = [record for record in matches if _page_key(record) > after]
        page = matches[:limit]
        next_cursor = _encode_cursor(_page_key(page[-1])) if len(matches) > limit else None
        return SearchPage(records=page, next_cursor=next_cursor)

    # -- Figure-3-style views ----------------------------------------------
    def summary_view(self, experiment_id: str) -> Dict[str, Any]:
        """The experiment summary view (left panel of Figure 3)."""
        experiment = self.get_experiment(experiment_id)
        return {
            "experiment_id": experiment_id,
            "n_runs": experiment.n_runs,
            "samples_per_run": [run.n_samples for run in experiment.runs],
            "total_samples": experiment.n_samples,
            "best_score": experiment.best_score if experiment.runs else None,
            "solvers": sorted({run.solver for run in experiment.runs if run.solver}),
            "images": [run.image_reference for run in experiment.runs if run.image_reference],
        }

    def detail_view(self, run_id: str) -> Dict[str, Any]:
        """The per-run detail view (right panel of Figure 3)."""
        record = self.get_run(run_id)
        return {
            "run_id": record.run_id,
            "experiment_id": record.experiment_id,
            "run_index": record.run_index,
            "target_rgb": list(record.target_rgb),
            "solver": record.solver,
            "n_samples": record.n_samples,
            "best_score": record.best_score if record.samples else None,
            "best_sample": record.best_sample.to_dict() if record.best_sample else None,
            "timings": dict(record.timings),
            "samples": [sample.to_dict() for sample in record.samples],
        }

    # -- lifecycle ----------------------------------------------------------
    def sync(self) -> None:
        """Force buffered state to stable storage (no-op for in-memory)."""

    def close(self) -> None:
        """Release storage resources; queries after close are undefined."""

    def __enter__(self) -> "PortalBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class DataPortal(PortalBackend):
    """In-memory (optionally directory-backed) run-record store with search.

    Not thread-safe; see the module docstring for the consistency model
    (mutations are visible to every query as soon as the mutating call
    returns).
    """

    backend_name = "memory"

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._runs: Dict[str, RunRecord] = {}
        self._experiments: Dict[str, List[str]] = {}
        self._versions: Dict[str, int] = {}
        self.ingest_count = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, record: RunRecord, *, overwrite: bool = False) -> None:
        """Store one run record; visible to all queries on return.

        A ``run_id`` the portal already holds raises
        :class:`DuplicateRunError` unless ``overwrite=True``, in which case
        the stored record is replaced and the run's version counter
        (:meth:`version`) increments -- re-publication is an explicit,
        observable event, never a silent clobber.  When the portal is
        directory-backed the record's JSON file is (re)written synchronously
        before this method returns, so on-disk state never lags in-memory
        state.
        """
        self._validate_record(record)
        previous = self._runs.get(record.run_id)
        if previous is not None and not overwrite:
            raise self._duplicate_error(record.run_id, self._versions[record.run_id])
        if previous is not None and previous.experiment_id != record.experiment_id:
            # An overwrite that moves the run between experiments must leave
            # no trace under the old one, in memory or on disk -- otherwise
            # a reload of the directory would see the run twice.
            old_runs = self._experiments[previous.experiment_id]
            old_runs.remove(record.run_id)
            if not old_runs:
                del self._experiments[previous.experiment_id]
            if self.directory is not None:
                stale = self.directory / previous.experiment_id / f"{record.run_id}.json"
                stale.unlink(missing_ok=True)
        self._runs[record.run_id] = record
        self._versions[record.run_id] = self._versions.get(record.run_id, 0) + 1
        runs = self._experiments.setdefault(record.experiment_id, [])
        if record.run_id not in runs:
            runs.append(record.run_id)
        self.ingest_count += 1
        if self.directory is not None:
            experiment_dir = self.directory / record.experiment_id
            experiment_dir.mkdir(parents=True, exist_ok=True)
            with open(experiment_dir / f"{record.run_id}.json", "w", encoding="utf-8") as handle:
                json.dump(record.to_dict(), handle, indent=2, default=str)

    def version(self, run_id: str) -> int:
        """How many times ``run_id`` has been ingested (1 = never overwritten)."""
        try:
            return self._versions[run_id]
        except KeyError:
            raise PortalQueryError(f"unknown run id {run_id!r}") from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Total number of stored run records."""
        return len(self._runs)

    @property
    def n_experiments(self) -> int:
        """Number of distinct experiments with at least one run."""
        return len(self._experiments)

    def experiment_ids(self) -> List[str]:
        """All experiment ids in insertion order."""
        return list(self._experiments)

    def get_run(self, run_id: str) -> RunRecord:
        """Fetch a run record by id (the latest version, if overwritten)."""
        try:
            return self._runs[run_id]
        except KeyError:
            raise PortalQueryError(f"unknown run id {run_id!r}") from None

    def get_experiment(self, experiment_id: str) -> ExperimentRecord:
        """Assemble the experiment record for ``experiment_id``.

        Runs are sorted by ``run_index``, so a campaign streamed out of
        shard-completion order still reads back as one ordered experiment.
        """
        if experiment_id not in self._experiments:
            raise PortalQueryError(f"unknown experiment id {experiment_id!r}")
        runs = [self._runs[run_id] for run_id in self._experiments[experiment_id]]
        runs.sort(key=lambda run: run.run_index)
        return ExperimentRecord(experiment_id=experiment_id, runs=runs)

    def search(
        self,
        *,
        experiment_id: Optional[str] = None,
        solver: Optional[str] = None,
        max_best_score: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> List[RunRecord]:
        """Search run records by indexed fields (all criteria must match).

        Results are sorted by ``(experiment_id, run_index)`` and reflect
        every ingest that returned before this call.
        """
        results = [
            record
            for record in self._runs.values()
            if self._matches(record, experiment_id, solver, max_best_score, metadata)
        ]
        results.sort(key=lambda record: (record.experiment_id, record.run_index))
        return results

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory: Path) -> "DataPortal":
        """Rebuild a portal from a directory previously written by :meth:`ingest`.

        Only the latest version of each run exists on disk, so every reloaded
        run starts again at version 1.
        """
        directory = Path(directory)
        portal = cls(directory=None)
        if not directory.exists():
            raise FileNotFoundError(f"portal directory {directory} does not exist")
        for path in sorted(directory.glob("*/*.json")):
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            portal.ingest(RunRecord.from_dict(data))
        portal.directory = directory
        return portal
