"""A local, searchable data portal (stand-in for the ACDC Globus Search portal).

The portal stores published :class:`~repro.publish.records.RunRecord` entries,
indexes a handful of searchable fields, and can produce the two views shown in
the paper's Figure 3:

* the **summary view** of an experiment (number of runs, total samples, best
  score, thumbnails of the plate images), and
* the **detail view** of a single run (per-sample volumes, colours, scores,
  timing breakdown).

Records can optionally be persisted to a directory as JSON files so a
"portal" survives process restarts, mirroring the paper's durable uploads.

Consistency, duplicates and thread safety
-----------------------------------------

The portal is an **in-process, single-threaded** store: it takes no locks,
and concurrent mutation from several OS threads is not supported.  It *is*
safe to ingest from inside a fleet's merged event loop (the
:class:`~repro.wei.coordinator.MultiWorkcellCoordinator` streams each run's
record as the owning shard completes it): every mutation is applied
synchronously, so a record is visible to every query -- ``get_run``,
``search``, the Figure-3 views -- the moment :meth:`DataPortal.ingest`
returns, including to later run listeners of the same completion event.

Duplicate ``run_id``\\ s are **rejected, never silently clobbered**: a second
``ingest`` of an existing run raises :class:`DuplicateRunError` unless the
caller passes ``overwrite=True``, which performs an explicit *versioned
overwrite* -- the new record replaces the old one and the run's version
counter (:meth:`DataPortal.version`) increments.  Directory persistence
keeps only the latest version of each run on disk; version counters are
in-memory and restart at 1 when a portal is rebuilt with
:meth:`DataPortal.load`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.publish.records import ExperimentRecord, RunRecord

__all__ = ["PortalQueryError", "DuplicateRunError", "DataPortal"]


class PortalQueryError(KeyError):
    """Raised when a query references an unknown experiment or run."""


class DuplicateRunError(ValueError):
    """Raised when ingesting a ``run_id`` the portal already holds.

    Pass ``overwrite=True`` to :meth:`DataPortal.ingest` to replace the
    stored record explicitly (a versioned overwrite) instead.
    """


class DataPortal:
    """In-memory (optionally directory-backed) run-record store with search.

    Not thread-safe; see the module docstring for the consistency model
    (mutations are visible to every query as soon as the mutating call
    returns).
    """

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._runs: Dict[str, RunRecord] = {}
        self._experiments: Dict[str, List[str]] = {}
        self._versions: Dict[str, int] = {}
        self.ingest_count = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, record: RunRecord, *, overwrite: bool = False) -> None:
        """Store one run record; visible to all queries on return.

        A ``run_id`` the portal already holds raises
        :class:`DuplicateRunError` unless ``overwrite=True``, in which case
        the stored record is replaced and the run's version counter
        (:meth:`version`) increments -- re-publication is an explicit,
        observable event, never a silent clobber.  When the portal is
        directory-backed the record's JSON file is (re)written synchronously
        before this method returns, so on-disk state never lags in-memory
        state.
        """
        if not record.run_id:
            raise ValueError("run record must have a non-empty run_id")
        if not record.experiment_id:
            raise ValueError("run record must have a non-empty experiment_id")
        previous = self._runs.get(record.run_id)
        if previous is not None and not overwrite:
            raise DuplicateRunError(
                f"portal already holds run {record.run_id!r} "
                f"(version {self._versions[record.run_id]}); "
                "pass overwrite=True for an explicit versioned overwrite"
            )
        if previous is not None and previous.experiment_id != record.experiment_id:
            # An overwrite that moves the run between experiments must leave
            # no trace under the old one, in memory or on disk -- otherwise
            # a reload of the directory would see the run twice.
            old_runs = self._experiments[previous.experiment_id]
            old_runs.remove(record.run_id)
            if not old_runs:
                del self._experiments[previous.experiment_id]
            if self.directory is not None:
                stale = self.directory / previous.experiment_id / f"{record.run_id}.json"
                stale.unlink(missing_ok=True)
        self._runs[record.run_id] = record
        self._versions[record.run_id] = self._versions.get(record.run_id, 0) + 1
        runs = self._experiments.setdefault(record.experiment_id, [])
        if record.run_id not in runs:
            runs.append(record.run_id)
        self.ingest_count += 1
        if self.directory is not None:
            experiment_dir = self.directory / record.experiment_id
            experiment_dir.mkdir(parents=True, exist_ok=True)
            with open(experiment_dir / f"{record.run_id}.json", "w", encoding="utf-8") as handle:
                json.dump(record.to_dict(), handle, indent=2, default=str)

    def version(self, run_id: str) -> int:
        """How many times ``run_id`` has been ingested (1 = never overwritten)."""
        try:
            return self._versions[run_id]
        except KeyError:
            raise PortalQueryError(f"unknown run id {run_id!r}") from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Total number of stored run records."""
        return len(self._runs)

    @property
    def n_experiments(self) -> int:
        """Number of distinct experiments with at least one run."""
        return len(self._experiments)

    def experiment_ids(self) -> List[str]:
        """All experiment ids in insertion order."""
        return list(self._experiments)

    def get_run(self, run_id: str) -> RunRecord:
        """Fetch a run record by id (the latest version, if overwritten)."""
        try:
            return self._runs[run_id]
        except KeyError:
            raise PortalQueryError(f"unknown run id {run_id!r}") from None

    def get_experiment(self, experiment_id: str) -> ExperimentRecord:
        """Assemble the experiment record for ``experiment_id``.

        Runs are sorted by ``run_index``, so a campaign streamed out of
        shard-completion order still reads back as one ordered experiment.
        """
        if experiment_id not in self._experiments:
            raise PortalQueryError(f"unknown experiment id {experiment_id!r}")
        runs = [self._runs[run_id] for run_id in self._experiments[experiment_id]]
        runs.sort(key=lambda run: run.run_index)
        return ExperimentRecord(experiment_id=experiment_id, runs=runs)

    def search(
        self,
        *,
        experiment_id: Optional[str] = None,
        solver: Optional[str] = None,
        max_best_score: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> List[RunRecord]:
        """Search run records by indexed fields (all criteria must match).

        Results are sorted by ``(experiment_id, run_index)`` and reflect
        every ingest that returned before this call.
        """
        results = []
        for record in self._runs.values():
            if experiment_id is not None and record.experiment_id != experiment_id:
                continue
            if solver is not None and record.solver != solver:
                continue
            if max_best_score is not None and record.best_score > max_best_score:
                continue
            if metadata:
                if any(record.metadata.get(key) != value for key, value in metadata.items()):
                    continue
            results.append(record)
        results.sort(key=lambda record: (record.experiment_id, record.run_index))
        return results

    # ------------------------------------------------------------------
    # Figure-3-style views
    # ------------------------------------------------------------------
    def summary_view(self, experiment_id: str) -> Dict[str, Any]:
        """The experiment summary view (left panel of Figure 3)."""
        experiment = self.get_experiment(experiment_id)
        return {
            "experiment_id": experiment_id,
            "n_runs": experiment.n_runs,
            "samples_per_run": [run.n_samples for run in experiment.runs],
            "total_samples": experiment.n_samples,
            "best_score": experiment.best_score if experiment.runs else None,
            "solvers": sorted({run.solver for run in experiment.runs if run.solver}),
            "images": [run.image_reference for run in experiment.runs if run.image_reference],
        }

    def detail_view(self, run_id: str) -> Dict[str, Any]:
        """The per-run detail view (right panel of Figure 3)."""
        record = self.get_run(run_id)
        return {
            "run_id": record.run_id,
            "experiment_id": record.experiment_id,
            "run_index": record.run_index,
            "target_rgb": list(record.target_rgb),
            "solver": record.solver,
            "n_samples": record.n_samples,
            "best_score": record.best_score if record.samples else None,
            "best_sample": record.best_sample.to_dict() if record.best_sample else None,
            "timings": dict(record.timings),
            "samples": [sample.to_dict() for sample in record.samples],
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory: Path) -> "DataPortal":
        """Rebuild a portal from a directory previously written by :meth:`ingest`.

        Only the latest version of each run exists on disk, so every reloaded
        run starts again at version 1.
        """
        directory = Path(directory)
        portal = cls(directory=None)
        if not directory.exists():
            raise FileNotFoundError(f"portal directory {directory} does not exist")
        for path in sorted(directory.glob("*/*.json")):
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            portal.ingest(RunRecord.from_dict(data))
        portal.directory = directory
        return portal
