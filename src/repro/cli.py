"""Command-line interface for the colour-picker benchmark suite.

Provides the operations a user of the released system would reach for first:

* ``run``          -- one colour-matching experiment (prints Table-1-style metrics),
* ``sweep``        -- the Figure 4 batch-size sweep,
* ``campaign``     -- the Figure 3 multi-run campaign and its portal views,
* ``fleet-status`` -- an elastic fleet campaign with live per-shard status
  snapshots (optionally attaching / draining workcells mid-flight),
* ``soak``         -- the chaos soak matrix: wire-protocol campaigns under
  seeded fault schedules, verified bit-identical to the sim baseline,
* ``lint``         -- the concurrency-contract linter (AST rules
  RPR001-RPR007 over ``src/``; see ``docs/concurrency_contract.md``),
* ``bench``        -- the pinned perf scenario matrix (``BENCH_<area>.json``
  trajectory files; see ``docs/performance.md``),
* ``metrics``      -- render the process-wide metrics registry as JSON or
  Prometheus text (see ``docs/observability.md``),
* ``trace``        -- summarise a ``--trace`` capture: per-stage latency
  percentiles and the slowest run's critical path,
* ``portal``       -- operate a durable on-disk portal store: ``stats``,
  ``compact``, ``snapshot``, ``export`` (paginated search), ``seed``
  (synthetic records for scale testing); see ``docs/portal.md``,
* ``solvers``      -- list the registered solvers,
* ``targets``      -- list the built-in target colours,
* ``workcell``     -- print the declarative description of the default workcell.

Invoke as ``python -m repro <command>`` (or the ``repro-colorpicker`` console
script when the package is installed).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, List, Optional

from repro.analysis.figure3 import render_figure3
from repro.analysis.figure4 import render_figure4
from repro.analysis.report import format_table
from repro.analysis.table1 import render_table1
from repro.color.targets import TARGET_COLORS
from repro.core.app import ColorPickerApp
from repro.core.batch import PAPER_BATCH_SIZES, run_batch_sweep
from repro.core.campaign import TRANSPORT_MODES, run_campaign
from repro.core.experiment import ExperimentConfig
from repro.publish.portal import DataPortal
from repro.sim.durations import ModuleSpeedProfile
from repro.solvers.base import SOLVER_REGISTRY
from repro.wei.coordinator import ASSIGNMENT_POLICIES
from repro.wei.workcell import build_color_picker_workcell

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    """``argparse`` type for arguments that must be a strictly positive integer.

    Rejecting 0 and negatives here turns e.g. ``--n-ot2 0`` into a clear
    usage error at parse time instead of a crash deep inside the engine.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """``argparse`` type for strictly positive, finite floats (e.g. ``--speedup``).

    ``0`` would freeze a paced transport forever and negatives would run it
    backwards, so both are rejected at parse time with a clear usage error;
    ``nan``/``inf`` are rejected for the same reason.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if not math.isfinite(value):
        raise argparse.ArgumentTypeError(f"expected a finite number, got {text!r}")
    if not (value > 0.0):
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _module_speeds(text: str) -> "ModuleSpeedProfile":
    """``argparse`` type for ``--module-speeds module=factor,...`` specs.

    Parsed into a :class:`~repro.sim.durations.ModuleSpeedProfile` at parse
    time so malformed pairs and non-positive / non-finite factors (which
    would divide a duration by 0 or produce infinite timings) become clear
    usage errors, mirroring :func:`_positive_float`.
    """
    try:
        return ModuleSpeedProfile.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_module_speeds_argument(parser: argparse.ArgumentParser) -> None:
    """``--module-speeds module=factor,...``: heterogeneous-fleet hardware mix."""
    parser.add_argument(
        "--module-speeds",
        type=_module_speeds,
        action="append",
        default=None,
        metavar="MODULE=FACTOR,...",
        help="per-module hardware speed factors, e.g. 'ot2=2.5,pf400=0.5' "
        "(2.5 = that module runs 2.5x faster than the paper calibration). "
        "Given once, applies to every workcell; repeat the flag to give "
        "each workcell its own profile (one flag per workcell, in shard "
        "order). See docs/scheduling.md",
    )


def _resolve_module_speeds(values: Optional[list], n_workcells: int) -> Optional[Any]:
    """Turn repeated ``--module-speeds`` flags into run_campaign's argument."""
    if not values:
        return None
    if len(values) == 1:
        return values[0]
    if len(values) != n_workcells:
        raise ValueError(
            f"--module-speeds given {len(values)} times; pass it once (all "
            f"workcells) or once per workcell ({n_workcells})"
        )
    return values


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    """``--trace FILE``: capture a causal span trace of the whole command."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a causal span trace of the command and write it as "
        "Chrome trace-event JSON (open in Perfetto, or summarise with "
        "'python -m repro trace FILE')",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro-colorpicker",
        description="Simulated self-driving-lab colour-matching benchmark (SC-W 2023 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one colour-matching experiment")
    run_parser.add_argument("--target", default="paper-grey", help="target colour name or 'R,G,B'")
    run_parser.add_argument("--samples", type=int, default=128, help="sample budget (default 128)")
    run_parser.add_argument("--batch-size", type=int, default=1, help="samples per iteration")
    run_parser.add_argument(
        "--solver", default="evolutionary", choices=sorted(SOLVER_REGISTRY), help="solver to use"
    )
    run_parser.add_argument("--seed", type=int, default=None, help="random seed")
    run_parser.add_argument(
        "--measurement", default="direct", choices=("direct", "vision"), help="colour read-out path"
    )
    run_parser.add_argument(
        "--transport",
        choices=TRANSPORT_MODES,
        default="sim",
        help="'sim' completes actions on the simulated clock; 'paced' delivers "
        "completions out-of-band from a wall-clock-paced driver; 'wire' speaks "
        "the framed byte-stream protocol (CRC frames, ACK/retry, resync)",
    )
    run_parser.add_argument(
        "--speedup",
        type=_positive_float,
        default=1000.0,
        help="wall-clock compression for --transport paced/wire (1 = hardware speed)",
    )
    run_parser.add_argument("--json", action="store_true", help="emit the full result as JSON")
    _add_trace_argument(run_parser)

    sweep_parser = subparsers.add_parser("sweep", help="run the Figure 4 batch-size sweep")
    sweep_parser.add_argument(
        "--batch-sizes",
        default=",".join(str(size) for size in PAPER_BATCH_SIZES),
        help="comma-separated batch sizes (default: the paper's 1,2,...,64)",
    )
    sweep_parser.add_argument("--samples", type=int, default=128)
    sweep_parser.add_argument("--solver", default="evolutionary", choices=sorted(SOLVER_REGISTRY))
    sweep_parser.add_argument("--seed", type=int, default=2023)
    sweep_parser.add_argument(
        "--n-ot2",
        type=_positive_int,
        default=1,
        help="OT-2 lanes; >1 executes the sweep's experiments concurrently on one shared workcell",
    )
    sweep_parser.add_argument(
        "--assignment",
        choices=ASSIGNMENT_POLICIES,
        default="work-stealing",
        help="how concurrent lanes claim experiments (default: work-stealing)",
    )

    campaign_parser = subparsers.add_parser("campaign", help="run the Figure 3 campaign")
    campaign_parser.add_argument("--runs", type=int, default=12)
    campaign_parser.add_argument("--samples-per-run", type=int, default=15)
    campaign_parser.add_argument("--seed", type=int, default=816)
    campaign_parser.add_argument("--portal-dir", default=None, help="persist the portal to this directory")
    campaign_parser.add_argument(
        "--portal-backend",
        choices=("memory", "durable"),
        default="memory",
        help="portal backend for the streamed records: 'memory' (default; "
        "--portal-dir writes per-run JSON files) or 'durable' (append-only "
        "segment store at --portal-dir, operable with 'python -m repro portal')",
    )
    campaign_parser.add_argument(
        "--n-ot2",
        type=_positive_int,
        default=1,
        help="OT-2 lanes per workcell; >1 executes the campaign's runs concurrently (Section 4 ablation)",
    )
    campaign_parser.add_argument(
        "--n-workcells",
        type=_positive_int,
        default=1,
        help="independent workcells; >1 shards the campaign across a coordinated fleet",
    )
    campaign_parser.add_argument(
        "--assignment",
        choices=ASSIGNMENT_POLICIES,
        default="work-stealing",
        help="how lanes claim runs (default: work-stealing / least-finish-time; "
        "stealing-lpt orders the shared queue longest-predicted-first; "
        "lookahead re-ranks it online with drift-corrected lane-aware "
        "predictions -- see docs/scheduling.md)",
    )
    _add_module_speeds_argument(campaign_parser)
    campaign_parser.add_argument(
        "--transport",
        choices=TRANSPORT_MODES,
        default="sim",
        help="'sim' completes actions on the simulated clock; 'paced' delivers "
        "completions out-of-band from a wall-clock-paced driver; 'wire' speaks "
        "the framed byte-stream protocol (CRC frames, ACK/retry, resync)",
    )
    campaign_parser.add_argument(
        "--speedup",
        type=_positive_float,
        default=1000.0,
        help="wall-clock compression for --transport paced/wire (1 = hardware speed)",
    )
    campaign_parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="inject a seeded chaos schedule (drop/corrupt/duplicate/delay/"
        "disconnect frames) into a --transport wire campaign",
    )
    _add_trace_argument(campaign_parser)

    soak_parser = subparsers.add_parser(
        "soak",
        help="run the chaos soak matrix: wire-protocol campaigns under seeded fault "
        "schedules must reproduce the sim baseline bit-for-bit",
    )
    soak_parser.add_argument("--runs", type=_positive_int, default=3)
    soak_parser.add_argument("--samples-per-run", type=_positive_int, default=4)
    soak_parser.add_argument("--batch-size", type=_positive_int, default=2)
    soak_parser.add_argument("--n-workcells", type=_positive_int, default=2)
    soak_parser.add_argument("--n-ot2", type=_positive_int, default=1)
    soak_parser.add_argument("--campaign-seed", type=int, default=816)
    soak_parser.add_argument(
        "--seeds",
        default=None,
        help="comma-separated chaos seeds (default: the built-in CI matrix)",
    )
    soak_parser.add_argument(
        "--speedup",
        type=_positive_float,
        default=500_000.0,
        help="wall-clock compression the wire device paces at (default 500000)",
    )
    soak_parser.add_argument(
        "--log-dir",
        default=None,
        help="write per-seed frame/event logs and a summary.json here",
    )
    soak_parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    _add_trace_argument(soak_parser)

    fleet_parser = subparsers.add_parser(
        "fleet-status",
        help="run an elastic fleet campaign and print live per-shard status snapshots",
    )
    fleet_parser.add_argument("--runs", type=_positive_int, default=8)
    fleet_parser.add_argument("--samples-per-run", type=_positive_int, default=6)
    fleet_parser.add_argument("--seed", type=int, default=816)
    fleet_parser.add_argument(
        "--n-workcells", type=_positive_int, default=2, help="initial fleet size"
    )
    fleet_parser.add_argument("--n-ot2", type=_positive_int, default=1, help="OT-2 lanes per workcell")
    fleet_parser.add_argument(
        "--assignment",
        choices=ASSIGNMENT_POLICIES,
        default="work-stealing",
        help="how lanes claim runs (lookahead/stealing-lpt use the duration "
        "predictor; see docs/scheduling.md)",
    )
    _add_module_speeds_argument(fleet_parser)
    fleet_parser.add_argument(
        "--attach-after",
        type=_positive_int,
        default=None,
        help="attach one extra workcell after this many completed runs",
    )
    fleet_parser.add_argument(
        "--drain-after",
        type=_positive_int,
        default=None,
        help="drain the first active workcell after this many completed runs",
    )
    fleet_parser.add_argument("--json", action="store_true", help="emit the final snapshot as JSON")

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the concurrency-contract linter (rules RPR001-RPR006) over "
        "Python sources; exits 1 on non-baselined violations",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI artifact schema)",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline of suppressed violations (each entry must carry a justification)",
    )
    lint_parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current violations to FILE as a baseline and exit 0; "
        "entries carry a placeholder justification that --baseline refuses to "
        "load, so each must be edited to say why before the file is usable",
    )
    lint_parser.add_argument(
        "--rules", action="store_true", help="list the rules and exit"
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the pinned perf scenario matrix and manage the "
        "BENCH_<area>.json trajectory files (see docs/performance.md)",
    )
    bench_parser.add_argument(
        "--areas",
        default=None,
        help="comma-separated areas to run (default: events,codec,campaign,"
        "portal,vision,obs in that order)",
    )
    bench_parser.add_argument(
        "--repeat",
        type=_positive_int,
        default=3,
        help="measurement repeats per scenario; metrics take the median, "
        "hot-path timings the interleaved minimum (default 3)",
    )
    bench_parser.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="shrink scenario sizes by this factor for smoke runs; scaled "
        "configs never compare against full-size baselines (default 1.0)",
    )
    bench_parser.add_argument(
        "--write",
        action="store_true",
        help="persist one BENCH_<area>.json per area to --out",
    )
    bench_parser.add_argument(
        "--out",
        default=".",
        help="directory for --write and the default --compare baseline "
        "(default: the current directory / repo root)",
    )
    bench_parser.add_argument(
        "--compare",
        nargs="?",
        const=".",
        default=None,
        metavar="BASE",
        help="diff fresh measurements against the committed BENCH_<area>.json "
        "files in BASE (default: the current directory); exits 1 on any "
        "regression beyond --threshold",
    )
    bench_parser.add_argument(
        "--threshold",
        type=_positive_float,
        default=None,
        help="fractional regression threshold for --compare (default 0.15)",
    )
    bench_parser.add_argument("--json", action="store_true", help="emit results as JSON")

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="render the process-wide metrics registry (counters, gauges, "
        "histograms; see docs/observability.md)",
    )
    metrics_parser.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="output format: 'json' (default) or 'prom' (Prometheus text exposition)",
    )
    metrics_parser.add_argument(
        "--exercise",
        action="store_true",
        help="run a tiny pinned paced campaign first so the registry has "
        "series to show (a fresh process starts empty)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="summarise a --trace capture: per-stage latency percentiles "
        "and the slowest run's critical path",
    )
    trace_parser.add_argument("file", help="Chrome trace-event JSON written by --trace")
    trace_parser.add_argument("--json", action="store_true", help="emit the summary as JSON")

    portal_parser = subparsers.add_parser(
        "portal",
        help="operate a durable on-disk portal store (append-only segment "
        "files; see docs/portal.md)",
    )
    portal_sub = portal_parser.add_subparsers(dest="portal_command", required=True)

    def add_store_argument(sub):
        sub.add_argument("store", help="the durable portal store directory")

    portal_stats = portal_sub.add_parser(
        "stats", help="open the store (replaying its segments) and print its stats"
    )
    add_store_argument(portal_stats)

    portal_compact = portal_sub.add_parser(
        "compact",
        help="rewrite the store to one record per run, dropping superseded "
        "versions and recovered-around damage (versions preserved)",
    )
    add_store_argument(portal_compact)

    portal_snapshot = portal_sub.add_parser(
        "snapshot", help="write a compacted copy of the store to a new directory"
    )
    add_store_argument(portal_snapshot)
    portal_snapshot.add_argument("target", help="directory for the snapshot (must hold no segments)")

    portal_export = portal_sub.add_parser(
        "export",
        help="print matching records as JSON pages via the cursor-paginated search",
    )
    add_store_argument(portal_export)
    portal_export.add_argument("--experiment-id", default=None, help="filter: exact experiment id")
    portal_export.add_argument("--solver", default=None, help="filter: exact solver name")
    portal_export.add_argument(
        "--max-best-score", type=float, default=None, help="filter: best score at most this"
    )
    portal_export.add_argument(
        "--limit", type=_positive_int, default=100, help="page size (default 100)"
    )
    portal_export.add_argument(
        "--cursor", default=None, help="resume after this cursor (from a previous page's next_cursor)"
    )
    portal_export.add_argument(
        "--all", action="store_true", help="follow next_cursor until exhausted (one JSON page per line)"
    )

    portal_seed = portal_sub.add_parser(
        "seed",
        help="ingest synthetic run records for scale testing (e.g. a "
        "1M-record store for 'portal stats' and paginated 'portal export')",
    )
    add_store_argument(portal_seed)
    portal_seed.add_argument(
        "--records", type=_positive_int, default=10_000, help="records to ingest (default 10000)"
    )
    portal_seed.add_argument(
        "--experiments", type=_positive_int, default=100, help="experiments to spread them over"
    )
    portal_seed.add_argument(
        "--samples", type=_positive_int, default=4, help="samples per record (default 4)"
    )
    portal_seed.add_argument("--seed", type=int, default=4242, help="random seed")
    portal_seed.add_argument(
        "--fsync",
        choices=("always", "segment", "never"),
        default="segment",
        help="fsync policy while seeding (default segment)",
    )

    subparsers.add_parser("solvers", help="list the registered solvers")
    subparsers.add_parser("targets", help="list the built-in target colours")
    subparsers.add_parser("workcell", help="print the default workcell description (YAML)")
    return parser


def _parse_target(text: str):
    if "," in text:
        parts = [float(v) for v in text.split(",")]
        if len(parts) != 3:
            raise SystemExit(f"target must be a name or 'R,G,B', got {text!r}")
        return tuple(parts)
    return text


def _run_transport_experiment(config: ExperimentConfig, transport: str, speedup: float):
    """Run one experiment on a transport-backed engine; returns (result, engine)."""
    from repro.wei.concurrent import ConcurrentWorkflowEngine
    from repro.wei.drivers import DriverRegistry

    workcell = build_color_picker_workcell(seed=config.seed)
    if transport == "wire":
        registry = DriverRegistry.wire(workcell, speedup=speedup)
    else:
        registry = DriverRegistry.paced(workcell, speedup=speedup)
    engine = ConcurrentWorkflowEngine(workcell, drivers=registry)
    app = ColorPickerApp(config, workcell=workcell)
    handle = engine.submit_program(app.program(), name="run")
    try:
        engine.run_until_complete()
    finally:
        registry.close()
    return handle.result, engine


def _command_run(args) -> int:
    config = ExperimentConfig(
        target=_parse_target(args.target),
        n_samples=args.samples,
        batch_size=args.batch_size,
        solver=args.solver,
        measurement=args.measurement,
        seed=args.seed,
    )
    engine = None
    if args.transport in ("paced", "wire"):
        result, engine = _run_transport_experiment(config, args.transport, args.speedup)
    else:
        result = ColorPickerApp(config).run()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    best = result.best_sample
    print(f"Samples: {result.n_samples}   best score: {result.best_score:.2f}")
    if best is not None:
        rgb = ", ".join(f"{v:.0f}" for v in best.measured_rgb)
        print(f"Best sample: well {best.well}, measured RGB ({rgb})")
    print()
    print(render_table1(result.metrics))
    if engine is not None:
        stats = engine.transport_stats()
        latencies = engine.completion_latencies()
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        print(
            f"\nTransport {engine.transport_name} (speedup {args.speedup:g}x): "
            f"{stats.delivered} completions delivered out-of-band, "
            f"mean delivery latency {mean_latency * 1000:.1f} ms"
        )
        recovery = engine.transport_retry_stats()
        if any(recovery.values()):
            print(
                f"Wire recovery: {recovery['retries']} retries, "
                f"{recovery['resyncs']} resyncs, {recovery['crc_errors']} CRC errors"
            )
    return 0


def _command_sweep(args) -> int:
    try:
        batch_sizes = tuple(int(v) for v in args.batch_sizes.split(",") if v.strip())
    except ValueError:
        raise SystemExit(f"--batch-sizes must be comma-separated integers, got {args.batch_sizes!r}")
    sweep = run_batch_sweep(
        batch_sizes=batch_sizes,
        n_samples=args.samples,
        solver=args.solver,
        seed=args.seed,
        n_ot2=args.n_ot2,
        assignment=args.assignment,
    )
    print(render_figure4(sweep))
    if args.n_ot2 > 1:
        print(f"\nConcurrent sweep on {args.n_ot2} OT-2 lanes: makespan {sweep.makespan_s / 3600:.2f} h")
    return 0


def _command_campaign(args) -> int:
    if args.portal_backend == "durable":
        if not args.portal_dir:
            raise SystemExit("--portal-backend durable requires --portal-dir")
        from repro.publish.store import DurableDataPortal

        portal = DurableDataPortal(args.portal_dir)
    else:
        portal = DataPortal(directory=args.portal_dir) if args.portal_dir else DataPortal()
    chaos = None
    if args.chaos_seed is not None:
        from repro.wei.chaos import ChaosSchedule

        chaos = ChaosSchedule(args.chaos_seed)
    campaign = run_campaign(
        n_runs=args.runs,
        samples_per_run=args.samples_per_run,
        seed=args.seed,
        portal=portal,
        experiment_id="cli-campaign",
        n_ot2=args.n_ot2,
        n_workcells=args.n_workcells,
        assignment=args.assignment,
        module_speeds=_resolve_module_speeds(args.module_speeds, args.n_workcells),
        transport=args.transport,
        speedup=args.speedup,
        chaos=chaos,
    )
    print(render_figure3(campaign))
    if campaign.transport_stats:
        stats = campaign.transport_stats
        print(
            f"\n{args.transport.capitalize()} transport (speedup {args.speedup:g}x): "
            f"{stats['delivered']} completions delivered out-of-band in "
            f"{stats['wall_elapsed_s']:.2f}s real time, mean delivery latency "
            f"{stats['mean_delivery_latency_s'] * 1000:.1f} ms"
        )
        if args.transport == "wire":
            print(
                f"Wire recovery: {stats['retries']} retries, {stats['resyncs']} resyncs, "
                f"{stats['crc_errors']} CRC errors, "
                f"{stats['completions_retransmitted']} completions retransmitted"
                + (f" (chaos seed {args.chaos_seed})" if chaos is not None else "")
            )
    if args.n_workcells > 1:
        shards = ", ".join(f"{makespan / 3600:.2f} h" for makespan in campaign.workcell_makespans)
        print(
            f"\nCampaign sharded across {args.n_workcells} workcells "
            f"({args.n_ot2} OT-2 lane(s) each, {args.assignment} assignment): "
            f"makespan {campaign.makespan_s / 3600:.2f} h (shards: {shards})"
        )
    elif args.n_ot2 > 1:
        print(
            f"\nConcurrent campaign on {args.n_ot2} OT-2 lanes: "
            f"makespan {campaign.makespan_s / 3600:.2f} h"
        )
    if args.portal_backend == "durable":
        portal.close()
        print(
            f"\nPortal records appended to the durable store at {args.portal_dir} "
            f"(inspect with: python -m repro portal stats {args.portal_dir})"
        )
    elif args.portal_dir:
        print(f"\nPortal records written to {args.portal_dir}")
    return 0


def _command_fleet_status(args) -> int:
    from repro.wei.concurrent import ConcurrentWorkflowEngine
    from repro.wei.coordinator import MultiWorkcellCoordinator, shard_seed

    module_speeds = _resolve_module_speeds(args.module_speeds, args.n_workcells)
    coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(
        args.n_workcells, seed=args.seed, n_ot2=args.n_ot2, module_speeds=module_speeds
    )
    # Workcells attached mid-campaign reuse the single shared profile when
    # one was given; per-shard profile lists only cover the initial fleet.
    attach_profile = module_speeds if isinstance(module_speeds, ModuleSpeedProfile) else None
    portal = DataPortal()
    completed = 0

    def snapshot_line(note: str = "") -> str:
        status = coordinator.status()
        states = " ".join(
            f"{shard.workcell}:{shard.state}/{shard.in_flight} in-flight"
            for shard in status.shards
        )
        suffix = f"  <- {note}" if note else ""
        return (
            f"[t={status.time:8.0f}s] runs done {completed:3d} | "
            f"queue {status.queue_depth:2d} | {states}{suffix}"
        )

    def on_run_complete(completion) -> None:
        nonlocal completed
        completed += 1
        note = ""
        if args.attach_after is not None and completed == args.attach_after:
            shard_id = coordinator.n_workcells
            durations = None
            if attach_profile is not None and not attach_profile.is_identity:
                from repro.sim.durations import paper_calibrated_durations

                durations = attach_profile.apply(paper_calibrated_durations())
            workcell = build_color_picker_workcell(
                name=f"workcell-{shard_id}",
                seed=shard_seed(args.seed, shard_id),
                n_ot2=args.n_ot2,
                durations=durations,
            )
            engine = ConcurrentWorkflowEngine(workcell)
            coordinator.attach_workcell(
                engine, lanes=workcell.ot2_barty_pairs()[: args.n_ot2]
            )
            note = f"attached {workcell.name}"
        if args.drain_after is not None and completed == args.drain_after:
            active = [s for s in coordinator.status().shards if s.state == "active"]
            if len(active) > 1:
                coordinator.drain_workcell(active[0].shard_id)
                note = (note + "; " if note else "") + f"draining {active[0].workcell}"
        print(snapshot_line(note))

    campaign = run_campaign(
        n_runs=args.runs,
        samples_per_run=args.samples_per_run,
        seed=args.seed,
        portal=portal,
        experiment_id="fleet-status",
        n_ot2=args.n_ot2,
        assignment=args.assignment,
        coordinator=coordinator,
        on_run_complete=on_run_complete,
    )

    status = coordinator.status()
    if args.json:
        print(json.dumps({"status": status.to_dict(), "events": coordinator.fleet_events}, indent=2))
        return 0
    print()

    def as_ms(value: Optional[float]) -> str:
        # "-" where no latency was observed: sim shards have no completion
        # bridge, and an idle shard's queue-wait histogram is empty.
        return "-" if value is None else f"{value * 1e3:.1f} ms"

    rows = [
        (
            shard.shard_id,
            shard.workcell,
            shard.state,
            shard.transport,
            shard.completed,
            shard.retries,
            shard.resyncs,
            as_ms(shard.delivery_p50_s),
            as_ms(shard.delivery_p95_s),
            as_ms(shard.queue_wait_p50_s),
            as_ms(shard.queue_wait_p95_s),
            as_ms(shard.queue_wait_mean_s),
            "-" if shard.predictor_drift is None else f"{shard.predictor_drift:.2f}x",
            f"{shard.utilisation:.2f}",
            f"{shard.makespan / 3600:.2f} h",
        )
        for shard in status.shards
    ]
    # Every latency column -- mean included -- is computed over the
    # histograms' bounded recent window, so they describe one time scope.
    print(
        format_table(
            [
                "shard",
                "workcell",
                "state",
                "transport",
                "runs",
                "retries",
                "resyncs",
                "deliver p50",
                "deliver p95",
                "queue p50",
                "queue p95",
                "queue mean",
                "drift",
                "utilisation",
                "makespan",
            ],
            rows,
        )
    )
    for event in coordinator.fleet_events:
        print(f"fleet event: {event['event']} {event['workcell']} at t={event['start_time']:.0f}s")
    print(
        f"\nCampaign: {campaign.n_runs} runs streamed to the portal "
        f"({portal.n_runs} records), fleet makespan {campaign.makespan_s / 3600:.2f} h"
    )
    return 0


def _command_soak(args) -> int:
    from repro.wei.chaos.soak import DEFAULT_SEED_MATRIX, run_soak

    if args.seeds is None:
        seeds = list(DEFAULT_SEED_MATRIX)
    else:
        try:
            seeds = [int(value) for value in args.seeds.split(",") if value.strip()]
        except ValueError:
            raise SystemExit(f"--seeds must be comma-separated integers, got {args.seeds!r}")
        if not seeds:
            raise SystemExit("--seeds must name at least one chaos seed")

    def progress(case) -> None:
        if not args.json:
            verdict = "ok" if case.ok else "INVARIANT BROKEN"
            stats = case.transport_stats
            print(
                f"chaos seed {case.chaos_seed:>6}: {verdict:16s} "
                f"retries {stats.get('retries', 0):3d} | resyncs {stats.get('resyncs', 0):2d} | "
                f"crc errors {stats.get('crc_errors', 0):3d} | wall {case.wall_s:5.2f}s"
            )

    report = run_soak(
        n_runs=args.runs,
        samples_per_run=args.samples_per_run,
        batch_size=args.batch_size,
        n_workcells=args.n_workcells,
        n_ot2=args.n_ot2,
        campaign_seed=args.campaign_seed,
        seeds=seeds,
        speedup=args.speedup,
        on_case=progress,
        flight_dir=args.log_dir,
    )
    if args.log_dir:
        written = report.write_logs(args.log_dir)
        if not args.json:
            print(f"\nFrame/event logs written to {args.log_dir} ({len(written)} files)")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print()
    if report.ok:
        print(
            f"Soak invariant held for all {len(report.cases)} seed(s): chaos changed "
            "wall time and retry counts, never scores, run counts or portal contents."
        )
        return 0
    for case in report.failures:
        print(f"chaos seed {case.chaos_seed} broke the invariant:")
        for mismatch in case.mismatches:
            print(f"  - {mismatch}")
    print("\nReplay a failure exactly with: python -m repro soak --seeds <seed>")
    return 1


def _command_lint(args) -> int:
    from pathlib import Path

    from repro.analysis.lint import (
        PLACEHOLDER_JUSTIFICATION,
        RULES,
        Baseline,
        render_json,
        render_text,
        run_lint,
    )

    if args.rules:
        print(format_table(["rule", "invariant"], sorted(RULES.items())))
        return 0
    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            raise SystemExit(f"lint path does not exist: {path}")
    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot load baseline {args.baseline}: {exc}")
    active, suppressed, checked = run_lint(paths, baseline)
    if args.write_baseline is not None:
        new_baseline = Baseline.from_violations(active, PLACEHOLDER_JUSTIFICATION)
        Path(args.write_baseline).write_text(new_baseline.to_json(), encoding="utf-8")
        print(f"wrote {len(active)} suppression(s) to {args.write_baseline}")
        if active:
            print(
                "edit each justification before use: --baseline refuses the "
                f"placeholder ({PLACEHOLDER_JUSTIFICATION!r})"
            )
        return 0
    render = render_json if args.format == "json" else render_text
    print(render(active, suppressed, checked))
    return 1 if active else 0


def _command_bench(args) -> int:
    from pathlib import Path

    from repro.bench import (
        DEFAULT_THRESHOLD,
        area_payload,
        compare_results,
        run_bench,
        write_results,
    )

    areas = None
    if args.areas is not None:
        areas = [name.strip() for name in args.areas.split(",") if name.strip()]
        if not areas:
            raise SystemExit("--areas must name at least one area")

    def progress(area: str) -> None:
        if not args.json:
            print(f"bench: running {area} ...", flush=True)

    results = run_bench(areas, repeats=args.repeat, scale=args.scale, progress=progress)

    if args.json:
        print(
            json.dumps(
                [area_payload(result, repeats=args.repeat) for result in results],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for result in results:
            print(f"\n[{result.area}]")
            rows = [
                (name, f"{metric['value']:,.1f}", metric["unit"])
                for name, metric in result.metrics.items()
            ]
            print(format_table(["metric", "value", "unit"], rows))
            for hot_path in result.hot_paths:
                print(
                    f"hot path {hot_path['name']}: baseline {hot_path['baseline_s'] * 1e3:.1f} ms "
                    f"-> optimised {hot_path['optimised_s'] * 1e3:.1f} ms "
                    f"({hot_path['speedup']:.2f}x)"
                )

    if args.write:
        written = write_results(results, repeats=args.repeat, directory=Path(args.out))
        if not args.json:
            print(f"\nwrote {len(written)} bench file(s) to {args.out}")

    if args.compare is None:
        return 0
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    comparison = compare_results(results, baseline_dir=Path(args.compare))
    deltas = comparison["deltas"]
    if not args.json:
        print(f"\nCompare vs {args.compare} (threshold {threshold:.0%}):")
        rows = [
            (
                delta.area,
                delta.metric,
                f"{delta.baseline:,.1f}",
                f"{delta.current:,.1f}",
                f"{delta.change:+.1%}",
                "REGRESSION" if delta.is_regression(threshold) else "ok",
            )
            for delta in deltas
        ]
        if rows:
            print(format_table(["area", "metric", "baseline", "current", "change", "verdict"], rows))
        for area, reason in comparison["skipped"].items():
            print(f"skipped {area}: {reason}")
    regressions = [delta for delta in deltas if delta.is_regression(threshold)]
    if regressions and not args.json:
        print(f"\n{len(regressions)} metric(s) regressed beyond the {threshold:.0%} threshold")
    return 1 if regressions else 0


def _command_portal(args) -> int:
    from pathlib import Path

    from repro.publish.records import RunRecord, SampleRecord
    from repro.publish.store import DurableDataPortal
    from repro.utils.rng import ensure_rng

    store_dir = Path(args.store)
    if args.portal_command != "seed" and not store_dir.exists():
        raise SystemExit(f"portal store does not exist: {store_dir}")

    if args.portal_command == "stats":
        with DurableDataPortal(store_dir) as portal:
            print(json.dumps(portal.stats(), indent=2, sort_keys=True))
        return 0

    if args.portal_command == "compact":
        with DurableDataPortal(store_dir) as portal:
            manifest = portal.compact()
            manifest["stats"] = portal.stats()
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0

    if args.portal_command == "snapshot":
        with DurableDataPortal(store_dir) as portal:
            manifest = portal.snapshot(Path(args.target))
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0

    if args.portal_command == "export":
        with DurableDataPortal(store_dir) as portal:
            cursor = args.cursor
            while True:
                page = portal.search_page(
                    experiment_id=args.experiment_id,
                    solver=args.solver,
                    max_best_score=args.max_best_score,
                    limit=args.limit,
                    cursor=cursor,
                )
                print(json.dumps(page.to_dict(), sort_keys=True))
                cursor = page.next_cursor
                if not args.all or cursor is None:
                    break
        return 0

    # seed: synthetic records for scale testing.
    rng = ensure_rng(args.seed)
    with DurableDataPortal(store_dir, fsync_policy=args.fsync) as portal:
        start = portal.n_runs
        for number in range(args.records):
            experiment = int(rng.integers(args.experiments))
            scores = rng.uniform(0.0, 120.0, size=args.samples)
            volumes = rng.uniform(0.0, 40.0, size=(args.samples, 3))
            record = RunRecord(
                experiment_id=f"seed-exp-{experiment:05d}",
                run_id=f"seed-run-{start + number:08d}",
                run_index=start + number,
                target_rgb=[float(v) for v in rng.uniform(0.0, 255.0, size=3)],
                solver="synthetic",
                samples=[
                    SampleRecord(
                        sample_index=index,
                        well=f"A{index + 1}",
                        plate_barcode=f"seed-plate-{number:08d}",
                        volumes_ul={
                            "red": float(volumes[index][0]),
                            "green": float(volumes[index][1]),
                            "blue": float(volumes[index][2]),
                        },
                        measured_rgb=[float(v) for v in rng.uniform(0.0, 255.0, size=3)],
                        score=float(scores[index]),
                    )
                    for index in range(args.samples)
                ],
                metadata={"source": "portal-seed", "seed": args.seed},
            )
            portal.ingest(record)
        stats = portal.stats()
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _command_metrics(args) -> int:
    from repro.obs import metrics as obs_metrics

    if args.exercise:
        # A tiny pinned paced campaign touches every layer (bridge, paced
        # transport, coordinator, portal), populating the registry.
        run_campaign(
            n_runs=2,
            samples_per_run=2,
            seed=816,
            experiment_id="metrics-exercise",
            transport="paced",
            speedup=500_000.0,
        )
    registry = obs_metrics.get_registry()
    if args.format == "prom":
        print(registry.render_prometheus(), end="")
    else:
        print(json.dumps(registry.to_json(), indent=2, sort_keys=True))
    return 0


def _command_trace(args) -> int:
    from pathlib import Path

    from repro.obs import load_trace, render_summary, summarise_trace

    path = Path(args.file)
    if not path.exists():
        raise SystemExit(f"trace file does not exist: {path}")
    summary = summarise_trace(load_trace(path))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(render_summary(summary))
    return 0


def _command_solvers(_args) -> int:
    rows = [(name, SOLVER_REGISTRY[name].__doc__.strip().splitlines()[0]) for name in sorted(SOLVER_REGISTRY)]
    print(format_table(["solver", "description"], rows))
    return 0


def _command_targets(_args) -> int:
    rows = [
        (target.name, f"({target.rgb[0]:.0f}, {target.rgb[1]:.0f}, {target.rgb[2]:.0f})", target.description)
        for target in TARGET_COLORS.values()
    ]
    print(format_table(["target", "RGB", "description"], rows))
    return 0


def _command_workcell(_args) -> int:
    workcell = build_color_picker_workcell(seed=0)
    print(workcell.to_yaml())
    return 0


_COMMANDS = {
    "run": _command_run,
    "sweep": _command_sweep,
    "campaign": _command_campaign,
    "fleet-status": _command_fleet_status,
    "soak": _command_soak,
    "lint": _command_lint,
    "bench": _command_bench,
    "metrics": _command_metrics,
    "trace": _command_trace,
    "portal": _command_portal,
    "solvers": _command_solvers,
    "targets": _command_targets,
    "workcell": _command_workcell,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        trace_path = getattr(args, "trace", None)
        if trace_path:
            from pathlib import Path

            from repro import obs

            with obs.observed() as session:
                code = _COMMANDS[args.command](args)
            written = session.write_trace(Path(trace_path))
            # stderr keeps --json stdout machine-readable.
            print(
                f"trace: {len(session.spans)} span(s) written to {written} "
                "(load in Perfetto, or: python -m repro trace "
                f"{written})",
                file=sys.stderr,
            )
            return code
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
