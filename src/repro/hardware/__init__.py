"""Simulated workcell hardware.

The paper's application drives five physical devices in Argonne's Rapid
Prototyping Lab workcell (Section 2.2):

* **sciclops** -- Hudson SciClops microplate crane (plate storage towers),
* **pf400** -- the rail-mounted manipulator arm that shuttles plates,
* **ot2** -- an Opentrons OT-2 pipetting robot with four dye reservoirs,
* **barty** -- an RPL-built peristaltic-pump liquid replenisher,
* **camera** -- a ring-lit webcam with a fixed plate mount.

This package provides simulated drivers for all five, plus the labware they
act on (96-well microplates, reservoirs, tip racks, storage towers) and a
plate-location registry standing in for the physical workcell deck.  Devices
share a :class:`repro.sim.SimClock`, sample their action durations from a
:class:`repro.sim.DurationTable`, consult a :class:`repro.sim.FaultInjector`
before each command and record every executed command, which is what the
paper's CCWH / timing metrics are computed from.
"""

from repro.hardware.base import ActionRecord, DeviceError, SimulatedDevice
from repro.hardware.deck import Workdeck, LocationError
from repro.hardware.labware import (
    LabwareError,
    Plate,
    PlateStack,
    Reservoir,
    TipRack,
    Well,
    well_name,
    well_names,
)
from repro.hardware.barty import BartyDevice
from repro.hardware.camera import CameraDevice, CameraImage
from repro.hardware.ot2 import Ot2Device, PipettingProtocol, ProtocolStep
from repro.hardware.pf400 import Pf400Device
from repro.hardware.sciclops import SciclopsDevice

__all__ = [
    "ActionRecord",
    "DeviceError",
    "SimulatedDevice",
    "Workdeck",
    "LocationError",
    "LabwareError",
    "Well",
    "Plate",
    "PlateStack",
    "Reservoir",
    "TipRack",
    "well_name",
    "well_names",
    "SciclopsDevice",
    "Pf400Device",
    "Ot2Device",
    "PipettingProtocol",
    "ProtocolStep",
    "BartyDevice",
    "CameraDevice",
    "CameraImage",
]
