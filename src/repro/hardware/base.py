"""Base class for simulated devices.

Each device is a "module" in the WEI sense: it exposes a small set of actions
(the interface methods of the paper's Section 2.2).  The base class provides
the machinery shared by all devices:

* sampling how long an action takes from the :class:`repro.sim.DurationTable`,
* advancing the shared simulation clock by that duration,
* consulting the :class:`repro.sim.FaultInjector` so commands can fail,
* recording an :class:`ActionRecord` for every command -- the raw material of
  the paper's CCWH / synthesis-time / transfer-time metrics.

Every action follows a **two-phase lifecycle**: ``submit_<action>`` validates
the request, consults the fault injector, samples the duration (advancing the
device clock) and returns an :class:`ActionHandle`; calling
:meth:`ActionHandle.complete` then applies the action's state mutations (deck
moves, reservoir draws, well fills) and yields the return value.  The plain
action methods (``transfer``, ``run_protocol``, ...) are submit-then-complete
in one call, so sequential callers are unaffected, while the concurrent
engine defers ``complete()`` to the action's *end* event -- on the real
workcell a plate only appears at its destination when the arm gets there, not
when the command is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.clock import Clock, SimClock
from repro.sim.durations import DurationTable, paper_calibrated_durations
from repro.sim.faults import FaultInjector
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["DeviceError", "ActionRecord", "ActionHandle", "SimulatedDevice"]


class DeviceError(RuntimeError):
    """Raised when a device is asked to do something physically impossible."""


@dataclass
class ActionRecord:
    """One executed device command.

    ``robotic`` distinguishes robotic commands (counted by the CCWH metric)
    from computational/publication steps.
    """

    module: str
    action: str
    start_time: float
    end_time: float
    success: bool = True
    robotic: bool = True
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds between command start and completion."""
        return self.end_time - self.start_time

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (stored in run logs and the portal)."""
        return {
            "module": self.module,
            "action": self.action,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "success": self.success,
            "robotic": self.robotic,
            "details": dict(self.details),
        }


@dataclass
class ActionHandle:
    """Phase-one result of a submitted device action.

    The handle is created once the command has been accepted: its duration is
    sampled, its :class:`ActionRecord` logged and the device clock advanced to
    ``end_time``.  The action's *state mutations* have not happened yet; they
    are applied by :meth:`complete`, which the sequential path calls
    immediately and the concurrent engine calls at the action's end event.
    """

    module: str
    action: str
    start_time: float
    end_time: float
    record: Optional[ActionRecord] = None
    completed: bool = False
    return_value: Any = None
    #: Applies the action's state mutations and returns the action's value.
    finish: Optional[Callable[[], Any]] = None

    @property
    def duration(self) -> float:
        """Seconds between command acceptance and scheduled completion."""
        return self.end_time - self.start_time

    def complete(self) -> Any:
        """Apply the action's state mutations (idempotent) and return its value."""
        if self.completed:
            return self.return_value
        if self.finish is not None:
            self.return_value = self.finish()
        self.completed = True
        return self.return_value


class SimulatedDevice:
    """Common behaviour of all simulated workcell devices.

    Subclasses implement each action twice over, sharing one code path: a
    ``submit_<action>`` method that validates, calls :meth:`_execute` to
    account for time/faults/logging and returns an :class:`ActionHandle`
    whose ``finish`` closure mutates the labware state, plus the plain
    ``<action>`` method that simply submits and completes in one step.
    """

    #: Module type name used for duration lookup and run records.
    module_type: str = "device"
    #: Whether this module's commands count as robotic commands for CCWH.
    robotic: bool = True

    def __init__(
        self,
        name: Optional[str] = None,
        *,
        clock: Optional[Clock] = None,
        durations: Optional[DurationTable] = None,
        faults: Optional[FaultInjector] = None,
        rng=None,
    ):
        self.name = name if name is not None else self.module_type
        self.clock = clock if clock is not None else SimClock()
        self.durations = durations if durations is not None else paper_calibrated_durations()
        self.faults = faults if faults is not None else FaultInjector()
        if isinstance(rng, RandomSource):
            self.rng = rng.child(self.name).generator
        else:
            self.rng = ensure_rng(rng)
        self.action_log: List[ActionRecord] = []

    # ------------------------------------------------------------------
    # Command execution plumbing
    # ------------------------------------------------------------------
    def _execute(
        self,
        action: str,
        *,
        units: float = 1.0,
        robotic: Optional[bool] = None,
        **details: Any,
    ) -> ActionRecord:
        """Account for one command: fault check, duration, clock advance, logging.

        Raises :class:`repro.sim.CommandFailure` when a fault is injected; the
        failed command is still logged (with ``success=False``) because the
        paper's CCWH metric counts only *successful* commands.
        """
        start = self.clock.now()
        is_robotic = self.robotic if robotic is None else robotic
        try:
            self.faults.check(self.module_type, action)
        except Exception:
            # The command was received but failed during processing; charge a
            # nominal amount of time for the failed attempt.
            failed_duration = self.durations.sample(self.module_type, action, rng=self.rng, units=units)
            end = self.clock.advance(failed_duration * 0.5)
            self.action_log.append(
                ActionRecord(
                    module=self.name,
                    action=action,
                    start_time=start,
                    end_time=end,
                    success=False,
                    robotic=is_robotic,
                    details=dict(details),
                )
            )
            raise
        duration = self.durations.sample(self.module_type, action, rng=self.rng, units=units)
        end = self.clock.advance(duration)
        record = ActionRecord(
            module=self.name,
            action=action,
            start_time=start,
            end_time=end,
            success=True,
            robotic=is_robotic,
            details=dict(details),
        )
        self.action_log.append(record)
        return record

    # ------------------------------------------------------------------
    # Two-phase action lifecycle
    # ------------------------------------------------------------------
    def has_submit(self, action: str) -> bool:
        """True when ``action`` has a two-phase ``submit_<action>`` implementation."""
        return callable(getattr(self, f"submit_{action}", None))

    def submit(self, action: str, **kwargs: Any) -> ActionHandle:
        """Submit ``action`` (phase one) and return its :class:`ActionHandle`.

        Raises :class:`DeviceError` when the action has no two-phase
        implementation; callers that tolerate synchronous fallbacks (e.g.
        custom module actions) should check :meth:`has_submit` first.
        """
        impl = getattr(self, f"submit_{action}", None)
        if not callable(impl):
            raise DeviceError(
                f"{self.name}: action {action!r} has no submit_{action} implementation"
            )
        return impl(**kwargs)

    def _submitted(
        self,
        record: ActionRecord,
        finish: Optional[Callable[[], Any]] = None,
    ) -> ActionHandle:
        """Build the handle for a just-executed command.

        When ``finish`` is omitted the action has no deferred state mutation
        and completing it returns the :class:`ActionRecord` itself (the
        conventional return value of bookkeeping-only actions).
        """
        return ActionHandle(
            module=self.name,
            action=record.action,
            start_time=record.start_time,
            end_time=record.end_time,
            record=record,
            finish=finish if finish is not None else (lambda: record),
        )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def commands_executed(self) -> int:
        """Number of successfully completed commands on this device."""
        return sum(1 for record in self.action_log if record.success)

    @property
    def busy_time(self) -> float:
        """Total time this device spent executing commands (seconds)."""
        return sum(record.duration for record in self.action_log)

    def reset_log(self) -> None:
        """Clear the action log (used between experiments sharing devices)."""
        self.action_log.clear()

    def describe(self) -> Dict[str, Any]:
        """Static description of the module for workcell records."""
        return {"name": self.name, "type": self.module_type, "robotic": self.robotic}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
