"""Simulated plate camera.

The camera module is a ring-lit webcam with a fixed plate mount (paper
Section 2.2).  The simulated camera renders a synthetic frame of whatever
plate is on its stage using :mod:`repro.vision.render`; the application then
runs the same image-processing pipeline it would run on a real photo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.color.mixing import MixingModel, SubtractiveMixingModel
from repro.hardware.base import ActionHandle, DeviceError, SimulatedDevice
from repro.hardware.deck import Workdeck
from repro.vision.render import PlateImageConfig, render_plate_image

__all__ = ["CameraImage", "CameraDevice"]


@dataclass
class CameraImage:
    """One captured frame plus its provenance."""

    pixels: np.ndarray
    plate_barcode: str
    timestamp: float
    truth: Optional[Dict] = None

    @property
    def shape(self) -> Tuple[int, ...]:
        """Pixel-array shape ``(H, W, 3)``."""
        return self.pixels.shape


class CameraDevice(SimulatedDevice):
    """Webcam with a plate mount.

    Actions
    -------
    ``take_picture``
        Render a frame of the plate currently on the camera stage.
    """

    module_type = "camera"
    #: Imaging is not a robotic manipulation; it does not count towards CCWH.
    robotic = False

    def __init__(
        self,
        deck: Workdeck,
        *,
        stage_location: str = "camera.stage",
        chemistry: Optional[MixingModel] = None,
        image_config: Optional[PlateImageConfig] = None,
        keep_truth: bool = True,
        name: Optional[str] = None,
        **kwargs,
    ):
        super().__init__(name=name, **kwargs)
        self.deck = deck
        self.stage_location = stage_location
        self.chemistry = chemistry if chemistry is not None else SubtractiveMixingModel()
        self.image_config = image_config if image_config is not None else PlateImageConfig()
        self.keep_truth = keep_truth
        self.frames_captured = 0
        if not deck.has_location(stage_location):
            deck.add_location(stage_location)

    def submit_take_picture(self) -> ActionHandle:
        """Submit a capture; the frame is rendered (exposed) at completion.

        Raises :class:`DeviceError` when no plate is present -- photographing
        an empty mount is an application logic error worth failing loudly on.
        """
        plate = self.deck.plate_at(self.stage_location)
        if plate is None:
            raise DeviceError(f"{self.name}: no plate on stage location {self.stage_location!r}")
        record = self._execute("take_picture", plate=plate.barcode)

        def finish() -> CameraImage:
            rendered = render_plate_image(
                plate,
                self.chemistry,
                config=self.image_config,
                rng=self.rng,
                return_truth=self.keep_truth,
            )
            if self.keep_truth:
                pixels, truth = rendered
            else:
                pixels, truth = rendered, None
            self.frames_captured += 1
            return CameraImage(
                pixels=pixels,
                plate_barcode=plate.barcode,
                timestamp=record.end_time,
                truth=truth,
            )

        return self._submitted(record, finish)

    def take_picture(self) -> CameraImage:
        """Capture a frame of the plate on the stage."""
        return self.submit_take_picture().complete()
