"""The workcell deck: named plate locations.

The physical workcell has a handful of places a microplate can sit: the
sciclops exchange position, the camera's plate mount, each OT-2's deck, and
the trash.  :class:`Workdeck` is the registry of which plate (if any) occupies
each location; the pf400 consults and mutates it when transferring plates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.hardware.labware import Plate

__all__ = ["LocationError", "Workdeck", "DEFAULT_LOCATIONS"]

#: Locations present in the paper's five-module colour-picker workcell.
DEFAULT_LOCATIONS = (
    "sciclops.exchange",
    "camera.stage",
    "ot2.deck",
    "trash",
)


class LocationError(RuntimeError):
    """Raised for impossible plate placements (unknown/occupied/empty locations)."""


class Workdeck:
    """Tracks which plate occupies each named location.

    The trash location is special: it accepts any number of plates and keeps
    them for post-hoc inspection (the paper's runs keep plate images for
    quality control).
    """

    def __init__(self, locations: Iterable[str] = DEFAULT_LOCATIONS, trash_location: str = "trash"):
        self.trash_location = trash_location
        self._slots: Dict[str, Optional[Plate]] = {name: None for name in locations}
        if trash_location not in self._slots:
            self._slots[trash_location] = None
        self._trashed: List[Plate] = []

    @property
    def locations(self) -> List[str]:
        """All known location names."""
        return list(self._slots)

    @property
    def trashed_plates(self) -> List[Plate]:
        """Plates that have been disposed of, in disposal order."""
        return list(self._trashed)

    def add_location(self, name: str) -> None:
        """Register an additional location (e.g. a second OT-2 deck)."""
        if name in self._slots:
            raise LocationError(f"location {name!r} already exists")
        self._slots[name] = None

    def has_location(self, name: str) -> bool:
        """True if ``name`` is a known location."""
        return name in self._slots

    def _check(self, name: str) -> None:
        if name not in self._slots:
            raise LocationError(f"unknown location {name!r}; known: {sorted(self._slots)}")

    def plate_at(self, name: str) -> Optional[Plate]:
        """Return the plate at ``name`` (None if empty)."""
        self._check(name)
        return self._slots[name]

    def is_occupied(self, name: str) -> bool:
        """True if a plate is currently at ``name``."""
        return self.plate_at(name) is not None

    def place(self, plate: Plate, location: str) -> None:
        """Put ``plate`` at ``location`` (must be empty unless it is the trash)."""
        self._check(location)
        if location == self.trash_location:
            self._trashed.append(plate)
            return
        if self._slots[location] is not None:
            raise LocationError(
                f"location {location!r} is already occupied by plate "
                f"{self._slots[location].barcode}"
            )
        self._slots[location] = plate

    def remove(self, location: str) -> Plate:
        """Take the plate away from ``location`` and return it."""
        self._check(location)
        if location == self.trash_location:
            raise LocationError("plates cannot be retrieved from the trash")
        plate = self._slots[location]
        if plate is None:
            raise LocationError(f"no plate at location {location!r}")
        self._slots[location] = None
        return plate

    def move(self, source: str, target: str) -> Plate:
        """Move the plate at ``source`` to ``target`` and return it."""
        plate = self.remove(source)
        try:
            self.place(plate, target)
        except LocationError:
            # Put the plate back so the deck stays consistent after a failure.
            self._slots[source] = plate
            raise
        return plate

    def find_plate(self, barcode: str) -> Optional[str]:
        """Return the location of the plate with ``barcode`` (None if absent)."""
        for name, plate in self._slots.items():
            if plate is not None and plate.barcode == barcode:
                return name
        return None
