"""Simulated Precise Automation PF400 manipulator arm.

The pf400 is the workcell's central transport: a rail-mounted arm that picks
microplates up from one location and places them at another (paper
Section 2.2).  In the colour-picker application it shuttles the active plate
between the camera stage and the OT-2 deck twice per iteration.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.base import ActionHandle, ActionRecord, DeviceError, SimulatedDevice
from repro.hardware.deck import LocationError, Workdeck
from repro.hardware.labware import Plate

__all__ = ["Pf400Device"]


class Pf400Device(SimulatedDevice):
    """Rail-mounted plate manipulator.

    Actions
    -------
    ``transfer``
        Move the plate at ``source`` to ``target``.
    ``move_home``
        Return the arm to its parked position (used after error recovery).
    """

    module_type = "pf400"

    def __init__(self, deck: Workdeck, *, name: Optional[str] = None, **kwargs):
        super().__init__(name=name, **kwargs)
        self.deck = deck
        self.transfers_completed = 0

    def submit_transfer(self, source: str, target: str) -> ActionHandle:
        """Submit a plate move; the deck mutates when the handle completes.

        The deck is validated *before* time is charged: asking the arm to move
        a plate that is not there is a programming error, not a robot fault.
        """
        if not self.deck.has_location(source):
            raise LocationError(f"unknown source location {source!r}")
        if not self.deck.has_location(target):
            raise LocationError(f"unknown target location {target!r}")
        if not self.deck.is_occupied(source):
            raise DeviceError(f"{self.name}: no plate at {source!r} to transfer")
        if target != self.deck.trash_location and self.deck.is_occupied(target):
            raise DeviceError(f"{self.name}: target location {target!r} is occupied")
        record = self._execute("transfer", source=source, target=target)

        def finish() -> Plate:
            plate = self.deck.move(source, target)
            self.transfers_completed += 1
            return plate

        return self._submitted(record, finish)

    def transfer(self, source: str, target: str) -> Plate:
        """Move the plate at ``source`` to ``target`` and return it."""
        return self.submit_transfer(source, target).complete()

    def submit_move_home(self) -> ActionHandle:
        """Submit a park command (no deck change at completion)."""
        return self._submitted(self._execute("move_home"))

    def move_home(self) -> ActionRecord:
        """Park the arm (no deck change)."""
        return self.submit_move_home().complete()
