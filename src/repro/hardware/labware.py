"""Labware: microplates, wells, reservoirs, tip racks and storage towers.

The colour-picker application works with standard SBS 96-well microplates
(8 rows A-H by 12 columns).  Labware objects are pure state containers -- the
simulated devices mutate them and the camera reads them; they never touch the
clock or the random streams themselves.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "LabwareError",
    "well_name",
    "well_names",
    "parse_well_name",
    "Well",
    "Plate",
    "Reservoir",
    "TipRack",
    "PlateStack",
]

_ROW_LETTERS = "ABCDEFGHIJKLMNOP"


class LabwareError(RuntimeError):
    """Raised for physically impossible labware operations (overfilling, etc.)."""


def well_name(row: int, col: int) -> str:
    """Return the conventional name ('A1', 'H12', ...) for 0-based row/column."""
    if not 0 <= row < len(_ROW_LETTERS):
        raise ValueError(f"row must be in [0, {len(_ROW_LETTERS)}), got {row}")
    if col < 0:
        raise ValueError(f"col must be >= 0, got {col}")
    return f"{_ROW_LETTERS[row]}{col + 1}"


def parse_well_name(name: str) -> Tuple[int, int]:
    """Parse 'C7' into 0-based ``(row, col)``."""
    name = name.strip().upper()
    if len(name) < 2 or name[0] not in _ROW_LETTERS or not name[1:].isdigit():
        raise ValueError(f"malformed well name {name!r}")
    return _ROW_LETTERS.index(name[0]), int(name[1:]) - 1


def well_names(rows: int, cols: int) -> List[str]:
    """All well names of a ``rows x cols`` plate in row-major order."""
    return [well_name(r, c) for r in range(rows) for c in range(cols)]


@dataclass
class Well:
    """One well of a microplate.

    Contents are tracked as a mapping from liquid name (dye or diluent) to
    volume in µl.  The well does not know what colour it is -- that is the
    camera's job, via the mixing model.
    """

    name: str
    capacity_ul: float = 360.0
    contents: Dict[str, float] = field(default_factory=dict)

    @property
    def volume(self) -> float:
        """Total liquid volume currently in the well (µl)."""
        return float(sum(self.contents.values()))

    @property
    def is_empty(self) -> bool:
        """True when nothing has been dispensed into the well."""
        return self.volume <= 0.0

    def add(self, liquid: str, volume_ul: float) -> None:
        """Dispense ``volume_ul`` of ``liquid`` into the well."""
        check_non_negative("volume_ul", volume_ul)
        if self.volume + volume_ul > self.capacity_ul + 1e-9:
            raise LabwareError(
                f"well {self.name}: adding {volume_ul:.1f} µl would exceed capacity "
                f"({self.volume:.1f}/{self.capacity_ul:.1f} µl)"
            )
        self.contents[liquid] = self.contents.get(liquid, 0.0) + float(volume_ul)

    def dye_volumes(self, dye_names: Sequence[str]) -> np.ndarray:
        """Return the volumes of the named dyes as an array (µl)."""
        return np.array([self.contents.get(name, 0.0) for name in dye_names], dtype=np.float64)

    def empty(self) -> None:
        """Remove all liquid (used when a plate is trashed and reused in tests)."""
        self.contents.clear()


@dataclass
class Plate:
    """An SBS microplate with ``rows x cols`` wells.

    Wells are created lazily in row-major order.  ``barcode`` identifies the
    plate in run records and portal publications.
    """

    barcode: str
    rows: int = 8
    cols: int = 12
    well_capacity_ul: float = 360.0
    wells: Dict[str, Well] = field(default_factory=dict)

    def __post_init__(self):
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        check_positive("well_capacity_ul", self.well_capacity_ul)
        if not self.wells:
            for name in well_names(self.rows, self.cols):
                self.wells[name] = Well(name=name, capacity_ul=self.well_capacity_ul)

    @property
    def n_wells(self) -> int:
        """Total number of wells on the plate."""
        return self.rows * self.cols

    @property
    def used_wells(self) -> List[str]:
        """Names of wells that contain liquid, in row-major order."""
        return [name for name in well_names(self.rows, self.cols) if not self.wells[name].is_empty]

    @property
    def empty_wells(self) -> List[str]:
        """Names of wells that are still empty, in row-major order."""
        return [name for name in well_names(self.rows, self.cols) if self.wells[name].is_empty]

    @property
    def remaining_capacity(self) -> int:
        """Number of wells that can still receive a sample."""
        return len(self.empty_wells)

    @property
    def is_full(self) -> bool:
        """True once every well has been used."""
        return self.remaining_capacity == 0

    def well(self, name: str) -> Well:
        """Return the well called ``name`` (KeyError with plate context otherwise)."""
        try:
            return self.wells[name]
        except KeyError:
            raise KeyError(f"plate {self.barcode}: no well named {name!r}") from None

    def next_empty_wells(self, count: int) -> List[str]:
        """Return the next ``count`` empty wells in row-major order.

        Raises :class:`LabwareError` if fewer than ``count`` remain.
        """
        check_positive("count", count)
        empty = self.empty_wells
        if len(empty) < count:
            raise LabwareError(
                f"plate {self.barcode}: requested {count} empty wells, only {len(empty)} remain"
            )
        return empty[:count]

    def well_grid_positions(self) -> Iterator[Tuple[str, int, int]]:
        """Yield ``(name, row, col)`` for all wells (used by the image renderer)."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield well_name(row, col), row, col


@dataclass
class Reservoir:
    """A liquid reservoir on the OT-2 deck holding a single dye."""

    liquid: str
    capacity_ul: float = 20_000.0
    volume_ul: float = 0.0

    def __post_init__(self):
        check_positive("capacity_ul", self.capacity_ul)
        check_non_negative("volume_ul", self.volume_ul)
        if self.volume_ul > self.capacity_ul:
            raise LabwareError(
                f"reservoir {self.liquid}: initial volume exceeds capacity"
            )

    @property
    def fill_fraction(self) -> float:
        """Fraction of capacity currently filled."""
        return self.volume_ul / self.capacity_ul

    def draw(self, volume_ul: float) -> None:
        """Remove liquid; raises :class:`LabwareError` if not enough remains."""
        check_non_negative("volume_ul", volume_ul)
        if volume_ul > self.volume_ul + 1e-9:
            raise LabwareError(
                f"reservoir {self.liquid}: cannot draw {volume_ul:.1f} µl, "
                f"only {self.volume_ul:.1f} µl available"
            )
        self.volume_ul -= volume_ul

    def fill(self, volume_ul: Optional[float] = None) -> float:
        """Add liquid (to capacity when ``volume_ul`` is None); returns volume added."""
        if volume_ul is None:
            added = self.capacity_ul - self.volume_ul
            self.volume_ul = self.capacity_ul
            return added
        check_non_negative("volume_ul", volume_ul)
        if self.volume_ul + volume_ul > self.capacity_ul + 1e-9:
            raise LabwareError(
                f"reservoir {self.liquid}: filling {volume_ul:.1f} µl would overflow"
            )
        self.volume_ul += volume_ul
        return volume_ul

    def drain(self) -> float:
        """Empty the reservoir completely; returns the volume removed."""
        removed = self.volume_ul
        self.volume_ul = 0.0
        return removed


@dataclass
class TipRack:
    """A box of disposable pipette tips on the OT-2 deck."""

    capacity: int = 96
    used: int = 0

    def __post_init__(self):
        check_positive("capacity", self.capacity)
        check_non_negative("used", self.used)
        if self.used > self.capacity:
            raise LabwareError("tip rack cannot start with more used tips than capacity")

    @property
    def remaining(self) -> int:
        """Number of unused tips left in the rack."""
        return self.capacity - self.used

    def use(self, count: int = 1) -> None:
        """Consume ``count`` tips; raises :class:`LabwareError` when the rack is empty."""
        check_positive("count", count)
        if count > self.remaining:
            raise LabwareError(
                f"tip rack exhausted: requested {count} tips, {self.remaining} remain"
            )
        self.used += count

    def refill(self) -> None:
        """Replace the rack with a fresh one."""
        self.used = 0


class PlateStack:
    """A sciclops storage tower holding fresh microplates."""

    _barcode_counter = itertools.count(1)

    def __init__(self, capacity: int = 20, plate_rows: int = 8, plate_cols: int = 12, prefix: str = "plate"):
        check_positive("capacity", capacity)
        self.capacity = capacity
        self.plate_rows = plate_rows
        self.plate_cols = plate_cols
        self.prefix = prefix
        self._remaining = capacity

    @property
    def remaining(self) -> int:
        """Number of fresh plates left in the tower."""
        return self._remaining

    @property
    def is_empty(self) -> bool:
        """True when the tower has no plates left."""
        return self._remaining == 0

    def pop(self) -> Plate:
        """Remove the top plate from the tower and return it."""
        if self.is_empty:
            raise LabwareError("plate storage tower is empty")
        self._remaining -= 1
        barcode = f"{self.prefix}-{next(self._barcode_counter):04d}"
        return Plate(barcode=barcode, rows=self.plate_rows, cols=self.plate_cols)

    def restock(self, count: int) -> None:
        """Add ``count`` fresh plates to the tower (capped at capacity)."""
        check_positive("count", count)
        self._remaining = min(self.capacity, self._remaining + count)
