"""Simulated "barty" liquid replenisher.

Barty is the RPL-built robot with four peristaltic pumps that moves dye from
large bulk storage vessels into the OT-2's deck reservoirs, letting
experiments run for extended periods without human refills (paper
Section 2.2).  It is the device the paper's extension adds relative to the
earlier colour-picker publication.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.hardware.base import ActionHandle, ActionRecord, DeviceError, SimulatedDevice
from repro.hardware.labware import Reservoir
from repro.hardware.ot2 import Ot2Device
from repro.utils.validation import check_positive

__all__ = ["BartyDevice"]


class BartyDevice(SimulatedDevice):
    """Peristaltic-pump liquid replenisher.

    Actions
    -------
    ``fill_colors``
        Fill the target OT-2's reservoirs to capacity from bulk storage.
    ``drain_colors``
        Empty the target OT-2's reservoirs (when a plate/experiment is finished).
    ``refill_colors``
        Drain-and-fill of the reservoirs that have run low.
    """

    module_type = "barty"

    def __init__(
        self,
        ot2: Ot2Device,
        *,
        bulk_capacity_ul: float = 500_000.0,
        name: Optional[str] = None,
        **kwargs,
    ):
        super().__init__(name=name, **kwargs)
        check_positive("bulk_capacity_ul", bulk_capacity_ul)
        self.ot2 = ot2
        self.bulk_supply: Dict[str, Reservoir] = {
            dye: Reservoir(liquid=dye, capacity_ul=bulk_capacity_ul, volume_ul=bulk_capacity_ul)
            for dye in ot2.dye_set.names
        }
        self.liquid_dispensed_ul = 0.0
        self.liquid_drained_ul = 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _select(self, colors: Optional[Iterable[str]]) -> List[str]:
        if colors is None:
            return list(self.ot2.reservoirs)
        names = list(colors)
        unknown = [c for c in names if c not in self.ot2.reservoirs]
        if unknown:
            raise DeviceError(f"{self.name}: unknown reservoir colours {unknown}")
        return names

    def _pump_fill(self, colors: List[str]) -> float:
        moved = 0.0
        for dye in colors:
            reservoir = self.ot2.reservoirs[dye]
            wanted = reservoir.capacity_ul - reservoir.volume_ul
            available = self.bulk_supply[dye].volume_ul
            transfer = min(wanted, available)
            if wanted > available:
                raise DeviceError(
                    f"{self.name}: bulk supply of {dye} exhausted "
                    f"({available:.0f} µl left, {wanted:.0f} µl needed)"
                )
            if transfer > 0:
                self.bulk_supply[dye].draw(transfer)
                reservoir.fill(transfer)
                moved += transfer
        self.liquid_dispensed_ul += moved
        return moved

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def submit_fill_colors(self, colors: Optional[Iterable[str]] = None) -> ActionHandle:
        """Submit a fill; the liquid reaches the reservoirs at completion."""
        selected = self._select(colors)
        record = self._execute("fill_colors", units=len(selected), colors=selected)

        def finish() -> ActionRecord:
            record.details["volume_moved_ul"] = self._pump_fill(selected)
            return record

        return self._submitted(record, finish)

    def fill_colors(self, colors: Optional[Iterable[str]] = None) -> ActionRecord:
        """Fill the selected reservoirs (default: all four) to capacity."""
        return self.submit_fill_colors(colors).complete()

    def submit_drain_colors(self, colors: Optional[Iterable[str]] = None) -> ActionHandle:
        """Submit a drain; the reservoirs empty at completion."""
        selected = self._select(colors)
        record = self._execute("drain_colors", units=len(selected), colors=selected)

        def finish() -> ActionRecord:
            removed = sum(self.ot2.reservoirs[dye].drain() for dye in selected)
            self.liquid_drained_ul += removed
            record.details["volume_drained_ul"] = removed
            return record

        return self._submitted(record, finish)

    def drain_colors(self, colors: Optional[Iterable[str]] = None) -> ActionRecord:
        """Drain the selected reservoirs (default: all four) to waste."""
        return self.submit_drain_colors(colors).complete()

    def submit_refill_colors(
        self, colors: Optional[Iterable[str]] = None, low_threshold: float = 0.15
    ) -> ActionHandle:
        """Submit a refill of reservoirs at or below ``low_threshold`` of capacity.

        When ``colors`` is given only those reservoirs are considered.  The
        command is still issued (and charged time) even if nothing needs
        refilling, matching how the application's replenish workflow behaves.
        The set of low reservoirs is fixed at submission, when the pumps are
        configured; the liquid moves at completion.
        """
        candidates = self._select(colors)
        low = [dye for dye in candidates if self.ot2.reservoirs[dye].fill_fraction <= low_threshold]
        record = self._execute("refill_colors", units=max(len(low), 1), colors=low)

        def finish() -> ActionRecord:
            record.details["volume_moved_ul"] = self._pump_fill(low) if low else 0.0
            return record

        return self._submitted(record, finish)

    def refill_colors(self, colors: Optional[Iterable[str]] = None, low_threshold: float = 0.15) -> ActionRecord:
        """Refill reservoirs that have dropped to or below ``low_threshold`` of capacity."""
        return self.submit_refill_colors(colors, low_threshold).complete()

    def bulk_levels(self) -> Dict[str, float]:
        """Remaining bulk supply of each dye (µl)."""
        return {dye: reservoir.volume_ul for dye, reservoir in self.bulk_supply.items()}
