"""Simulated Hudson SciClops microplate crane.

The sciclops stores fresh microplates in towers and stages one at its
exchange location where the pf400 can pick it up (paper Figure 1).
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.base import ActionHandle, ActionRecord, DeviceError, SimulatedDevice
from repro.hardware.deck import Workdeck
from repro.hardware.labware import Plate, PlateStack

__all__ = ["SciclopsDevice"]


class SciclopsDevice(SimulatedDevice):
    """Plate crane with one or more storage towers.

    Actions
    -------
    ``get_plate``
        Take a fresh plate from a storage tower and place it at the module's
        exchange location on the workcell deck.
    ``status``
        Report how many plates remain.
    """

    module_type = "sciclops"

    def __init__(
        self,
        deck: Workdeck,
        *,
        exchange_location: str = "sciclops.exchange",
        towers: int = 2,
        plates_per_tower: int = 20,
        name: Optional[str] = None,
        **kwargs,
    ):
        super().__init__(name=name, **kwargs)
        if towers < 1:
            raise ValueError(f"towers must be >= 1, got {towers}")
        self.deck = deck
        self.exchange_location = exchange_location
        self.towers = [PlateStack(capacity=plates_per_tower, prefix=f"{self.name}-t{i}") for i in range(towers)]
        if not deck.has_location(exchange_location):
            deck.add_location(exchange_location)

    @property
    def plates_remaining(self) -> int:
        """Fresh plates left across all towers."""
        return sum(tower.remaining for tower in self.towers)

    def submit_get_plate(self) -> ActionHandle:
        """Submit a plate fetch; the plate reaches the exchange at completion."""
        if self.deck.is_occupied(self.exchange_location):
            raise DeviceError(
                f"{self.name}: exchange location {self.exchange_location!r} is occupied"
            )
        tower = next((t for t in self.towers if not t.is_empty), None)
        if tower is None:
            raise DeviceError(f"{self.name}: all plate storage towers are empty")
        record = self._execute("get_plate", tower_remaining=tower.remaining)

        def finish() -> Plate:
            plate = tower.pop()
            self.deck.place(plate, self.exchange_location)
            return plate

        return self._submitted(record, finish)

    def get_plate(self) -> Plate:
        """Stage a fresh plate at the exchange location and return it."""
        return self.submit_get_plate().complete()

    def submit_status(self) -> ActionHandle:
        """Submit an inventory report (no state change at completion)."""
        return self._submitted(
            self._execute("status", plates_remaining=self.plates_remaining)
        )

    def status(self) -> ActionRecord:
        """Report remaining plate inventory (a quick, non-moving command)."""
        return self.submit_status().complete()
