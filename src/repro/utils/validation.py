"""Argument-validation helpers used across the public API.

These raise consistent, descriptive errors so user-facing constructors
(e.g. :class:`repro.core.ExperimentConfig`) can validate eagerly instead of
failing deep inside a simulation run.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
    "check_in_range",
    "check_length",
]


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise :class:`ValueError`."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise :class:`ValueError`."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if within [0, 1], else raise :class:`ValueError`."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


# Fractions (of a whole) follow the same rule as probabilities but read better
# at call sites such as ``check_fraction("crossover_fraction", x)``.
check_fraction = check_probability


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if within [low, high], else raise :class:`ValueError`."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_length(name: str, value: Sequence, expected: int) -> Sequence:
    """Return ``value`` if ``len(value) == expected``, else raise :class:`ValueError`."""
    if len(value) != expected:
        raise ValueError(f"{name} must have length {expected}, got {len(value)}")
    return value
