"""A minimal YAML-subset parser and dumper ("yamlite").

The WEI science-factory platform that the paper builds on describes workcells
and workflows with declarative YAML files.  To keep this reproduction free of
third-party dependencies beyond numpy/scipy, this module implements the small
YAML subset those specifications need:

* nested block mappings (``key: value``)
* block sequences (``- item``), including sequences of mappings
* inline (flow) lists ``[a, b, c]`` and mappings ``{a: 1, b: 2}``
* scalars: integers, floats, booleans, null, and quoted/unquoted strings
* ``#`` comments and blank lines

It intentionally does not implement anchors, tags, multi-document streams or
block scalars; the specification formats used by :mod:`repro.wei` never need
them.  Both :func:`loads` and :func:`dumps` round-trip the structures used by
the workcell/workflow schemas (tests assert this property).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["YamliteError", "loads", "dumps", "load_file", "dump_file"]


class YamliteError(ValueError):
    """Raised when a document cannot be parsed by the yamlite subset."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


# ---------------------------------------------------------------------------
# Scalar handling
# ---------------------------------------------------------------------------

_BOOL_TRUE = {"true", "True", "TRUE", "yes", "Yes", "on"}
_BOOL_FALSE = {"false", "False", "FALSE", "no", "No", "off"}
_NULL = {"null", "Null", "NULL", "~", ""}


def _parse_scalar(token: str) -> Any:
    """Convert a raw scalar token into a Python value."""
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        body = token[1:-1]
        if token[0] == '"':
            # Undo the dumper's escaping of backslashes and double quotes
            # (the placeholder keeps '\\"' from being unescaped twice).
            body = body.replace("\\\\", "\x00").replace('\\"', '"').replace("\x00", "\\")
        return body
    if token in _NULL:
        return None
    if token in _BOOL_TRUE:
        return True
    if token in _BOOL_FALSE:
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_inline(body: str, line_no: int) -> List[str]:
    """Split the interior of a flow collection on top-level commas."""
    parts: List[str] = []
    depth = 0
    quote: Optional[str] = None
    current = ""
    for ch in body:
        if quote is not None:
            current += ch
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current += ch
        elif ch in "[{":
            depth += 1
            current += ch
        elif ch in "]}":
            depth -= 1
            if depth < 0:
                raise YamliteError("unbalanced brackets in flow collection", line_no)
            current += ch
        elif ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if quote is not None:
        raise YamliteError("unterminated quote in flow collection", line_no)
    if depth != 0:
        raise YamliteError("unbalanced brackets in flow collection", line_no)
    if current.strip():
        parts.append(current)
    return parts


def _parse_value(raw: str, line_no: int) -> Any:
    """Parse an inline value: a flow list, flow mapping or scalar."""
    raw = raw.strip()
    if raw.startswith("[") and not raw.endswith("]"):
        raise YamliteError(f"unterminated flow list {raw!r}", line_no)
    if raw.startswith("{") and not raw.endswith("}"):
        raise YamliteError(f"unterminated flow mapping {raw!r}", line_no)
    if raw.startswith("[") and raw.endswith("]"):
        return [_parse_value(part, line_no) for part in _split_inline(raw[1:-1], line_no)]
    if raw.startswith("{") and raw.endswith("}"):
        result = {}
        for part in _split_inline(raw[1:-1], line_no):
            if ":" not in part:
                raise YamliteError(f"expected 'key: value' in flow mapping, got {part!r}", line_no)
            key, _, value = part.partition(":")
            result[_parse_scalar(key)] = _parse_value(value, line_no)
        return result
    return _parse_scalar(raw)


# ---------------------------------------------------------------------------
# Line pre-processing
# ---------------------------------------------------------------------------


def _strip_comment(line: str) -> str:
    """Remove a trailing ``#`` comment, respecting quoted strings."""
    quote: Optional[str] = None
    for idx, ch in enumerate(line):
        if quote is not None:
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
        elif ch == "#":
            return line[:idx]
    return line


def _logical_lines(text: str) -> Iterator[Tuple[int, int, str]]:
    """Yield ``(line_no, indent, content)`` for every meaningful line."""
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamliteError("tabs are not allowed for indentation", line_no)
        line = _strip_comment(raw).rstrip()
        if not line.strip():
            continue
        if line.strip() == "---":
            continue
        indent = len(line) - len(line.lstrip(" "))
        yield line_no, indent, line.strip()


# ---------------------------------------------------------------------------
# Block parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, lines: List[Tuple[int, int, str]]):
        self._lines = lines
        self._pos = 0

    def _peek(self) -> Optional[Tuple[int, int, str]]:
        if self._pos < len(self._lines):
            return self._lines[self._pos]
        return None

    def _next(self) -> Tuple[int, int, str]:
        item = self._lines[self._pos]
        self._pos += 1
        return item

    def parse_block(self, indent: int) -> Any:
        """Parse the block starting at ``indent`` and return its value."""
        entry = self._peek()
        if entry is None:
            return None
        _, _, content = entry
        if content.startswith("- ") or content == "-":
            return self._parse_sequence(indent)
        return self._parse_mapping(indent)

    def _parse_sequence(self, indent: int) -> List[Any]:
        items: List[Any] = []
        while True:
            entry = self._peek()
            if entry is None:
                break
            line_no, line_indent, content = entry
            if line_indent < indent:
                break
            if line_indent > indent:
                raise YamliteError("unexpected indentation inside sequence", line_no)
            if not (content.startswith("- ") or content == "-"):
                break
            self._next()
            body = content[1:].strip()
            if not body:
                # Nested block value on the following lines.
                nxt = self._peek()
                if nxt is not None and nxt[1] > indent:
                    items.append(self.parse_block(nxt[1]))
                else:
                    items.append(None)
            elif ":" in body and not body.startswith(("[", "{")) and _looks_like_mapping(body):
                # "- key: value" begins an inline mapping item whose remaining
                # keys are indented deeper than the dash.
                key, rest = _split_key(body)
                item = {}
                item[_parse_scalar(key)] = self._value_or_block(rest, indent + 2, line_no)
                nxt = self._peek()
                if nxt is not None and nxt[1] > indent and not nxt[2].startswith("- "):
                    more = self._parse_mapping(nxt[1])
                    for extra_key, extra_value in more.items():
                        if extra_key in item:
                            raise YamliteError(f"duplicate key {extra_key!r}", nxt[0])
                        item[extra_key] = extra_value
                items.append(item)
            else:
                items.append(_parse_value(body, line_no))
        return items

    def _parse_mapping(self, indent: int) -> dict:
        mapping: dict = {}
        while True:
            entry = self._peek()
            if entry is None:
                break
            line_no, line_indent, content = entry
            if line_indent < indent:
                break
            if line_indent > indent:
                raise YamliteError("unexpected indentation inside mapping", line_no)
            if content.startswith("- "):
                break
            split = _split_key(content)
            if split is None:
                raise YamliteError(f"expected 'key: value', got {content!r}", line_no)
            self._next()
            key, rest = split
            parsed_key = _parse_scalar(key)
            if parsed_key in mapping:
                raise YamliteError(f"duplicate key {parsed_key!r}", line_no)
            mapping[parsed_key] = self._value_or_block(rest, indent, line_no)
        return mapping

    def _value_or_block(self, rest: str, indent: int, line_no: int) -> Any:
        rest = rest.strip()
        if rest:
            return _parse_value(rest, line_no)
        nxt = self._peek()
        if nxt is not None and nxt[1] > indent:
            return self.parse_block(nxt[1])
        if nxt is not None and nxt[1] == indent and (nxt[2].startswith("- ") or nxt[2] == "-"):
            # Sequences are commonly written at the same indent as their key.
            return self._parse_sequence(indent)
        return None


def _split_key(content: str) -> Optional[Tuple[str, str]]:
    """Split ``key: rest`` at the key's colon, respecting a quoted key.

    A key the dumper quoted (because it contains a colon, looks like a null/
    bool/number, etc.) must be matched as a whole -- partitioning on the
    first colon would split inside the quotes.  Returns ``None`` when
    ``content`` does not have the ``key: rest`` shape.
    """
    if content[:1] in "'\"":
        quote = content[0]
        end = _find_closing_quote(content, quote)
        if end == -1 or not content[end + 1 :].startswith(":"):
            return None
        return content[: end + 1], content[end + 2 :]
    key, sep, rest = content.partition(":")
    if not sep:
        return None
    return key, rest


def _find_closing_quote(content: str, quote: str) -> int:
    """Index of the quote closing ``content[0]``, honouring ``\\``-escapes."""
    index = 1
    while index < len(content):
        ch = content[index]
        if quote == '"' and ch == "\\":
            index += 2
            continue
        if ch == quote:
            return index
        index += 1
    return -1


def _looks_like_mapping(body: str) -> bool:
    """Heuristic: does ``body`` start a ``key: value`` pair (vs. a scalar with a colon)?"""
    split = _split_key(body)
    if split is None:
        return False
    key, rest = split
    if rest and not rest.startswith(" "):
        return False
    if key[:1] in "'\"":
        return True
    return all(ch not in key for ch in "[]{}\"'")


def loads(text: str) -> Any:
    """Parse a yamlite document and return the corresponding Python object.

    Returns ``None`` for an empty document, otherwise a ``dict`` or ``list``
    (or a bare scalar for single-scalar documents).
    """
    lines = list(_logical_lines(text))
    if not lines:
        return None
    parser = _Parser(lines)
    first_indent = lines[0][1]
    first_content = lines[0][2]
    if len(lines) == 1 and ":" not in first_content and not first_content.startswith("- "):
        return _parse_value(first_content, lines[0][0])
    result = parser.parse_block(first_indent)
    leftover = parser._peek()
    if leftover is not None:
        raise YamliteError("could not parse trailing content", leftover[0])
    return result


def load_file(path) -> Any:
    """Parse a yamlite document stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# ---------------------------------------------------------------------------
# Dumper
# ---------------------------------------------------------------------------


def _format_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    text = str(value)
    needs_quotes = (
        text == ""
        or text != text.strip()
        or any(ch in text for ch in ":#{}[],\"'\n")
        or text in _BOOL_TRUE
        or text in _BOOL_FALSE
        or text in _NULL
        or _is_numeric(text)
    )
    if needs_quotes:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def _is_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _dump_lines(value: Any, indent: int) -> List[str]:
    pad = " " * indent
    lines: List[str] = []
    if isinstance(value, dict):
        if not value:
            return [pad + "{}"]
        for key, item in value.items():
            key_text = _format_scalar(key)
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{pad}{key_text}:")
                lines.extend(_dump_lines(item, indent + 2))
            elif isinstance(item, dict):
                lines.append(f"{pad}{key_text}: {{}}")
            elif isinstance(item, list):
                lines.append(f"{pad}{key_text}: []")
            else:
                lines.append(f"{pad}{key_text}: {_format_scalar(item)}")
        return lines
    if isinstance(value, list):
        if not value:
            return [pad + "[]"]
        for item in value:
            if isinstance(item, list) and item:
                # Nested sequences go on their own lines under a bare dash so
                # the parser sees them as a nested block.
                lines.append(f"{pad}-")
                lines.extend(_dump_lines(item, indent + 2))
            elif isinstance(item, dict) and item:
                nested = _dump_lines(item, indent + 2)
                first = nested[0].lstrip()
                lines.append(f"{pad}- {first}")
                lines.extend(nested[1:])
            elif isinstance(item, dict):
                lines.append(f"{pad}- {{}}")
            elif isinstance(item, list):
                lines.append(f"{pad}- []")
            else:
                lines.append(f"{pad}- {_format_scalar(item)}")
        return lines
    return [pad + _format_scalar(value)]


def dumps(value: Any) -> str:
    """Serialise ``value`` to a yamlite document (round-trips with :func:`loads`)."""
    return "\n".join(_dump_lines(value, 0)) + "\n"


def dump_file(value: Any, path) -> None:
    """Serialise ``value`` to a yamlite document stored at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(value))
