"""Seeded random-number plumbing.

Every stochastic component in the library (dye-mixing noise, camera noise,
action-duration jitter, the evolutionary solver's mutations, failure
injection) draws from a :class:`numpy.random.Generator`.  To make whole
experiments reproducible from a single integer seed, components never create
their own generators from entropy: they accept either a seed, an existing
generator, or a :class:`RandomSource` from which independent child streams can
be derived by name.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RandomSource", "ensure_rng", "derive_rng"]

SeedLike = Union[None, int, np.random.Generator, "RandomSource"]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, an existing
    generator (returned unchanged), or a :class:`RandomSource` (its root
    generator is returned).
    """
    if isinstance(seed, RandomSource):
        return seed.generator
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: SeedLike, name: str) -> np.random.Generator:
    """Derive an independent generator for ``name`` from ``seed``.

    Deriving by name (rather than splitting sequentially) means adding a new
    consumer of randomness does not perturb the streams seen by existing
    consumers, which keeps recorded benchmark numbers stable across versions.
    """
    if isinstance(seed, RandomSource):
        return seed.child(name).generator
    base = ensure_rng(seed)
    # Mix the name into the stream deterministically.
    name_digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
    mix = int(name_digest.sum()) + 1000003 * len(name)
    return np.random.default_rng([int(base.integers(0, 2**31 - 1)), mix])


class RandomSource:
    """A named tree of reproducible random generators.

    A :class:`RandomSource` wraps a root seed; :meth:`child` derives an
    independent, deterministic sub-stream for a component name.  Children of
    children are supported, so e.g. the OT-2 device and the camera can both
    derive their own noise streams from the experiment seed without
    interfering with each other.
    """

    def __init__(self, seed: Optional[int] = None, *, _path: str = ""):
        self._seed = seed
        self._path = _path
        self._generator: Optional[np.random.Generator] = None

    @property
    def seed(self) -> Optional[int]:
        """The root integer seed (``None`` if seeded from entropy)."""
        return self._seed

    @property
    def path(self) -> str:
        """Slash-separated name of this stream within the tree."""
        return self._path

    @property
    def generator(self) -> np.random.Generator:
        """The :class:`numpy.random.Generator` backing this source (lazily built)."""
        if self._generator is None:
            if self._seed is None:
                self._generator = np.random.default_rng()
            else:
                material = [self._seed] + [
                    _stable_hash(part) for part in self._path.split("/") if part
                ]
                self._generator = np.random.default_rng(material)
        return self._generator

    def child(self, name: str) -> "RandomSource":
        """Return the named child stream (deterministic given the root seed)."""
        if not name:
            raise ValueError("child name must be a non-empty string")
        path = f"{self._path}/{name}" if self._path else name
        return RandomSource(self._seed, _path=path)

    def spawn_seed(self, name: str) -> int:
        """Return a deterministic integer seed for an external consumer."""
        return int(self.child(name).generator.integers(0, 2**31 - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomSource(seed={self._seed!r}, path={self._path!r})"


def _stable_hash(text: str) -> int:
    """A process-independent 63-bit hash (``hash()`` is salted per process)."""
    value = 1469598103934665603
    for byte in text.encode("utf-8"):
        value ^= byte
        value *= 1099511628211
        value &= (1 << 63) - 1
    return value
