"""Time and volume unit helpers.

All durations inside the library are stored as plain floats in **seconds**
and all liquid volumes as floats in **microliters**; these helpers exist so
calling code can express quantities in natural units and format results the
way the paper reports them ("8 hours 12 mins").
"""

from __future__ import annotations

import re

__all__ = [
    "seconds",
    "minutes",
    "hours",
    "microliters",
    "milliliters",
    "format_duration",
    "parse_duration",
]


def seconds(value: float) -> float:
    """Return ``value`` seconds expressed in seconds (identity, for symmetry)."""
    return float(value)


def minutes(value: float) -> float:
    """Return ``value`` minutes expressed in seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Return ``value`` hours expressed in seconds."""
    return float(value) * 3600.0


def microliters(value: float) -> float:
    """Return ``value`` microliters expressed in microliters (identity)."""
    return float(value)


def milliliters(value: float) -> float:
    """Return ``value`` milliliters expressed in microliters."""
    return float(value) * 1000.0


def format_duration(duration_s: float) -> str:
    """Format a duration in seconds the way the paper reports it.

    Examples: ``"8 hours 12 mins"``, ``"4 mins"``, ``"42 secs"``.
    Negative durations raise :class:`ValueError`.
    """
    if duration_s < 0:
        raise ValueError(f"duration must be non-negative, got {duration_s}")
    if duration_s < 60:
        return f"{int(round(duration_s))} secs"
    total_minutes = int(round(duration_s / 60.0))
    hours_part, minutes_part = divmod(total_minutes, 60)
    if hours_part and minutes_part:
        return f"{hours_part} hours {minutes_part} mins"
    if hours_part:
        return f"{hours_part} hours"
    return f"{minutes_part} mins"


_DURATION_RE = re.compile(
    r"^\s*(?:(?P<hours>\d+(?:\.\d+)?)\s*h(?:ours?|rs?)?)?"
    r"\s*(?:(?P<minutes>\d+(?:\.\d+)?)\s*m(?:in(?:ute)?s?)?)?"
    r"\s*(?:(?P<seconds>\d+(?:\.\d+)?)\s*s(?:ec(?:ond)?s?)?)?\s*$",
    re.IGNORECASE,
)


def parse_duration(text: str) -> float:
    """Parse durations like ``"8h 12m"``, ``"4 mins"`` or ``"90s"`` into seconds.

    A bare number is interpreted as seconds.  Raises :class:`ValueError` for
    strings that cannot be interpreted.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty duration string")
    try:
        return float(text)
    except ValueError:
        pass
    match = _DURATION_RE.match(text)
    if not match or not any(match.groupdict().values()):
        raise ValueError(f"could not parse duration {text!r}")
    parts = match.groupdict()
    total = 0.0
    if parts["hours"]:
        total += float(parts["hours"]) * 3600.0
    if parts["minutes"]:
        total += float(parts["minutes"]) * 60.0
    if parts["seconds"]:
        total += float(parts["seconds"])
    return total
