"""Shared utilities for the repro package.

This subpackage contains small, dependency-free building blocks used by the
rest of the library:

* :mod:`repro.utils.yamlite` -- a minimal YAML-subset parser/dumper used for
  the declarative workcell and workflow specifications (the paper's WEI
  platform describes workcells and workflows in YAML).
* :mod:`repro.utils.rng` -- seeded random-number-generator plumbing so every
  experiment in the benchmark suite is reproducible.
* :mod:`repro.utils.units` -- small helpers for time and volume quantities.
* :mod:`repro.utils.validation` -- argument-validation helpers shared by the
  public API.
"""

from repro.utils.rng import RandomSource, derive_rng, ensure_rng
from repro.utils.units import (
    format_duration,
    hours,
    microliters,
    milliliters,
    minutes,
    parse_duration,
    seconds,
)
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)
from repro.utils.yamlite import YamliteError, dumps, loads

__all__ = [
    "RandomSource",
    "derive_rng",
    "ensure_rng",
    "seconds",
    "minutes",
    "hours",
    "microliters",
    "milliliters",
    "parse_duration",
    "format_duration",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
    "check_in_range",
    "loads",
    "dumps",
    "YamliteError",
]
