"""SDL benchmark metrics (the paper's Table 1).

The paper proposes three headline metrics for comparing self-driving labs
(Section 4):

* **TWH** -- time without humans: the longest stretch an experiment ran with
  no human intervention (for a fault-free simulated run, the whole experiment).
* **CCWH** -- commands completed without humans: successful robotic commands
  executed over that stretch.
* **time per colour** -- total run time divided by the number of samples,

plus the synthesis / transfer split that localises the bottleneck (the OT-2
accounted for 63 % of the paper's B = 1 run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Dict, Iterable, Optional, Sequence, Tuple

from repro.utils.units import format_duration
from repro.wei.engine import StepResult
from repro.wei.workcell import Workcell

__all__ = ["SdlMetrics", "compute_metrics", "metrics_from_step_results", "PAPER_TABLE1"]


#: The paper's reported Table 1 values (for the B = 1, N = 128 run), in the
#: same units as :class:`SdlMetrics`, used by the benchmark harness to print
#: paper-vs-measured comparisons.
PAPER_TABLE1: Dict[str, float] = {
    "time_without_humans_s": 8 * 3600 + 12 * 60,
    "commands_completed": 387,
    "synthesis_time_s": 5 * 3600 + 10 * 60,
    "transfer_time_s": 3 * 3600 + 2 * 60,
    "total_colors": 128,
    "time_per_color_s": 4 * 60,
}


@dataclass
class SdlMetrics:
    """The proposed SDL metrics for one experiment run."""

    time_without_humans_s: float
    commands_completed: int
    synthesis_time_s: float
    transfer_time_s: float
    total_colors: int
    interventions: int = 0

    @property
    def time_per_color_s(self) -> float:
        """Total run time divided by the number of colours produced."""
        if self.total_colors == 0:
            return float("inf")
        return self.time_without_humans_s / self.total_colors

    @property
    def synthesis_fraction(self) -> float:
        """Fraction of the run spent mixing (the paper reports 63 % for B = 1)."""
        if self.time_without_humans_s <= 0:
            return 0.0
        return self.synthesis_time_s / self.time_without_humans_s

    def to_dict(self) -> Dict[str, float]:
        """JSON-serialisable form."""
        return {
            "time_without_humans_s": self.time_without_humans_s,
            "commands_completed": self.commands_completed,
            "synthesis_time_s": self.synthesis_time_s,
            "transfer_time_s": self.transfer_time_s,
            "total_colors": self.total_colors,
            "time_per_color_s": self.time_per_color_s,
            "synthesis_fraction": self.synthesis_fraction,
            "interventions": self.interventions,
        }

    def as_table(self) -> str:
        """Render the metrics in the format of the paper's Table 1."""
        rows = [
            ("Time without humans", format_duration(self.time_without_humans_s)),
            ("Completed commands without humans", str(self.commands_completed)),
            ("Synthesis time", format_duration(self.synthesis_time_s)),
            ("Transfer time", format_duration(self.transfer_time_s)),
            ("Total colors mixed", str(self.total_colors)),
            ("Time per color", format_duration(self.time_per_color_s)),
        ]
        width = max(len(label) for label, _ in rows)
        lines = [f"{label.ljust(width)}  {value}" for label, value in rows]
        return "\n".join(lines)


def compute_metrics(
    workcell: Workcell,
    *,
    total_colors: int,
    start_time: float,
    end_time: float,
    intervention_times: Optional[Sequence[float]] = None,
) -> SdlMetrics:
    """Compute the Table 1 metrics from a workcell's action records.

    ``synthesis_time`` is the total OT-2 busy time within the scored window;
    ``transfer_time`` is everything else (the paper's two categories partition
    the whole run: 5 h 10 m + 3 h 02 m = 8 h 12 m).  CCWH counts successful
    robotic commands (camera imaging and computational steps are excluded, as
    in the paper's count of "distinct robotic actions").

    When ``intervention_times`` is given (timestamps at which a human had to
    step in), TWH follows the paper's definition -- "the longest time that an
    experiment ran without human intervention" -- so the scored window becomes
    the longest segment between consecutive interventions, and CCWH /
    synthesis are counted within that segment only.
    """
    window_start, window_end, n_interventions = _scoring_window(
        start_time, end_time, intervention_times
    )
    elapsed = window_end - window_start

    synthesis = 0.0
    commands = 0
    for module in workcell.modules.values():
        device = module.device
        for record in device.action_log:
            if record.start_time < window_start or record.end_time > window_end + 1e-9:
                continue
            if record.success and record.robotic:
                commands += 1
            if device.module_type == "ot2" and record.success:
                synthesis += record.duration

    transfer = max(elapsed - synthesis, 0.0)
    return SdlMetrics(
        time_without_humans_s=elapsed,
        commands_completed=commands,
        synthesis_time_s=synthesis,
        transfer_time_s=transfer,
        total_colors=total_colors,
        interventions=n_interventions,
    )


def _scoring_window(
    start_time: float,
    end_time: float,
    intervention_times: Optional[Sequence[float]],
) -> Tuple[float, float, int]:
    """The longest stretch between interventions (the paper's TWH window)."""
    if end_time < start_time:
        raise ValueError("end_time must not precede start_time")
    interventions = sorted(t for t in (intervention_times or []) if start_time <= t <= end_time)
    if not interventions:
        return start_time, end_time, 0
    boundaries = [start_time] + interventions + [end_time]
    segments = list(zip(boundaries[:-1], boundaries[1:]))
    window_start, window_end = max(segments, key=lambda seg: seg[1] - seg[0])
    return window_start, window_end, len(interventions)


def metrics_from_step_results(
    steps: Iterable[StepResult],
    *,
    ot2_modules: Collection[str],
    total_colors: int,
    start_time: float,
    end_time: float,
    intervention_times: Optional[Sequence[float]] = None,
) -> SdlMetrics:
    """Compute the Table 1 metrics from one run's own executed steps.

    :func:`compute_metrics` reads the workcell's device logs, which is correct
    when one experiment had the workcell to itself but over-counts when
    several experiments run *concurrently* on shared devices.  This variant
    attributes commands and synthesis time from the
    :class:`~repro.wei.engine.StepResult` records a single run actually
    executed, so each concurrent lane reports only its own work.
    ``ot2_modules`` names the module(s) whose busy time counts as synthesis
    (the lane's liquid handler).
    """
    window_start, window_end, n_interventions = _scoring_window(
        start_time, end_time, intervention_times
    )
    elapsed = window_end - window_start

    synthesis = 0.0
    commands = 0
    for step in steps:
        if step.start_time < window_start or step.end_time > window_end + 1e-9:
            continue
        if not step.success:
            continue
        commands += step.robotic_commands
        if step.module in ot2_modules:
            synthesis += step.duration

    transfer = max(elapsed - synthesis, 0.0)
    return SdlMetrics(
        time_without_humans_s=elapsed,
        commands_completed=commands,
        synthesis_time_s=synthesis,
        transfer_time_s=transfer,
        total_colors=total_colors,
        interventions=n_interventions,
    )
