"""The four WEI workflows driven by the colour-picker application.

These correspond one-to-one with the workflows named in the paper's
Section 2.3 and Figure 2:

* ``cp_wf_newplate`` -- fetch a fresh plate and fill the OT-2 reservoirs,
* ``cp_wf_mix_colors`` -- move the plate to the OT-2, run the mixing protocol,
  return the plate to the camera and photograph it,
* ``cp_wf_trashplate`` -- dispose of the finished plate and drain the
  reservoirs,
* ``cp_wf_replenish`` -- refill reservoirs that have run low.

Each builder is parameterised by the module names so the same application can
target a workcell with several OT-2/barty pairs (the Section 4 ablation) --
"workflows can be retargeted to different modules and workcells that provide
comparable capabilities" (Section 2.2).

Builders also take a ``staging`` mode deciding where the active plate parks
between iterations:

* ``"camera"`` (the paper's single-plate flow): the plate rests on the camera
  stage and shuttles to the OT-2 for each mix;
* ``"ot2"`` (concurrent multi-plate flow): the plate rests on its own OT-2
  deck and only visits the shared camera stage to be photographed, so
  several plates can be in flight without colliding at the single-plate
  camera nest.
"""

from __future__ import annotations

from typing import Optional

from repro.wei.workflow import WorkflowSpec

__all__ = [
    "STAGING_MODES",
    "build_newplate_workflow",
    "build_mix_colors_workflow",
    "build_trashplate_workflow",
    "build_replenish_workflow",
    "WORKFLOW_BUILDERS",
]

#: Where the active plate parks between iterations (see module docstring).
STAGING_MODES = ("camera", "ot2")


def _check_staging(staging: str) -> None:
    if staging not in STAGING_MODES:
        raise ValueError(f"unknown staging mode {staging!r}; expected one of {STAGING_MODES}")


def build_newplate_workflow(
    *,
    ot2: str = "ot2",
    barty: str = "barty",
    exchange_location: str = "sciclops.exchange",
    camera_location: str = "camera.stage",
    staging: str = "camera",
    ot2_location: Optional[str] = None,
) -> WorkflowSpec:
    """``cp_wf_newplate``: stage a fresh plate and fill the reservoirs.

    With ``staging="camera"`` the plate is parked on the camera stage (the
    paper's flow); with ``staging="ot2"`` it goes straight to its OT-2 deck.
    """
    _check_staging(staging)
    park = camera_location if staging == "camera" else (ot2_location or f"{ot2}.deck")
    spec = WorkflowSpec(
        name="cp_wf_newplate",
        description="Retrieve a new plate from the sciclops and prepare the OT-2 reservoirs.",
        metadata={"staging": staging},
    )
    spec.add_step("sciclops", "get_plate", comment="Pick a fresh plate from a storage tower.")
    spec.add_step(
        "pf400",
        "transfer",
        source=exchange_location,
        target=park,
        comment=f"Place the new plate at {park}.",
    )
    spec.add_step(barty, "fill_colors", comment=f"Fill the {ot2} reservoirs from bulk storage.")
    return spec


def build_mix_colors_workflow(
    *,
    ot2: str = "ot2",
    ot2_location: str = "ot2.deck",
    camera_location: str = "camera.stage",
    staging: str = "camera",
) -> WorkflowSpec:
    """``cp_wf_mix_colors``: mix one batch of colours and photograph the plate.

    The pipetting protocol itself is supplied at run time through the payload
    (``$payload.protocol``), mirroring how the paper's workflow references a
    generated OT-2 protocol file.
    """
    _check_staging(staging)
    spec = WorkflowSpec(
        name="cp_wf_mix_colors",
        description="Transfer the plate to the OT-2, run the mixing protocol, return and image it.",
        metadata={"ot2": ot2, "staging": staging},
    )
    if staging == "camera":
        spec.add_step(
            "pf400",
            "transfer",
            source=camera_location,
            target=ot2_location,
            comment="Move the active plate onto the OT-2 deck.",
        )
        spec.add_step(
            ot2, "run_protocol", protocol="$payload.protocol", comment="Mix Colors protocol."
        )
        spec.add_step(
            "pf400",
            "transfer",
            source=ot2_location,
            target=camera_location,
            comment="Return the plate to the camera stage.",
        )
        spec.add_step("camera", "take_picture", comment="Photograph the plate for analysis.")
    else:
        # The plate lives on the OT-2 deck: mix first, then briefly visit the
        # shared camera stage and come straight back so the stage frees up
        # for the other in-flight plates.
        spec.add_step(
            ot2, "run_protocol", protocol="$payload.protocol", comment="Mix Colors protocol."
        )
        spec.add_step(
            "pf400",
            "transfer",
            source=ot2_location,
            target=camera_location,
            comment="Carry the plate to the camera stage.",
        )
        spec.add_step("camera", "take_picture", comment="Photograph the plate for analysis.")
        spec.add_step(
            "pf400",
            "transfer",
            source=camera_location,
            target=ot2_location,
            comment="Return the plate to its OT-2 deck.",
        )
    return spec


def build_trashplate_workflow(
    *,
    barty: str = "barty",
    camera_location: str = "camera.stage",
    trash_location: str = "trash",
    drain: bool = True,
    staging: str = "camera",
    ot2_location: str = "ot2.deck",
) -> WorkflowSpec:
    """``cp_wf_trashplate``: dispose of the active plate (and drain the reservoirs)."""
    _check_staging(staging)
    source = camera_location if staging == "camera" else ot2_location
    spec = WorkflowSpec(
        name="cp_wf_trashplate",
        description="Dispose of the finished plate and drain the OT-2 reservoirs.",
        metadata={"staging": staging},
    )
    spec.add_step(
        "pf400",
        "transfer",
        source=source,
        target=trash_location,
        comment="Move the finished plate to the trash.",
    )
    if drain:
        spec.add_step(barty, "drain_colors", comment="Drain the OT-2 reservoirs.")
    return spec


def build_replenish_workflow(*, barty: str = "barty") -> WorkflowSpec:
    """``cp_wf_replenish``: refill reservoirs that have run low.

    The threshold below which a reservoir counts as "low" is supplied at run
    time (``$payload.low_threshold``); passing 1.0 refills every reservoir,
    which the application does when the next protocol needs more liquid than
    remains.
    """
    spec = WorkflowSpec(
        name="cp_wf_replenish",
        description="Refill low OT-2 reservoirs from bulk storage.",
    )
    spec.add_step(
        barty,
        "refill_colors",
        low_threshold="$payload.low_threshold",
        comment="Top up any low reservoirs.",
    )
    return spec


#: Name -> builder mapping, handy for enumerating the application's workflows.
WORKFLOW_BUILDERS = {
    "cp_wf_newplate": build_newplate_workflow,
    "cp_wf_mix_colors": build_mix_colors_workflow,
    "cp_wf_trashplate": build_trashplate_workflow,
    "cp_wf_replenish": build_replenish_workflow,
}
