"""The four WEI workflows driven by the colour-picker application.

These correspond one-to-one with the workflows named in the paper's
Section 2.3 and Figure 2:

* ``cp_wf_newplate`` -- fetch a fresh plate and fill the OT-2 reservoirs,
* ``cp_wf_mix_colors`` -- move the plate to the OT-2, run the mixing protocol,
  return the plate to the camera and photograph it,
* ``cp_wf_trashplate`` -- dispose of the finished plate and drain the
  reservoirs,
* ``cp_wf_replenish`` -- refill reservoirs that have run low.

Each builder is parameterised by the module names so the same application can
target a workcell with several OT-2/barty pairs (the Section 4 ablation) --
"workflows can be retargeted to different modules and workcells that provide
comparable capabilities" (Section 2.2).
"""

from __future__ import annotations

from repro.wei.workflow import WorkflowSpec

__all__ = [
    "build_newplate_workflow",
    "build_mix_colors_workflow",
    "build_trashplate_workflow",
    "build_replenish_workflow",
    "WORKFLOW_BUILDERS",
]


def build_newplate_workflow(
    *,
    ot2: str = "ot2",
    barty: str = "barty",
    exchange_location: str = "sciclops.exchange",
    camera_location: str = "camera.stage",
) -> WorkflowSpec:
    """``cp_wf_newplate``: stage a fresh plate at the camera and fill the reservoirs."""
    spec = WorkflowSpec(
        name="cp_wf_newplate",
        description="Retrieve a new plate from the sciclops and prepare the OT-2 reservoirs.",
    )
    spec.add_step("sciclops", "get_plate", comment="Pick a fresh plate from a storage tower.")
    spec.add_step(
        "pf400",
        "transfer",
        source=exchange_location,
        target=camera_location,
        comment="Place the new plate on the camera stage.",
    )
    spec.add_step(barty, "fill_colors", comment=f"Fill the {ot2} reservoirs from bulk storage.")
    return spec


def build_mix_colors_workflow(
    *,
    ot2: str = "ot2",
    ot2_location: str = "ot2.deck",
    camera_location: str = "camera.stage",
) -> WorkflowSpec:
    """``cp_wf_mix_colors``: mix one batch of colours and photograph the plate.

    The pipetting protocol itself is supplied at run time through the payload
    (``$payload.protocol``), mirroring how the paper's workflow references a
    generated OT-2 protocol file.
    """
    spec = WorkflowSpec(
        name="cp_wf_mix_colors",
        description="Transfer the plate to the OT-2, run the mixing protocol, return and image it.",
        metadata={"ot2": ot2},
    )
    spec.add_step(
        "pf400",
        "transfer",
        source=camera_location,
        target=ot2_location,
        comment="Move the active plate onto the OT-2 deck.",
    )
    spec.add_step(ot2, "run_protocol", protocol="$payload.protocol", comment="Mix Colors protocol.")
    spec.add_step(
        "pf400",
        "transfer",
        source=ot2_location,
        target=camera_location,
        comment="Return the plate to the camera stage.",
    )
    spec.add_step("camera", "take_picture", comment="Photograph the plate for analysis.")
    return spec


def build_trashplate_workflow(
    *,
    barty: str = "barty",
    camera_location: str = "camera.stage",
    trash_location: str = "trash",
    drain: bool = True,
) -> WorkflowSpec:
    """``cp_wf_trashplate``: dispose of the active plate (and drain the reservoirs)."""
    spec = WorkflowSpec(
        name="cp_wf_trashplate",
        description="Dispose of the finished plate and drain the OT-2 reservoirs.",
    )
    spec.add_step(
        "pf400",
        "transfer",
        source=camera_location,
        target=trash_location,
        comment="Move the finished plate to the trash.",
    )
    if drain:
        spec.add_step(barty, "drain_colors", comment="Drain the OT-2 reservoirs.")
    return spec


def build_replenish_workflow(*, barty: str = "barty") -> WorkflowSpec:
    """``cp_wf_replenish``: refill reservoirs that have run low.

    The threshold below which a reservoir counts as "low" is supplied at run
    time (``$payload.low_threshold``); passing 1.0 refills every reservoir,
    which the application does when the next protocol needs more liquid than
    remains.
    """
    spec = WorkflowSpec(
        name="cp_wf_replenish",
        description="Refill low OT-2 reservoirs from bulk storage.",
    )
    spec.add_step(
        barty,
        "refill_colors",
        low_threshold="$payload.low_threshold",
        comment="Top up any low reservoirs.",
    )
    return spec


#: Name -> builder mapping, handy for enumerating the application's workflows.
WORKFLOW_BUILDERS = {
    "cp_wf_newplate": build_newplate_workflow,
    "cp_wf_mix_colors": build_mix_colors_workflow,
    "cp_wf_trashplate": build_trashplate_workflow,
    "cp_wf_replenish": build_replenish_workflow,
}
