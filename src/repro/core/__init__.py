"""The colour-picker application: the paper's primary contribution.

This package implements ``color_picker_app`` (paper Figure 2) on top of the
simulated workcell: the experiment configuration and result types, the four
WEI workflows the application drives, OT-2 protocol generation, the
closed-loop application itself, the SDL benchmark metrics of Table 1, the
batch-size sweep of Figure 4 and the multi-run campaigns of Figure 3.
"""

from repro.core.app import ColorPickerApp
from repro.core.batch import BatchSweepResult, run_batch_sweep
from repro.core.campaign import CampaignResult, run_campaign
from repro.core.experiment import ExperimentConfig, ExperimentResult, SampleResult
from repro.core.metrics import SdlMetrics, compute_metrics, PAPER_TABLE1
from repro.core.protocol import build_mix_protocol, ratios_to_volumes
from repro.core.workflows import (
    WORKFLOW_BUILDERS,
    build_mix_colors_workflow,
    build_newplate_workflow,
    build_replenish_workflow,
    build_trashplate_workflow,
)

__all__ = [
    "ColorPickerApp",
    "ExperimentConfig",
    "ExperimentResult",
    "SampleResult",
    "SdlMetrics",
    "compute_metrics",
    "PAPER_TABLE1",
    "build_mix_protocol",
    "ratios_to_volumes",
    "build_newplate_workflow",
    "build_mix_colors_workflow",
    "build_trashplate_workflow",
    "build_replenish_workflow",
    "WORKFLOW_BUILDERS",
    "run_batch_sweep",
    "BatchSweepResult",
    "run_campaign",
    "CampaignResult",
]
