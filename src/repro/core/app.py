"""The closed-loop colour-picker application (paper Figure 2).

:class:`ColorPickerApp` reproduces ``color_picker_app.py``: it repeatedly

1. fetches a new plate when needed (``cp_wf_newplate``),
2. asks the solver for the next batch of dye ratios,
3. runs ``cp_wf_mix_colors`` to dispense, mix, and photograph them,
4. processes the plate image into per-well colours,
5. publishes the accumulated run data to the portal,
6. feeds scores back to the solver,
7. refills reservoirs (``cp_wf_replenish``) or swaps plates
   (``cp_wf_trashplate`` + ``cp_wf_newplate``) as required,

until the sample budget is exhausted or the target is matched, then disposes
of the final plate and computes the SDL metrics of Table 1.

The control loop is written once, as the generator :meth:`ColorPickerApp.program`,
which *yields* every timed interaction (workflow runs, direct module actions,
computational overheads) instead of executing them inline.  :meth:`run` drives
that generator against the sequential :class:`~repro.wei.engine.WorkflowEngine`
exactly as before, while
:class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` drives many programs
interleaved over one shared workcell -- the paper's Section 4 multi-OT-2
ablation, executed rather than merely planned.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.color.distance import score_colors
from repro.core.experiment import ExperimentConfig, ExperimentResult, SampleResult
from repro.core.metrics import compute_metrics, metrics_from_step_results
from repro.core.protocol import build_mix_protocol, ratios_to_volumes
from repro.core.workflows import (
    STAGING_MODES,
    build_mix_colors_workflow,
    build_newplate_workflow,
    build_replenish_workflow,
    build_trashplate_workflow,
)
from repro.hardware.camera import CameraImage
from repro.hardware.labware import Plate
from repro.sim.faults import CommandFailure
from repro.publish.flows import PublicationFlow
from repro.publish.portal import DataPortal
from repro.publish.records import RunRecord, SampleRecord
from repro.solvers.base import ColorSolver, make_solver
from repro.utils.rng import RandomSource
from repro.vision.extraction import WellColorExtractor
from repro.wei.engine import StepResult, WorkflowEngine, WorkflowError, robotic_command_count
from repro.wei.runlog import RunLogger
from repro.wei.workcell import Workcell, build_color_picker_workcell

__all__ = ["ColorPickerApp"]


class ColorPickerApp:
    """The colour-picker application bound to a workcell and a solver.

    Parameters
    ----------
    config:
        Experiment configuration.  When omitted, the paper's defaults are used.
    workcell:
        The (simulated) workcell to run on.  When omitted, the default
        five-module colour-picker workcell is built with the config's seed.
    solver:
        A :class:`~repro.solvers.base.ColorSolver` instance.  When omitted,
        the solver named in the config is instantiated from the registry.
    portal:
        Data portal receiving published run records.  When omitted a fresh
        in-memory portal is created.
    ot2 / barty:
        Module names to target, for workcells with multiple OT-2/barty pairs.
    staging:
        Where the active plate parks between iterations: ``"camera"`` (the
        paper's single-plate flow, the default) or ``"ot2"`` (the plate rests
        on its own OT-2 deck, required when several experiments run
        concurrently on one workcell so plates don't collide at the shared
        camera stage).
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        workcell: Optional[Workcell] = None,
        solver: Optional[ColorSolver] = None,
        portal: Optional[DataPortal] = None,
        run_logger: Optional[RunLogger] = None,
        ot2: str = "ot2",
        barty: str = "barty",
        staging: str = "camera",
    ):
        if staging not in STAGING_MODES:
            raise ValueError(f"unknown staging mode {staging!r}; expected one of {STAGING_MODES}")
        self.config = config if config is not None else ExperimentConfig()
        self.workcell = (
            workcell
            if workcell is not None
            else build_color_picker_workcell(seed=self.config.seed)
        )
        self.ot2_name = ot2
        self.barty_name = barty
        self.staging = staging
        self._ot2_module = self.workcell.module(ot2)
        self._barty_module = self.workcell.module(barty)

        n_dyes = self.workcell.chemistry.dyes.n_dyes
        randomness = RandomSource(self.config.seed)
        if solver is not None:
            self.solver = solver
        else:
            self.solver = make_solver(
                self.config.solver,
                n_dyes=n_dyes,
                seed=randomness.child("solver").generator,
                **self.config.solver_options,
            )
        if self.solver.n_dyes != n_dyes:
            raise ValueError(
                f"solver expects {self.solver.n_dyes} dyes but the workcell chemistry has {n_dyes}"
            )

        self.portal = portal if portal is not None else DataPortal()
        self.flow = PublicationFlow(self.portal)
        self.run_logger = run_logger if run_logger is not None else RunLogger()
        self.engine = WorkflowEngine(self.workcell, run_logger=self.run_logger)
        self.extractor = WellColorExtractor(
            config=self.workcell.module("camera").device.image_config
        )
        self._measurement_rng = randomness.child("measurement").generator

        # Workflow specifications, retargeted at the configured OT-2 / barty.
        ot2_location = self.workcell.module(ot2).device.deck_location
        self.wf_newplate = build_newplate_workflow(
            ot2=ot2, barty=barty, staging=staging, ot2_location=ot2_location
        )
        self.wf_mix_colors = build_mix_colors_workflow(
            ot2=ot2, ot2_location=ot2_location, staging=staging
        )
        self.wf_trashplate = build_trashplate_workflow(
            barty=barty, staging=staging, ot2_location=ot2_location
        )
        self.wf_replenish = build_replenish_workflow(barty=barty)

        self._active_plate: Optional[Plate] = None
        self._workflow_counts: Dict[str, int] = {}
        self._run_index: Optional[int] = self.config.run_index
        self._step_records: List[StepResult] = []

    # ------------------------------------------------------------------
    # Program plumbing
    #
    # Every helper that takes simulated time is a generator yielding one of
    # the requests understood by the engines (see repro.wei.concurrent):
    #   ("workflow", spec, payload) -> WorkflowRunResult
    #   ("action", module, action, kwargs) -> ActionInvocation
    #   ("sleep", seconds) -> None
    # ------------------------------------------------------------------
    def _run_workflow(self, spec, payload=None):
        try:
            result = yield ("workflow", spec, payload)
        except WorkflowError as exc:
            # The steps that succeeded before the failure still happened;
            # keep them so lane-scoped metrics count the real work.
            if exc.run_result is not None:
                self._step_records.extend(exc.run_result.steps)
            raise
        self._workflow_counts[spec.name] = self._workflow_counts.get(spec.name, 0) + 1
        self._step_records.extend(result.steps)
        return result

    def _invoke_action(self, module_name: str, action: str, **kwargs):
        invocation = yield ("action", module_name, action, kwargs)
        if invocation.records:
            start = min(record.start_time for record in invocation.records)
            end = max(record.end_time for record in invocation.records)
        else:
            start = end = self.workcell.clock.now()
        self._step_records.append(
            StepResult(
                step_name=f"direct.{module_name}.{action}",
                module=module_name,
                action=action,
                start_time=start,
                end_time=end,
                success=True,
                return_value=invocation.return_value,
                commands=invocation.commands,
                robotic_commands=robotic_command_count(invocation),
            )
        )
        return invocation

    def _charge_overhead(self, module: str, action: str, units: float = 1.0):
        """Account simulated time for a computational / publication step."""
        duration = self.workcell.durations.sample(
            module, action, rng=self._measurement_rng, units=units
        )
        yield ("sleep", duration)
        return duration

    def _execute_sequential(self, request):
        kind = request[0]
        if kind == "workflow":
            return self.engine.run_workflow(request[1], payload=request[2])
        if kind == "action":
            # Match ConcurrentWorkflowEngine: a direct action's command
            # failure surfaces as WorkflowError so the recovery path treats
            # both engines identically.
            try:
                return self.workcell.module(request[1]).invoke(request[2], **request[3])
            except CommandFailure as exc:
                raise WorkflowError(
                    f"action {request[1]}.{request[2]} failed: {exc}"
                ) from exc
        if kind == "sleep":
            self.workcell.clock.advance(float(request[1]))
            return None
        raise ValueError(f"unknown program request kind {kind!r}")

    @property
    def active_plate(self) -> Optional[Plate]:
        """The plate currently in play (None before the first newplate workflow)."""
        return self._active_plate

    # ------------------------------------------------------------------
    # Plate / reservoir management (the checks in Figure 2)
    # ------------------------------------------------------------------
    def _needs_new_plate(self, batch_size: int) -> bool:
        if self._active_plate is None:
            return True
        return self._active_plate.remaining_capacity < batch_size

    def _acquire_new_plate(self):
        if self._active_plate is not None:
            yield from self._run_workflow(self.wf_trashplate)
            self._active_plate = None
        result = yield from self._run_workflow(self.wf_newplate)
        plate = result.steps[0].return_value
        if not isinstance(plate, Plate):  # pragma: no cover - defensive
            raise RuntimeError("cp_wf_newplate did not return a plate from the sciclops")
        self._active_plate = plate

    def _maybe_replenish(self, protocol):
        ot2_device = self._ot2_module.device
        if not ot2_device.can_run(protocol):
            # The next protocol needs more liquid than remains: refill everything.
            yield from self._run_workflow(self.wf_replenish, payload={"low_threshold": 1.0})
        elif ot2_device.reservoirs_low(self.config.reservoir_low_threshold):
            yield from self._run_workflow(
                self.wf_replenish, payload={"low_threshold": self.config.reservoir_low_threshold}
            )
        # One replacement swaps in a full rack, so a single refill is both
        # necessary and sufficient; if the protocol needs more tips than a
        # fresh rack holds, run_protocol reports the real problem.
        if ot2_device.tip_rack.remaining < protocol.n_wells * ot2_device.tips_per_well:
            yield from self._invoke_action(self.ot2_name, "replace_tips")

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _measure_wells(self, image: Optional[CameraImage], wells: List[str], volumes: np.ndarray):
        """Return the measured RGB of each well in ``wells``.

        In ``vision`` mode the synthetic photograph is processed by the full
        fiducial/Hough/grid pipeline; in ``direct`` mode the chemistry model
        plus sensor noise stands in for it (fast path for large sweeps).
        """
        yield from self._charge_overhead("compute", "image_processing")
        if self.config.measurement == "vision":
            if image is None:
                raise RuntimeError("vision measurement requested but no camera image is available")
            extraction = self.extractor.extract(image.pixels)
            return extraction.colors_for(wells)
        true_colors = self.workcell.chemistry.mix(volumes)
        noise = self._measurement_rng.normal(
            0.0, self.config.direct_noise_sigma, size=true_colors.shape
        )
        return np.clip(true_colors + noise, 0.0, 255.0)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def _resolve_run_index(self) -> int:
        """The portal run index for this run (stable across its uploads).

        When the config does not pin one, the index continues from the runs
        already published to this experiment, so several standalone runs
        sharing an experiment id keep distinct indices instead of all
        landing on 0.  (Concurrent publishers to one experiment should pin
        ``config.run_index`` explicitly.)
        """
        if self._run_index is None:
            taken = [
                record.run_index
                for record in self.portal.search(experiment_id=self.config.experiment_id)
                if record.run_id != self.config.run_id
            ]
            self._run_index = max(taken) + 1 if taken else 0
        return self._run_index

    def _publish(self, samples: List[SampleResult], image: Optional[CameraImage]):
        yield from self._charge_overhead("publish", "upload")
        config = self.config
        record = RunRecord(
            experiment_id=config.experiment_id,
            run_id=config.run_id,
            run_index=self._resolve_run_index(),
            target_rgb=list(config.target.rgb),
            solver=self.solver.name,
            metadata={"batch_size": config.batch_size, "seed": config.seed},
            samples=[
                SampleRecord(
                    sample_index=sample.sample_index,
                    well=sample.well,
                    plate_barcode=sample.plate_barcode,
                    volumes_ul=sample.volumes_ul,
                    measured_rgb=list(sample.measured_rgb),
                    score=sample.score,
                    proposed_by=self.solver.name,
                    timestamp=sample.elapsed_s,
                )
                for sample in samples
            ],
            timings={"elapsed_s": self.workcell.clock.now()},
        )
        pixels = image.pixels if image is not None and config.measurement == "vision" else None
        receipt = self.flow.publish(record, image=pixels)
        return receipt.to_dict()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the experiment sequentially and return its result."""
        program = self.program()
        value: Any = None
        error: Optional[WorkflowError] = None
        while True:
            try:
                request = program.throw(error) if error is not None else program.send(value)
            except StopIteration as stop:
                return stop.value
            value, error = None, None
            try:
                value = self._execute_sequential(request)
            except WorkflowError as exc:
                error = exc

    def program(self) -> Generator:
        """The experiment as an engine-agnostic program (see module docstring).

        Yields timed requests and finally returns the
        :class:`~repro.core.experiment.ExperimentResult`.  Drive it with
        :meth:`run` for sequential execution or submit it to a
        :class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` to interleave
        it with other experiments on a shared workcell.
        """
        config = self.config
        result = ExperimentResult(config=config)
        dye_names = self.workcell.chemistry.dyes.names
        target_rgb = config.target.as_array()
        clock = self.workcell.clock
        start_time = clock.now()

        samples: List[SampleResult] = []
        iteration = 0

        while len(samples) < config.n_samples:
            remaining = config.n_samples - len(samples)
            batch_size = min(config.batch_size, remaining)

            try:
                # Figure 2 "Check: New Plate" -- also covers "Check: Plate Full".
                if self._needs_new_plate(batch_size):
                    yield from self._acquire_new_plate()
                plate = self._active_plate

                # Solver proposes the next batch (Solver.Run_Iteration).
                yield from self._charge_overhead("compute", "solver")
                ratios = np.atleast_2d(self.solver.propose(batch_size))
                wells = plate.next_empty_wells(batch_size)
                protocol = build_mix_protocol(
                    name=f"mix_colors_{iteration:04d}",
                    wells=wells,
                    ratios=ratios,
                    dye_names=dye_names,
                    max_component_volume_ul=config.max_component_volume_ul,
                )

                # Figure 2 "Check: Refill Color" -> cp_wf_replenish.
                yield from self._maybe_replenish(protocol)

                # cp_wf_mix_colors: transfer, mix, transfer back, photograph.
                mix_result = yield from self._run_workflow(
                    self.wf_mix_colors, payload={"protocol": protocol}
                )
            except WorkflowError as error:
                if not config.recover_from_failures:
                    raise
                if len(result.intervention_times) >= config.max_interventions:
                    raise
                yield from self._human_intervention(result, error)
                continue
            image = mix_result.step_values().get("camera.take_picture")
            if not isinstance(image, CameraImage):  # pragma: no cover - defensive
                image = None

            # Image processing + scoring.
            volumes = ratios_to_volumes(ratios, config.max_component_volume_ul)
            measured = yield from self._measure_wells(image, wells, volumes)
            scores = np.atleast_1d(score_colors(measured, target_rgb, config.distance_metric))

            elapsed = clock.now() - start_time
            for offset, (well, ratio_row, volume_row, rgb, score) in enumerate(
                zip(wells, ratios, volumes, measured, scores)
            ):
                samples.append(
                    SampleResult(
                        sample_index=len(samples),
                        iteration=iteration,
                        well=well,
                        plate_barcode=plate.barcode,
                        ratios=ratio_row,
                        volumes_ul={
                            dye: float(volume) for dye, volume in zip(dye_names, volume_row)
                        },
                        measured_rgb=rgb,
                        score=float(score),
                        elapsed_s=elapsed,
                    )
                )

            # Publish the cumulative run data (one upload per iteration, as in
            # the paper's 128 upload steps for the B = 1 run).
            if config.publish:
                receipt = yield from self._publish(samples, image)
                result.publication_receipts.append(receipt)

            # Feed results back to the solver.
            self.solver.observe(ratios, measured, scores)

            iteration += 1

            # Termination on a good-enough match.
            if config.success_threshold is not None and min(scores) <= config.success_threshold:
                result.terminated_early = True
                break

        # Final cp_wf_trashplate to close out the experiment.
        if self._active_plate is not None:
            try:
                yield from self._run_workflow(self.wf_trashplate)
                self._active_plate = None
            except WorkflowError as error:
                if not config.recover_from_failures:
                    raise
                yield from self._human_intervention(result, error)

        end_time = clock.now()
        result.samples = samples
        result.workflow_counts = dict(self._workflow_counts)
        if self.staging == "camera":
            # Single-experiment workcell: the device logs are all ours.
            result.metrics = compute_metrics(
                self.workcell,
                total_colors=len(samples),
                start_time=start_time,
                end_time=end_time,
                intervention_times=result.intervention_times,
            )
        else:
            # Concurrent lanes share devices, so attribute only our own steps.
            result.metrics = metrics_from_step_results(
                self._step_records,
                ot2_modules={self.ot2_name},
                total_colors=len(samples),
                start_time=start_time,
                end_time=end_time,
                intervention_times=result.intervention_times,
            )
        return result

    # ------------------------------------------------------------------
    # Failure recovery
    # ------------------------------------------------------------------
    def _human_intervention(self, result: ExperimentResult, error: Optional[WorkflowError] = None):
        """Simulate a human clearing an unrecoverable failure.

        The paper's TWH metric is defined as the longest stretch without
        intervention, so the timestamp is recorded and the clock is advanced
        by the intervention duration.  Recovery removes whatever plate is in
        play (its contents can no longer be trusted) so the next iteration
        starts from a clean plate.
        """
        clock = self.workcell.clock
        result.intervention_times.append(clock.now())
        yield from self._charge_overhead("human", "intervention")

        deck = self.workcell.deck
        if self.staging == "camera":
            # The human resets the deck: any plate stranded mid-hand-off (at
            # the exchange, the camera stage, an OT-2 deck, ...) is removed to
            # the trash because its state can no longer be trusted.
            for location in deck.locations:
                if location == deck.trash_location:
                    continue
                if deck.is_occupied(location):
                    stranded = deck.remove(location)
                    deck.place(stranded, deck.trash_location)
        else:
            # Concurrent lanes: only this experiment's plates are cleared,
            # the other lanes keep running (that is the point of the
            # ablation).  Besides the active plate, the failed workflow may
            # have had a plate in flight that was never assigned (e.g.
            # cp_wf_newplate failing between get_plate and the transfer,
            # stranding it at the shared exchange) -- find those through the
            # partial run result attached to the error, or they would block
            # every lane's plate fetches forever.
            candidates = []
            if self._active_plate is not None:
                candidates.append(self._active_plate)
            if error is not None and error.run_result is not None:
                for step in error.run_result.steps:
                    if isinstance(step.return_value, Plate):
                        candidates.append(step.return_value)
            for plate in candidates:
                location = deck.find_plate(plate.barcode)
                if location is not None and location != deck.trash_location:
                    deck.place(deck.remove(location), deck.trash_location)
        self._active_plate = None
