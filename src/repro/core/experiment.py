"""Experiment configuration and result types.

:class:`ExperimentConfig` captures every knob of a colour-picker experiment
(the paper's Figure 4 varies ``batch_size`` with everything else fixed);
:class:`ExperimentResult` is what :class:`repro.core.app.ColorPickerApp.run`
returns -- the per-sample history, the best-so-far trajectory plotted in
Figure 4, and the SDL metrics of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.color.distance import DISTANCE_METRICS
from repro.color.targets import TargetColor, get_target
from repro.core.metrics import SdlMetrics
from repro.utils.validation import check_positive, check_probability

__all__ = ["ExperimentConfig", "SampleResult", "ExperimentResult"]

#: Valid measurement modes: full synthetic-image pipeline, or the fast
#: direct-readout path (chemistry + sensor noise) used for large sweeps.
MEASUREMENT_MODES = ("vision", "direct")


@dataclass
class ExperimentConfig:
    """Configuration of one colour-picker experiment.

    Parameters mirror the paper's experimental setup; the defaults reproduce
    the Figure 4 / Table 1 conditions (target RGB (120, 120, 120), N = 128
    samples, GA solver) with a batch size of 1.
    """

    target: Any = "paper-grey"
    n_samples: int = 128
    batch_size: int = 1
    solver: str = "evolutionary"
    solver_options: Dict[str, Any] = field(default_factory=dict)
    distance_metric: str = "euclidean_rgb"
    max_component_volume_ul: float = 80.0
    measurement: str = "direct"
    direct_noise_sigma: float = 2.5
    success_threshold: Optional[float] = None
    reservoir_low_threshold: float = 0.15
    publish: bool = True
    recover_from_failures: bool = False
    max_interventions: int = 10
    seed: Optional[int] = None
    experiment_id: str = ""
    run_id: str = ""
    #: Position of this run within its experiment on the data portal.  When
    #: None (the default) the application derives it from the runs already
    #: published to the experiment, so standalone runs sharing an experiment
    #: id no longer collide at index 0.
    run_index: Optional[int] = None

    def __post_init__(self):
        self.target = get_target(self.target)
        check_positive("n_samples", self.n_samples)
        check_positive("batch_size", self.batch_size)
        check_positive("max_component_volume_ul", self.max_component_volume_ul)
        check_probability("reservoir_low_threshold", self.reservoir_low_threshold)
        if self.direct_noise_sigma < 0:
            raise ValueError(f"direct_noise_sigma must be >= 0, got {self.direct_noise_sigma}")
        if self.batch_size > self.n_samples:
            raise ValueError(
                f"batch_size ({self.batch_size}) cannot exceed n_samples ({self.n_samples})"
            )
        if self.distance_metric not in DISTANCE_METRICS:
            raise ValueError(
                f"unknown distance metric {self.distance_metric!r}; "
                f"expected one of {sorted(DISTANCE_METRICS)}"
            )
        if self.measurement not in MEASUREMENT_MODES:
            raise ValueError(
                f"unknown measurement mode {self.measurement!r}; expected one of {MEASUREMENT_MODES}"
            )
        if self.success_threshold is not None and self.success_threshold < 0:
            raise ValueError("success_threshold must be >= 0 when given")
        if self.max_interventions < 0:
            raise ValueError(f"max_interventions must be >= 0, got {self.max_interventions}")
        if self.run_index is not None and self.run_index < 0:
            raise ValueError(f"run_index must be >= 0 when given, got {self.run_index}")
        if not self.experiment_id:
            self.experiment_id = f"colorpicker-N{self.n_samples}"
        if not self.run_id:
            self.run_id = f"{self.experiment_id}-B{self.batch_size}-seed{self.seed}"

    @property
    def target_color(self) -> TargetColor:
        """The resolved target colour."""
        return self.target

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form stored in run records."""
        return {
            "target": self.target.name,
            "target_rgb": list(self.target.rgb),
            "n_samples": self.n_samples,
            "batch_size": self.batch_size,
            "solver": self.solver,
            "solver_options": dict(self.solver_options),
            "distance_metric": self.distance_metric,
            "max_component_volume_ul": self.max_component_volume_ul,
            "measurement": self.measurement,
            "direct_noise_sigma": self.direct_noise_sigma,
            "success_threshold": self.success_threshold,
            "recover_from_failures": self.recover_from_failures,
            "max_interventions": self.max_interventions,
            "seed": self.seed,
            "experiment_id": self.experiment_id,
            "run_id": self.run_id,
            "run_index": self.run_index,
        }


@dataclass
class SampleResult:
    """One mixed-and-measured sample within an experiment."""

    sample_index: int
    iteration: int
    well: str
    plate_barcode: str
    ratios: np.ndarray
    volumes_ul: Dict[str, float]
    measured_rgb: np.ndarray
    score: float
    elapsed_s: float

    def __post_init__(self):
        self.ratios = np.asarray(self.ratios, dtype=np.float64)
        self.measured_rgb = np.asarray(self.measured_rgb, dtype=np.float64)
        self.score = float(self.score)
        self.elapsed_s = float(self.elapsed_s)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "sample_index": self.sample_index,
            "iteration": self.iteration,
            "well": self.well,
            "plate_barcode": self.plate_barcode,
            "ratios": [float(v) for v in self.ratios],
            "volumes_ul": {k: float(v) for k, v in self.volumes_ul.items()},
            "measured_rgb": [float(v) for v in self.measured_rgb],
            "score": self.score,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class ExperimentResult:
    """Everything produced by one colour-picker experiment."""

    config: ExperimentConfig
    samples: List[SampleResult] = field(default_factory=list)
    metrics: Optional[SdlMetrics] = None
    workflow_counts: Dict[str, int] = field(default_factory=dict)
    terminated_early: bool = False
    publication_receipts: List[Dict[str, Any]] = field(default_factory=list)
    intervention_times: List[float] = field(default_factory=list)

    @property
    def interventions(self) -> int:
        """Number of human interventions the run required (0 for a clean run)."""
        return len(self.intervention_times)

    @property
    def n_samples(self) -> int:
        """Number of samples actually produced (≤ the configured budget)."""
        return len(self.samples)

    @property
    def best_score(self) -> float:
        """Best (lowest) score achieved (inf when no samples were produced)."""
        if not self.samples:
            return float("inf")
        return min(sample.score for sample in self.samples)

    @property
    def best_sample(self) -> Optional[SampleResult]:
        """The best-scoring sample (None when empty)."""
        if not self.samples:
            return None
        return min(self.samples, key=lambda sample: sample.score)

    @property
    def elapsed_s(self) -> float:
        """Total simulated experiment time (seconds)."""
        if self.metrics is not None:
            return self.metrics.time_without_humans_s
        if not self.samples:
            return 0.0
        return max(sample.elapsed_s for sample in self.samples)

    def trajectory(self) -> Tuple[np.ndarray, np.ndarray]:
        """The Figure 4 series: elapsed time (minutes) vs. best score so far.

        One point per sample, in measurement order.
        """
        if not self.samples:
            return np.empty(0), np.empty(0)
        ordered = sorted(self.samples, key=lambda sample: sample.sample_index)
        times = np.array([sample.elapsed_s / 60.0 for sample in ordered])
        scores = np.array([sample.score for sample in ordered])
        best_so_far = np.minimum.accumulate(scores)
        return times, best_so_far

    def scores(self) -> np.ndarray:
        """All raw sample scores in measurement order."""
        ordered = sorted(self.samples, key=lambda sample: sample.sample_index)
        return np.array([sample.score for sample in ordered])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used by the portal and the benchmarks)."""
        return {
            "config": self.config.to_dict(),
            "n_samples": self.n_samples,
            "best_score": self.best_score if self.samples else None,
            "terminated_early": self.terminated_early,
            "interventions": self.interventions,
            "workflow_counts": dict(self.workflow_counts),
            "metrics": self.metrics.to_dict() if self.metrics is not None else None,
            "samples": [sample.to_dict() for sample in self.samples],
        }
