"""Multi-run campaigns (the paper's Figure 3 experiment).

The data-portal view in Figure 3 summarises "an experiment performed on
August 16th, 2023, involving 12 runs each with 15 samples, for a total of 180
experiments".  :func:`run_campaign` reproduces that usage pattern: a sequence
of short colour-picker runs, each published to the same experiment on the
portal, optionally cycling through different target colours.

With ``n_ot2 > 1`` the campaign switches to the paper's Section 4 ablation,
*executed* rather than planned: one shared workcell is built with ``n_ot2``
OT-2/barty lanes and the runs are interleaved by the
:class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` -- each lane works
through its share of the runs while the pf400, sciclops and camera are shared
(more commands in flight, lower total wall time; the CCWH/TWH trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.publish.portal import DataPortal
from repro.publish.records import RunRecord, SampleRecord
from repro.wei.concurrent import ConcurrentWorkflowEngine, run_programs_on_lanes
from repro.wei.workcell import build_color_picker_workcell

__all__ = ["CampaignResult", "run_campaign"]


@dataclass
class CampaignResult:
    """The outcome of a campaign of runs published to a shared portal."""

    experiment_id: str
    portal: DataPortal
    runs: List[ExperimentResult] = field(default_factory=list)
    #: Number of OT-2 lanes the campaign executed on (1 = sequential).
    n_ot2: int = 1
    #: Total simulated time of the whole campaign: the sum of run durations
    #: when sequential, the shared-clock makespan when concurrent.
    makespan_s: float = 0.0

    @property
    def n_runs(self) -> int:
        """Number of runs executed."""
        return len(self.runs)

    @property
    def total_samples(self) -> int:
        """Total samples across all runs (the paper's 12 x 15 = 180)."""
        return sum(run.n_samples for run in self.runs)

    @property
    def best_score(self) -> float:
        """Best score achieved by any run."""
        return min((run.best_score for run in self.runs), default=float("inf"))

    def summary_view(self) -> Dict[str, Any]:
        """The portal's experiment summary view (Figure 3, left)."""
        return self.portal.summary_view(self.experiment_id)

    def detail_view(self, run_index: int) -> Dict[str, Any]:
        """The portal's per-run detail view (Figure 3, right)."""
        records = self.portal.search(experiment_id=self.experiment_id)
        for record in records:
            if record.run_index == run_index:
                return self.portal.detail_view(record.run_id)
        raise KeyError(f"campaign has no published run with index {run_index}")


def _campaign_config(
    *,
    experiment_id: str,
    run_index: int,
    samples_per_run: int,
    targets: Optional[Sequence[Any]],
    batch_size: int,
    solver: str,
    measurement: str,
    seed: Optional[int],
) -> ExperimentConfig:
    target = targets[run_index % len(targets)] if targets else "paper-grey"
    run_seed = None if seed is None else seed + run_index
    return ExperimentConfig(
        target=target,
        n_samples=samples_per_run,
        batch_size=min(batch_size, samples_per_run),
        solver=solver,
        measurement=measurement,
        seed=run_seed,
        publish=False,  # the campaign publishes one consolidated record per run
        experiment_id=experiment_id,
        run_id=f"{experiment_id}-run{run_index:03d}",
        run_index=run_index,
    )


def _campaign_record(
    config: ExperimentConfig, result: ExperimentResult, solver: str, run_index: int
) -> RunRecord:
    return RunRecord(
        experiment_id=config.experiment_id,
        run_id=config.run_id,
        run_index=run_index,
        target_rgb=list(config.target.rgb),
        solver=solver,
        metadata={"batch_size": config.batch_size, "seed": config.seed},
        timings={
            "elapsed_s": result.elapsed_s,
            "synthesis_s": result.metrics.synthesis_time_s if result.metrics else 0.0,
            "transfer_s": result.metrics.transfer_time_s if result.metrics else 0.0,
        },
        samples=[
            SampleRecord(
                sample_index=sample.sample_index,
                well=sample.well,
                plate_barcode=sample.plate_barcode,
                volumes_ul=sample.volumes_ul,
                measured_rgb=list(sample.measured_rgb),
                score=sample.score,
                proposed_by=solver,
                timestamp=sample.elapsed_s,
            )
            for sample in result.samples
        ],
    )


def run_campaign(
    n_runs: int = 12,
    samples_per_run: int = 15,
    *,
    experiment_id: str = "acdc-campaign",
    targets: Optional[Sequence[Any]] = None,
    batch_size: int = 1,
    solver: str = "evolutionary",
    measurement: str = "direct",
    seed: Optional[int] = 816,
    portal: Optional[DataPortal] = None,
    n_ot2: int = 1,
) -> CampaignResult:
    """Run ``n_runs`` short experiments and publish each to the same portal experiment.

    Parameters
    ----------
    targets:
        Optional sequence of target colours to cycle through (defaults to the
        paper's grey for every run).
    seed:
        Campaign seed; run ``i`` uses ``seed + i`` so runs are independent but
        the whole campaign is reproducible.
    n_ot2:
        Number of OT-2/barty lanes.  1 (the default) runs the campaign
        sequentially, each run on a fresh workcell, exactly as before.
        ``n_ot2 > 1`` builds one shared workcell and *executes* the runs
        concurrently -- run ``i`` is pinned to lane ``i % n_ot2`` and lanes
        interleave over the shared pf400/sciclops/camera.  With
        ``measurement="direct"`` (the default) solver proposals and measured
        scores are identical to the sequential campaign with the same seed
        (only the timing differs), which is what makes the TWH-vs-CCWH
        comparison meaningful; ``"vision"`` mode draws camera noise from the
        shared device in interleaving order, so scores differ slightly.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    if samples_per_run < 1:
        raise ValueError(f"samples_per_run must be >= 1, got {samples_per_run}")
    if n_ot2 < 1:
        raise ValueError(f"n_ot2 must be >= 1, got {n_ot2}")
    portal = portal if portal is not None else DataPortal()
    campaign = CampaignResult(experiment_id=experiment_id, portal=portal, n_ot2=n_ot2)

    configs = [
        _campaign_config(
            experiment_id=experiment_id,
            run_index=run_index,
            samples_per_run=samples_per_run,
            targets=targets,
            batch_size=batch_size,
            solver=solver,
            measurement=measurement,
            seed=seed,
        )
        for run_index in range(n_runs)
    ]

    if n_ot2 == 1:
        for run_index, config in enumerate(configs):
            workcell = build_color_picker_workcell(seed=config.seed)
            app = ColorPickerApp(config, workcell=workcell, portal=portal)
            result = app.run()
            campaign.runs.append(result)
            portal.ingest(_campaign_record(config, result, solver, run_index))
        campaign.makespan_s = sum(run.elapsed_s for run in campaign.runs)
        return campaign

    workcell = build_color_picker_workcell(seed=seed, n_ot2=n_ot2)
    engine = ConcurrentWorkflowEngine(workcell)
    lanes = workcell.ot2_barty_pairs()
    apps = []
    for run_index, config in enumerate(configs):
        ot2, barty = lanes[run_index % n_ot2]
        apps.append(
            ColorPickerApp(
                config, workcell=workcell, portal=portal, ot2=ot2, barty=barty, staging="ot2"
            )
        )

    results = run_programs_on_lanes(
        engine,
        [app.program() for app in apps],
        n_ot2,
        lane_names=[ot2 for ot2, _ in lanes],
    )
    for run_index, (config, result) in enumerate(zip(configs, results)):
        campaign.runs.append(result)
        portal.ingest(_campaign_record(config, result, solver, run_index))
    campaign.makespan_s = engine.makespan
    return campaign
