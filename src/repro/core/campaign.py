"""Multi-run campaigns (the paper's Figure 3 experiment).

The data-portal view in Figure 3 summarises "an experiment performed on
August 16th, 2023, involving 12 runs each with 15 samples, for a total of 180
experiments".  :func:`run_campaign` reproduces that usage pattern: a sequence
of short colour-picker runs, each published to the same experiment on the
portal, optionally cycling through different target colours.

With ``n_ot2 > 1`` the campaign switches to the paper's Section 4 ablation,
*executed* rather than planned: one shared workcell is built with ``n_ot2``
OT-2/barty lanes and the runs are interleaved by the
:class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` -- each lane works
through its share of the runs while the pf400, sciclops and camera are shared
(more commands in flight, lower total wall time; the CCWH/TWH trade-off).
Lanes *steal* the next pending run as they free (least-finish-time
assignment) unless ``assignment="static"`` pins run ``i`` to lane ``i % k``.

With ``n_workcells > 1`` the campaign is sharded across several independent
workcells by a :class:`~repro.wei.coordinator.MultiWorkcellCoordinator`:
every lane of every workcell pulls from one shared run queue, the runs'
records merge into a single portal experiment with their original
``run_index``es, and the campaign makespan is the slowest shard's.

With ``transport="paced"`` the campaign runs in *real time*: every module is
backed by a :class:`~repro.wei.drivers.mock.PacedMockTransport` that paces
each action's sampled duration against a wall clock compressed by
``speedup`` and delivers completions out-of-band from driver worker threads.
The simulated timestamps -- and therefore every sample and score -- are
identical to the sim-clock campaign with the same seed; only the real
elapsed time (and the completion-delivery plumbing) differs.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.obs import tracer as obs_tracer
from repro.publish.portal import DataPortal, PortalBackend
from repro.publish.records import RunRecord, SampleRecord
from repro.sim.durations import DurationTable, ModuleSpeedProfile, paper_calibrated_durations
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.coordinator import (
    ASSIGNMENT_POLICIES,
    MultiWorkcellCoordinator,
    RunCompletion,
    ShardAssignment,
)
from repro.wei.drivers.registry import DriverRegistry
from repro.wei.workcell import build_color_picker_workcell

__all__ = [
    "TRANSPORT_MODES",
    "CampaignResult",
    "TransportReport",
    "predict_experiment_duration",
    "run_campaign",
]

#: Execution modes understood by :func:`run_campaign` (and the CLI):
#: ``"sim"`` completes every action inline on the simulated clock,
#: ``"paced"`` delivers completions out-of-band at wall-clock pace / speedup,
#: ``"wire"`` additionally speaks the framed byte-stream protocol
#: (CRC-checked frames, ACK/retry, reconnect-with-resync) and accepts a
#: seeded :class:`~repro.wei.chaos.ChaosSchedule` to attack it.
TRANSPORT_MODES = ("sim", "paced", "wire")


@dataclass(frozen=True)
class TransportReport:
    """Typed fleet-wide transport snapshot for a campaign.

    Replaces the untyped ``transport_stats`` dict: every counter is composed
    from per-component snapshots each taken atomically under its owning lock
    (:class:`~repro.wei.drivers.bridge.BridgeStats` under the bridge
    condition, :class:`~repro.wei.concurrent.TransportRetryStats` from the
    wire transports' own conditions), so the report can never mix counters
    from two different instants of one component.

    Historical dict access keeps working -- ``stats["delivered"]``,
    ``"retries" in stats``, ``dict(stats)``, ``if campaign.transport_stats:``
    -- through :func:`dataclasses.asdict`-backed mapping views.  ``present``
    is ``False`` for sim campaigns, which makes the report falsy and iterate
    as empty, exactly like the historical empty dict.
    """

    delivered: int = 0
    rejected_duplicate: int = 0
    rejected_late: int = 0
    timed_out: int = 0
    wall_elapsed_s: float = 0.0
    mean_delivery_latency_s: float = 0.0
    max_delivery_latency_s: float = 0.0
    retries: int = 0
    resyncs: int = 0
    crc_errors: int = 0
    duplicates_dropped: int = 0
    completions_retransmitted: int = 0
    #: Whether the campaign had a transport at all (``False`` for sim).
    present: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """The historical dict shape (``{}`` when no transport ran)."""
        if not self.present:
            return {}
        data = asdict(self)
        del data["present"]
        return data

    # -- dict-style views ------------------------------------------------
    def __bool__(self) -> bool:
        return self.present

    def __getitem__(self, key: str) -> Any:
        return self.to_dict()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self.to_dict())

    def __len__(self) -> int:
        return len(self.to_dict())

    def __contains__(self, key: object) -> bool:
        return key in self.to_dict()

    def keys(self):
        """Counter names, dict-style."""
        return self.to_dict().keys()

    def items(self):
        """``(name, value)`` pairs, dict-style."""
        return self.to_dict().items()

    def values(self):
        """Counter values, dict-style."""
        return self.to_dict().values()

    def get(self, key: str, default: Any = None) -> Any:
        """Dict-style lookup with a default."""
        return self.to_dict().get(key, default)


@dataclass
class CampaignResult:
    """The outcome of a campaign of runs published to a shared portal."""

    experiment_id: str
    #: Any portal backend: the in-memory :class:`DataPortal` or the durable
    #: :class:`~repro.publish.store.DurableDataPortal` behave identically here.
    portal: PortalBackend
    runs: List[ExperimentResult] = field(default_factory=list)
    #: Number of OT-2 lanes per workcell (1 = sequential within a workcell).
    n_ot2: int = 1
    #: Number of independent workcells the campaign was sharded across.
    n_workcells: int = 1
    #: Total simulated time of the whole campaign: the sum of run durations
    #: when sequential, the shared-clock makespan when concurrent, the
    #: slowest shard's makespan when sharded across workcells.
    makespan_s: float = 0.0
    #: Per-shard makespans when ``n_workcells > 1`` (empty otherwise).
    workcell_makespans: List[float] = field(default_factory=list)
    #: Which shard/lane executed each run, in run order, for the concurrent
    #: and sharded modes (empty for the sequential campaign).
    assignments: List[Optional[ShardAssignment]] = field(default_factory=list)
    #: Execution mode the campaign ran under (``"sim"`` or ``"paced"``).
    transport: str = "sim"
    #: Transport-layer report for transport campaigns: completion counts,
    #: the real wall seconds the campaign took, delivery-latency summary
    #: statistics and wire recovery counters.  A typed
    #: :class:`TransportReport` that still answers dict-style access; falsy
    #: and empty for sim campaigns.
    transport_stats: TransportReport = field(default_factory=TransportReport)

    @property
    def n_runs(self) -> int:
        """Number of runs executed."""
        return len(self.runs)

    @property
    def total_samples(self) -> int:
        """Total samples across all runs (the paper's 12 x 15 = 180)."""
        return sum(run.n_samples for run in self.runs)

    @property
    def best_score(self) -> float:
        """Best score achieved by any run."""
        return min((run.best_score for run in self.runs), default=float("inf"))

    def summary_view(self) -> Dict[str, Any]:
        """The portal's experiment summary view (Figure 3, left)."""
        return self.portal.summary_view(self.experiment_id)

    def detail_view(self, run_index: int) -> Dict[str, Any]:
        """The portal's per-run detail view (Figure 3, right)."""
        records = self.portal.search(experiment_id=self.experiment_id)
        for record in records:
            if record.run_index == run_index:
                return self.portal.detail_view(record.run_id)
        raise KeyError(f"campaign has no published run with index {run_index}")


#: Wells per plate (standard 96-well SBS plate, matching
#: :class:`~repro.hardware.labware.Plate`) and dyes the barty fills/drains per
#: plate (the CMYK set every colour-picker workcell mounts).
_PLATE_CAPACITY = 96
_N_DYES = 4


def predict_experiment_duration(
    config: ExperimentConfig, durations: Optional[DurationTable] = None
) -> float:
    """Predicted run duration (seconds) from :class:`DurationTable` means.

    Walks the actions one colour-picker experiment issues, mirroring
    :meth:`ColorPickerApp.program`:

    * per plate, ``cp_wf_newplate`` (sciclops ``get_plate`` + pf400
      ``transfer`` + barty ``fill_colors`` over the dye set) and
      ``cp_wf_trashplate`` (pf400 ``transfer`` + barty ``drain_colors``) --
      every plate is trashed, the intermediates by ``_acquire_new_plate``
      and the last one at the end of the run;
    * per batch, the solver step, ``cp_wf_mix_colors`` (OT-2
      ``run_protocol`` over the batch's wells + two pf400 ``transfer`` moves
      + camera ``take_picture``), image processing, and the optional portal
      upload.

    Pass ``durations`` to predict against the table a specific lane actually
    runs (heterogeneous fleets); the default is the paper-calibrated table.

    Known approximations -- this is deliberately a *prediction*, built to
    rank jobs for LPT/lookahead scheduling where relative ordering matters,
    not to forecast the makespan:

    * jitter is ignored (``DurationModel.mean`` per action);
    * reservoir refills (``cp_wf_replenish``) and OT-2 tip-rack replacement
      are ignored -- both depend on runtime consumable state;
    * retries and human interventions are ignored;
    * plate packing assumes batches fill plates in order, exact whenever the
      plate capacity (96) is a multiple of the batch size.
    """
    table = durations if durations is not None else paper_calibrated_durations()
    batch = max(1, min(config.batch_size, config.n_samples))
    full, remainder = divmod(config.n_samples, batch)
    batch_sizes = [batch] * full + ([remainder] if remainder else [])
    plates = max(1, math.ceil(config.n_samples / _PLATE_CAPACITY))
    n_dyes = _N_DYES

    # cp_wf_newplate and cp_wf_trashplate, once per plate each.
    total = plates * (
        table.mean("sciclops", "get_plate")
        + table.mean("pf400", "transfer")
        + table.mean("barty", "fill_colors", units=n_dyes)
    )
    total += plates * (
        table.mean("pf400", "transfer") + table.mean("barty", "drain_colors", units=n_dyes)
    )
    for wells in batch_sizes:
        total += (
            table.mean("compute", "solver")
            + table.mean("ot2", "run_protocol", units=wells)
            + 2.0 * table.mean("pf400", "transfer")
            + table.mean("camera", "take_picture")
            + table.mean("compute", "image_processing")
        )
        if config.publish:
            total += table.mean("publish", "upload")
    return total


def _campaign_config(
    *,
    experiment_id: str,
    run_index: int,
    samples_per_run: int,
    targets: Optional[Sequence[Any]],
    batch_size: int,
    solver: str,
    measurement: str,
    seed: Optional[int],
) -> ExperimentConfig:
    target = targets[run_index % len(targets)] if targets else "paper-grey"
    run_seed = None if seed is None else seed + run_index
    return ExperimentConfig(
        target=target,
        n_samples=samples_per_run,
        batch_size=min(batch_size, samples_per_run),
        solver=solver,
        measurement=measurement,
        seed=run_seed,
        publish=False,  # the campaign publishes one consolidated record per run
        experiment_id=experiment_id,
        run_id=f"{experiment_id}-run{run_index:03d}",
        run_index=run_index,
    )


def _campaign_record(
    config: ExperimentConfig, result: ExperimentResult, solver: str, run_index: int
) -> RunRecord:
    return RunRecord(
        experiment_id=config.experiment_id,
        run_id=config.run_id,
        run_index=run_index,
        target_rgb=list(config.target.rgb),
        solver=solver,
        metadata={"batch_size": config.batch_size, "seed": config.seed},
        timings={
            "elapsed_s": result.elapsed_s,
            "synthesis_s": result.metrics.synthesis_time_s if result.metrics else 0.0,
            "transfer_s": result.metrics.transfer_time_s if result.metrics else 0.0,
        },
        samples=[
            SampleRecord(
                sample_index=sample.sample_index,
                well=sample.well,
                plate_barcode=sample.plate_barcode,
                volumes_ul=sample.volumes_ul,
                measured_rgb=list(sample.measured_rgb),
                score=sample.score,
                proposed_by=solver,
                timestamp=sample.elapsed_s,
            )
            for sample in result.samples
        ],
    )


def run_campaign(
    n_runs: int = 12,
    samples_per_run: int = 15,
    *,
    experiment_id: str = "acdc-campaign",
    targets: Optional[Sequence[Any]] = None,
    batch_size: int = 1,
    solver: str = "evolutionary",
    measurement: str = "direct",
    seed: Optional[int] = 816,
    portal: Optional[PortalBackend] = None,
    n_ot2: int = 1,
    n_workcells: int = 1,
    assignment: str = "work-stealing",
    module_speeds: Optional[Any] = None,
    coordinator: Optional[MultiWorkcellCoordinator] = None,
    on_run_complete: Optional[Callable[[RunCompletion], None]] = None,
    transport: str = "sim",
    speedup: float = 1000.0,
    completion_timeout_s: float = 60.0,
    chaos: Optional[Any] = None,
) -> CampaignResult:
    """Run ``n_runs`` short experiments and publish each to the same portal experiment.

    Parameters
    ----------
    targets:
        Optional sequence of target colours to cycle through (defaults to the
        paper's grey for every run).
    seed:
        Campaign seed; run ``i`` uses ``seed + i`` so runs are independent but
        the whole campaign is reproducible.
    n_ot2:
        Number of OT-2/barty lanes per workcell.  1 (the default) runs the
        campaign sequentially, each run on a fresh workcell, exactly as
        before.  ``n_ot2 > 1`` builds one shared workcell and *executes* the
        runs concurrently over its lanes.  With ``measurement="direct"``
        (the default) solver proposals and measured scores are identical to
        the sequential campaign with the same seed (only the timing
        differs), which is what makes the TWH-vs-CCWH comparison
        meaningful; ``"vision"`` mode draws camera noise from the shared
        device in interleaving order, so scores differ slightly.
    n_workcells:
        Number of independent workcells to shard the campaign across.  With
        ``n_workcells > 1`` a :class:`MultiWorkcellCoordinator` drives one
        engine per workcell (each with ``n_ot2`` lanes) and every lane pulls
        the next pending run from one shared queue; the runs' records still
        publish to the single ``experiment_id`` with their original
        ``run_index``es, so the portal view is one merged campaign.
    assignment:
        ``"work-stealing"`` (the default) lets lanes claim the next pending
        run the moment they free -- least-finish-time assignment, which on
        uneven run durations beats ``"static"``'s run-``i``-to-lane-``i % k``
        pinning (kept for comparison benchmarks).  ``"stealing-lpt"`` sorts
        the shared queue longest-predicted-first (lane-aware on
        heterogeneous fleets); ``"lookahead"`` re-ranks the remaining queue
        each time a lane frees, correcting predictions with the observed
        drift per shard.  See ``docs/scheduling.md`` for the full policy
        matrix.
    module_speeds:
        Per-module hardware speed factors describing a heterogeneous fleet:
        a :class:`~repro.sim.durations.ModuleSpeedProfile`, a mapping like
        ``{"ot2": 2.5}``, a spec string ``"ot2=2.5,pf400=0.5"`` (all
        broadcast to every workcell), or a sequence of ``n_workcells`` such
        values giving each shard its own profile.  A speed of 2.5 means
        that module runs 2.5x faster than the paper-calibrated baseline.
        Speeds only rescale action *durations*; with
        ``measurement="direct"`` the science (proposals, scores, portal
        records) stays bit-identical to the homogeneous campaign with the
        same seed.  Rejected together with an explicit ``coordinator``
        (whose engines already own their duration tables).
    coordinator:
        An existing :class:`MultiWorkcellCoordinator` to run the campaign on
        (overrides ``n_workcells``); each of its workcells needs at least
        ``n_ot2`` OT-2/barty lanes.  Pass one to reshape the fleet while the
        campaign runs: an ``on_run_complete`` hook may call
        ``coordinator.attach_workcell`` / ``drain_workcell`` mid-flight.
    on_run_complete:
        Callback fired with a :class:`~repro.wei.coordinator.RunCompletion`
        as each run finishes -- *after* its record has been ingested into
        the portal, so the callback sees the streamed state.  Sequential
        campaigns fire it too, with ``assignment=None``.
    transport:
        ``"sim"`` (the default) completes every action inline on the
        simulated clock; ``"paced"`` backs every module with a
        :class:`~repro.wei.drivers.mock.PacedMockTransport` so completions
        arrive out-of-band from driver threads, paced at wall-clock speed /
        ``speedup``; ``"wire"`` backs every workcell with a
        :class:`~repro.wei.drivers.protocol.WireProtocolTransport` whose
        actions travel as CRC-checked frames over a byte pipe with
        ACK/retry and reconnect-with-resync.  Scores and portal records are
        identical in every mode (same seeds, same sampled durations);
        ``campaign.transport_stats`` reports the delivery counters, latency
        and -- for the wire -- retry/resync/CRC accounting.  A transport
        campaign always uses the coordinated execution path, even for a
        single lane.  Ignored when an explicit ``coordinator`` is passed
        (its engines keep whatever transports they were built with).
    speedup:
        Wall-clock compression for the transport modes: 1000 paces 1000
        simulated seconds per real second; ``1`` is hardware speed.
    completion_timeout_s:
        Real seconds a transport-backed engine waits for one completion
        before failing the run with
        :class:`~repro.wei.drivers.base.CompletionTimeout`.
    chaos:
        Optional seeded :class:`~repro.wei.chaos.ChaosSchedule` injected
        into a ``transport="wire"`` campaign's frames (shared across every
        workcell's transport).  The protocol recovers every injected fault,
        so scores and portal contents still match the sim baseline -- the
        invariant ``python -m repro soak`` asserts across a whole seed
        matrix.  Rejected for other transports.

    In every mode each run's record streams into the portal the moment the
    run completes (never post-hoc), tagged with the executing workcell and
    lane when the campaign is coordinated; the portal therefore holds every
    record before this function returns.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    if samples_per_run < 1:
        raise ValueError(f"samples_per_run must be >= 1, got {samples_per_run}")
    if n_ot2 < 1:
        raise ValueError(f"n_ot2 must be >= 1, got {n_ot2}")
    if n_workcells < 1:
        raise ValueError(f"n_workcells must be >= 1, got {n_workcells}")
    if assignment not in ASSIGNMENT_POLICIES:
        raise ValueError(
            f"unknown assignment policy {assignment!r}; expected one of {ASSIGNMENT_POLICIES}"
        )
    if transport not in TRANSPORT_MODES:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORT_MODES}"
        )
    if chaos is not None and transport != "wire":
        raise ValueError(
            f"chaos schedules require transport='wire', got transport={transport!r}"
        )
    if not (speedup > 0.0):
        raise ValueError(f"speedup must be > 0, got {speedup}")
    speed_profiles: Optional[tuple] = None
    if module_speeds is not None:
        if coordinator is not None:
            raise ValueError(
                "module_speeds cannot be combined with an explicit coordinator; "
                "build the fleet with the profiles instead "
                "(MultiWorkcellCoordinator.build_color_picker_fleet(module_speeds=...))"
            )
        speed_profiles = ModuleSpeedProfile.broadcast(module_speeds, n_workcells)
        known = set(paper_calibrated_durations().modules())
        for profile in speed_profiles:
            unknown = sorted(set(profile.speeds) - known)
            if unknown:
                raise ValueError(
                    f"unknown module(s) in module_speeds: {', '.join(unknown)}; "
                    f"expected names from {sorted(known)}"
                )
        if all(profile.is_identity for profile in speed_profiles):
            speed_profiles = None
    portal = portal if portal is not None else DataPortal()
    campaign = CampaignResult(
        experiment_id=experiment_id,
        portal=portal,
        n_ot2=n_ot2,
        n_workcells=n_workcells,
        transport=transport,
    )

    configs = [
        _campaign_config(
            experiment_id=experiment_id,
            run_index=run_index,
            samples_per_run=samples_per_run,
            targets=targets,
            batch_size=batch_size,
            solver=solver,
            measurement=measurement,
            seed=seed,
        )
        for run_index in range(n_runs)
    ]

    # The "campaign" span roots every trace: run spans recorded by the
    # engines (claim→done windows on any shard) attach to it through the
    # "campaign" binding rather than the thread stack.
    with obs_tracer.span(
        "campaign",
        experiment_id=experiment_id,
        n_runs=n_runs,
        samples_per_run=samples_per_run,
        transport=transport,
        n_workcells=n_workcells,
        n_ot2=n_ot2,
    ) as campaign_span:
        if campaign_span.span is not None:
            obs_tracer.bind("campaign", campaign_span.span.span_id)
        try:
            if n_workcells > 1 or n_ot2 > 1 or coordinator is not None or transport != "sim":
                return _run_coordinated_campaign(
                    campaign,
                    configs,
                    solver=solver,
                    seed=seed,
                    assignment=assignment,
                    speed_profiles=speed_profiles,
                    coordinator=coordinator,
                    on_run_complete=on_run_complete,
                    speedup=speedup,
                    completion_timeout_s=completion_timeout_s,
                    chaos=chaos,
                )

            sequential_durations: Optional[DurationTable] = None
            if speed_profiles is not None:
                sequential_durations = speed_profiles[0].apply(paper_calibrated_durations())
            elapsed = 0.0
            for run_index, config in enumerate(configs):
                workcell = build_color_picker_workcell(
                    seed=config.seed, durations=sequential_durations
                )
                app = ColorPickerApp(config, workcell=workcell, portal=portal)
                result = app.run()
                campaign.runs.append(result)
                record = _campaign_record(config, result, solver, run_index)
                with obs_tracer.span(
                    "portal.ingest", run_id=record.run_id, run_index=run_index
                ):
                    portal.ingest(record)
                # Sequential runs share one notional clock: each starts where
                # the previous ended, so completion times are monotonic like
                # a shard's.
                elapsed += result.elapsed_s
                if on_run_complete is not None:
                    on_run_complete(
                        RunCompletion(
                            job_index=run_index,
                            job=config,
                            result=result,
                            assignment=None,
                            time=elapsed,
                        )
                    )
            campaign.makespan_s = sum(run.elapsed_s for run in campaign.runs)
            return campaign
        finally:
            campaign_span.set_sim(start=0.0, end=campaign.makespan_s)
            obs_tracer.unbind("campaign")


def _run_coordinated_campaign(
    campaign: CampaignResult,
    configs: List[ExperimentConfig],
    *,
    solver: str,
    seed: Optional[int],
    assignment: str,
    speed_profiles: Optional[tuple] = None,
    coordinator: Optional[MultiWorkcellCoordinator] = None,
    on_run_complete: Optional[Callable[[RunCompletion], None]] = None,
    speedup: float = 1000.0,
    completion_timeout_s: float = 60.0,
    chaos: Optional[Any] = None,
) -> CampaignResult:
    """Execute a campaign over concurrent lanes and/or several workcells.

    One path serves both concurrent modes: a single-workcell campaign with
    ``n_ot2`` lanes is just a one-shard fleet, so lane assignment, run
    placement records and portal tagging are identical whichever axis is
    scaled.  Each run's record is *streamed* into the portal by a coordinator
    run listener the moment its shard completes it -- shard/lane tags and the
    original ``run_index`` preserved -- so the portal is complete before
    ``run_jobs`` returns, and mid-campaign ``attach_workcell`` /
    ``drain_workcell`` calls from ``on_run_complete`` see live state.

    ``transport="paced"`` builds each shard's engine with its own
    :class:`~repro.wei.drivers.registry.DriverRegistry` (one paced mock
    transport covering every module type); ``transport="wire"`` does the
    same with a framed :class:`~repro.wei.drivers.protocol.WireProtocolTransport`
    per workcell, all sharing one optional ``chaos`` schedule.  Either way
    the transports are torn down -- stopping their worker threads -- before
    returning.
    """
    portal = campaign.portal
    registries: List[DriverRegistry] = []

    def build_engine(workcell) -> ConcurrentWorkflowEngine:
        if campaign.transport == "paced":
            registry = DriverRegistry.paced(
                workcell, speedup=speedup, name=f"paced-mock[{workcell.name}]"
            )
        elif campaign.transport == "wire":
            registry = DriverRegistry.wire(
                workcell, speedup=speedup, name=f"wire[{workcell.name}]", chaos=chaos
            )
        else:
            return ConcurrentWorkflowEngine(workcell)
        registries.append(registry)
        return ConcurrentWorkflowEngine(
            workcell, drivers=registry, completion_timeout_s=completion_timeout_s
        )

    if coordinator is None:
        if campaign.n_workcells == 1:
            # A one-shard campaign keeps the default workcell name and seed,
            # matching the historical single-workcell concurrent mode.
            durations = None
            if speed_profiles is not None:
                durations = speed_profiles[0].apply(paper_calibrated_durations())
            workcell = build_color_picker_workcell(
                seed=seed, n_ot2=campaign.n_ot2, durations=durations
            )
            coordinator = MultiWorkcellCoordinator([build_engine(workcell)])
        else:
            coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(
                campaign.n_workcells,
                seed=seed,
                n_ot2=campaign.n_ot2,
                engine_factory=build_engine,
                module_speeds=speed_profiles,
            )
    lanes = [
        engine.workcell.ot2_barty_pairs()[: campaign.n_ot2] for engine in coordinator.engines
    ]

    def make_program(config: ExperimentConfig, shard: int, lane: tuple):
        ot2, barty = lane
        app = ColorPickerApp(
            config,
            workcell=coordinator.engines[shard].workcell,
            portal=portal,
            ot2=ot2,
            barty=barty,
            staging="ot2",
        )
        return app.program()

    def stream_record(completion: RunCompletion) -> None:
        record = _campaign_record(
            completion.job, completion.result, solver, completion.job_index
        )
        record.metadata["workcell"] = completion.assignment.workcell
        record.metadata["lane"] = list(completion.assignment.lane)
        # Fires on the coordinator's merged loop while the "campaign" span
        # is the innermost open span there, so it auto-parents to it.
        with obs_tracer.span(
            "portal.ingest", run_id=record.run_id, run_index=completion.job_index
        ):
            portal.ingest(record)

    listeners = [coordinator.add_run_listener(stream_record)]
    if on_run_complete is not None:
        listeners.append(coordinator.add_run_listener(on_run_complete))
    wall_start = time.monotonic()
    try:
        results = coordinator.run_jobs(
            configs,
            make_program,
            lanes=lanes,
            assignment=assignment,
            duration_hint=predict_experiment_duration,
        )
    finally:
        wall_elapsed = time.monotonic() - wall_start
        for listener in listeners:
            coordinator.remove_run_listener(listener)
        for registry in registries:
            registry.close()
    campaign.assignments = list(coordinator.assignments)
    campaign.runs.extend(results)
    campaign.n_workcells = coordinator.n_workcells
    if campaign.n_workcells > 1:
        campaign.workcell_makespans = coordinator.shard_makespans()
    campaign.makespan_s = coordinator.makespan
    campaign.transport_stats = _transport_report(coordinator, wall_elapsed)
    return campaign


def _transport_report(
    coordinator: MultiWorkcellCoordinator, wall_elapsed_s: float
) -> TransportReport:
    """Fleet-wide transport counters + delivery-latency summary (empty for sim).

    Besides the completion-bridge view (delivered / rejected / timed out /
    latency), the report sums each engine's wire-level recovery counters
    (:meth:`~repro.wei.concurrent.ConcurrentWorkflowEngine.transport_retry_stats`):
    ``retries``, ``resyncs``, ``crc_errors``, ``duplicates_dropped`` and
    ``completions_retransmitted`` -- all zero for paced-mock fleets, whose
    in-process delivery cannot lose frames.  Each per-engine snapshot is
    taken atomically under that component's own lock; this only sums them.
    """
    latencies: List[float] = []
    delivered = rejected_duplicate = rejected_late = timed_out = 0
    recovery = {
        "retries": 0,
        "resyncs": 0,
        "crc_errors": 0,
        "duplicates_dropped": 0,
        "completions_retransmitted": 0,
    }
    any_transport = False
    for engine in coordinator.engines:
        stats = engine.transport_stats()
        if stats is None:
            continue
        any_transport = True
        delivered += stats.delivered
        rejected_duplicate += stats.rejected_duplicate
        rejected_late += stats.rejected_late
        timed_out += stats.timed_out
        latencies.extend(engine.completion_latencies())
        for key, value in engine.transport_retry_stats().items():
            recovery[key] += value
    if not any_transport:
        return TransportReport()
    return TransportReport(
        delivered=delivered,
        rejected_duplicate=rejected_duplicate,
        rejected_late=rejected_late,
        timed_out=timed_out,
        wall_elapsed_s=wall_elapsed_s,
        mean_delivery_latency_s=sum(latencies) / len(latencies) if latencies else 0.0,
        max_delivery_latency_s=max(latencies, default=0.0),
        present=True,
        **recovery,
    )
