"""Multi-run campaigns (the paper's Figure 3 experiment).

The data-portal view in Figure 3 summarises "an experiment performed on
August 16th, 2023, involving 12 runs each with 15 samples, for a total of 180
experiments".  :func:`run_campaign` reproduces that usage pattern: a sequence
of short colour-picker runs, each published to the same experiment on the
portal, optionally cycling through different target colours.

With ``n_ot2 > 1`` the campaign switches to the paper's Section 4 ablation,
*executed* rather than planned: one shared workcell is built with ``n_ot2``
OT-2/barty lanes and the runs are interleaved by the
:class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` -- each lane works
through its share of the runs while the pf400, sciclops and camera are shared
(more commands in flight, lower total wall time; the CCWH/TWH trade-off).
Lanes *steal* the next pending run as they free (least-finish-time
assignment) unless ``assignment="static"`` pins run ``i`` to lane ``i % k``.

With ``n_workcells > 1`` the campaign is sharded across several independent
workcells by a :class:`~repro.wei.coordinator.MultiWorkcellCoordinator`:
every lane of every workcell pulls from one shared run queue, the runs'
records merge into a single portal experiment with their original
``run_index``es, and the campaign makespan is the slowest shard's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.app import ColorPickerApp
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.publish.portal import DataPortal
from repro.publish.records import RunRecord, SampleRecord
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.coordinator import (
    ASSIGNMENT_POLICIES,
    MultiWorkcellCoordinator,
    RunCompletion,
    ShardAssignment,
)
from repro.wei.workcell import build_color_picker_workcell

__all__ = ["CampaignResult", "run_campaign"]


@dataclass
class CampaignResult:
    """The outcome of a campaign of runs published to a shared portal."""

    experiment_id: str
    portal: DataPortal
    runs: List[ExperimentResult] = field(default_factory=list)
    #: Number of OT-2 lanes per workcell (1 = sequential within a workcell).
    n_ot2: int = 1
    #: Number of independent workcells the campaign was sharded across.
    n_workcells: int = 1
    #: Total simulated time of the whole campaign: the sum of run durations
    #: when sequential, the shared-clock makespan when concurrent, the
    #: slowest shard's makespan when sharded across workcells.
    makespan_s: float = 0.0
    #: Per-shard makespans when ``n_workcells > 1`` (empty otherwise).
    workcell_makespans: List[float] = field(default_factory=list)
    #: Which shard/lane executed each run, in run order, for the concurrent
    #: and sharded modes (empty for the sequential campaign).
    assignments: List[Optional[ShardAssignment]] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        """Number of runs executed."""
        return len(self.runs)

    @property
    def total_samples(self) -> int:
        """Total samples across all runs (the paper's 12 x 15 = 180)."""
        return sum(run.n_samples for run in self.runs)

    @property
    def best_score(self) -> float:
        """Best score achieved by any run."""
        return min((run.best_score for run in self.runs), default=float("inf"))

    def summary_view(self) -> Dict[str, Any]:
        """The portal's experiment summary view (Figure 3, left)."""
        return self.portal.summary_view(self.experiment_id)

    def detail_view(self, run_index: int) -> Dict[str, Any]:
        """The portal's per-run detail view (Figure 3, right)."""
        records = self.portal.search(experiment_id=self.experiment_id)
        for record in records:
            if record.run_index == run_index:
                return self.portal.detail_view(record.run_id)
        raise KeyError(f"campaign has no published run with index {run_index}")


def _campaign_config(
    *,
    experiment_id: str,
    run_index: int,
    samples_per_run: int,
    targets: Optional[Sequence[Any]],
    batch_size: int,
    solver: str,
    measurement: str,
    seed: Optional[int],
) -> ExperimentConfig:
    target = targets[run_index % len(targets)] if targets else "paper-grey"
    run_seed = None if seed is None else seed + run_index
    return ExperimentConfig(
        target=target,
        n_samples=samples_per_run,
        batch_size=min(batch_size, samples_per_run),
        solver=solver,
        measurement=measurement,
        seed=run_seed,
        publish=False,  # the campaign publishes one consolidated record per run
        experiment_id=experiment_id,
        run_id=f"{experiment_id}-run{run_index:03d}",
        run_index=run_index,
    )


def _campaign_record(
    config: ExperimentConfig, result: ExperimentResult, solver: str, run_index: int
) -> RunRecord:
    return RunRecord(
        experiment_id=config.experiment_id,
        run_id=config.run_id,
        run_index=run_index,
        target_rgb=list(config.target.rgb),
        solver=solver,
        metadata={"batch_size": config.batch_size, "seed": config.seed},
        timings={
            "elapsed_s": result.elapsed_s,
            "synthesis_s": result.metrics.synthesis_time_s if result.metrics else 0.0,
            "transfer_s": result.metrics.transfer_time_s if result.metrics else 0.0,
        },
        samples=[
            SampleRecord(
                sample_index=sample.sample_index,
                well=sample.well,
                plate_barcode=sample.plate_barcode,
                volumes_ul=sample.volumes_ul,
                measured_rgb=list(sample.measured_rgb),
                score=sample.score,
                proposed_by=solver,
                timestamp=sample.elapsed_s,
            )
            for sample in result.samples
        ],
    )


def run_campaign(
    n_runs: int = 12,
    samples_per_run: int = 15,
    *,
    experiment_id: str = "acdc-campaign",
    targets: Optional[Sequence[Any]] = None,
    batch_size: int = 1,
    solver: str = "evolutionary",
    measurement: str = "direct",
    seed: Optional[int] = 816,
    portal: Optional[DataPortal] = None,
    n_ot2: int = 1,
    n_workcells: int = 1,
    assignment: str = "work-stealing",
    coordinator: Optional[MultiWorkcellCoordinator] = None,
    on_run_complete: Optional[Callable[[RunCompletion], None]] = None,
) -> CampaignResult:
    """Run ``n_runs`` short experiments and publish each to the same portal experiment.

    Parameters
    ----------
    targets:
        Optional sequence of target colours to cycle through (defaults to the
        paper's grey for every run).
    seed:
        Campaign seed; run ``i`` uses ``seed + i`` so runs are independent but
        the whole campaign is reproducible.
    n_ot2:
        Number of OT-2/barty lanes per workcell.  1 (the default) runs the
        campaign sequentially, each run on a fresh workcell, exactly as
        before.  ``n_ot2 > 1`` builds one shared workcell and *executes* the
        runs concurrently over its lanes.  With ``measurement="direct"``
        (the default) solver proposals and measured scores are identical to
        the sequential campaign with the same seed (only the timing
        differs), which is what makes the TWH-vs-CCWH comparison
        meaningful; ``"vision"`` mode draws camera noise from the shared
        device in interleaving order, so scores differ slightly.
    n_workcells:
        Number of independent workcells to shard the campaign across.  With
        ``n_workcells > 1`` a :class:`MultiWorkcellCoordinator` drives one
        engine per workcell (each with ``n_ot2`` lanes) and every lane pulls
        the next pending run from one shared queue; the runs' records still
        publish to the single ``experiment_id`` with their original
        ``run_index``es, so the portal view is one merged campaign.
    assignment:
        ``"work-stealing"`` (the default) lets lanes claim the next pending
        run the moment they free -- least-finish-time assignment, which on
        uneven run durations beats ``"static"``'s run-``i``-to-lane-``i % k``
        pinning (kept for comparison benchmarks).
    coordinator:
        An existing :class:`MultiWorkcellCoordinator` to run the campaign on
        (overrides ``n_workcells``); each of its workcells needs at least
        ``n_ot2`` OT-2/barty lanes.  Pass one to reshape the fleet while the
        campaign runs: an ``on_run_complete`` hook may call
        ``coordinator.attach_workcell`` / ``drain_workcell`` mid-flight.
    on_run_complete:
        Callback fired with a :class:`~repro.wei.coordinator.RunCompletion`
        as each run finishes -- *after* its record has been ingested into
        the portal, so the callback sees the streamed state.  Sequential
        campaigns fire it too, with ``assignment=None``.

    In every mode each run's record streams into the portal the moment the
    run completes (never post-hoc), tagged with the executing workcell and
    lane when the campaign is coordinated; the portal therefore holds every
    record before this function returns.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    if samples_per_run < 1:
        raise ValueError(f"samples_per_run must be >= 1, got {samples_per_run}")
    if n_ot2 < 1:
        raise ValueError(f"n_ot2 must be >= 1, got {n_ot2}")
    if n_workcells < 1:
        raise ValueError(f"n_workcells must be >= 1, got {n_workcells}")
    if assignment not in ASSIGNMENT_POLICIES:
        raise ValueError(
            f"unknown assignment policy {assignment!r}; expected one of {ASSIGNMENT_POLICIES}"
        )
    portal = portal if portal is not None else DataPortal()
    campaign = CampaignResult(
        experiment_id=experiment_id, portal=portal, n_ot2=n_ot2, n_workcells=n_workcells
    )

    configs = [
        _campaign_config(
            experiment_id=experiment_id,
            run_index=run_index,
            samples_per_run=samples_per_run,
            targets=targets,
            batch_size=batch_size,
            solver=solver,
            measurement=measurement,
            seed=seed,
        )
        for run_index in range(n_runs)
    ]

    if n_workcells > 1 or n_ot2 > 1 or coordinator is not None:
        return _run_coordinated_campaign(
            campaign,
            configs,
            solver=solver,
            seed=seed,
            assignment=assignment,
            coordinator=coordinator,
            on_run_complete=on_run_complete,
        )

    elapsed = 0.0
    for run_index, config in enumerate(configs):
        workcell = build_color_picker_workcell(seed=config.seed)
        app = ColorPickerApp(config, workcell=workcell, portal=portal)
        result = app.run()
        campaign.runs.append(result)
        portal.ingest(_campaign_record(config, result, solver, run_index))
        # Sequential runs share one notional clock: each starts where the
        # previous ended, so completion times are monotonic like a shard's.
        elapsed += result.elapsed_s
        if on_run_complete is not None:
            on_run_complete(
                RunCompletion(
                    job_index=run_index,
                    job=config,
                    result=result,
                    assignment=None,
                    time=elapsed,
                )
            )
    campaign.makespan_s = sum(run.elapsed_s for run in campaign.runs)
    return campaign


def _run_coordinated_campaign(
    campaign: CampaignResult,
    configs: List[ExperimentConfig],
    *,
    solver: str,
    seed: Optional[int],
    assignment: str,
    coordinator: Optional[MultiWorkcellCoordinator] = None,
    on_run_complete: Optional[Callable[[RunCompletion], None]] = None,
) -> CampaignResult:
    """Execute a campaign over concurrent lanes and/or several workcells.

    One path serves both concurrent modes: a single-workcell campaign with
    ``n_ot2`` lanes is just a one-shard fleet, so lane assignment, run
    placement records and portal tagging are identical whichever axis is
    scaled.  Each run's record is *streamed* into the portal by a coordinator
    run listener the moment its shard completes it -- shard/lane tags and the
    original ``run_index`` preserved -- so the portal is complete before
    ``run_jobs`` returns, and mid-campaign ``attach_workcell`` /
    ``drain_workcell`` calls from ``on_run_complete`` see live state.
    """
    portal = campaign.portal
    if coordinator is None:
        if campaign.n_workcells == 1:
            workcell = build_color_picker_workcell(seed=seed, n_ot2=campaign.n_ot2)
            coordinator = MultiWorkcellCoordinator([ConcurrentWorkflowEngine(workcell)])
        else:
            coordinator = MultiWorkcellCoordinator.build_color_picker_fleet(
                campaign.n_workcells, seed=seed, n_ot2=campaign.n_ot2
            )
    lanes = [
        engine.workcell.ot2_barty_pairs()[: campaign.n_ot2] for engine in coordinator.engines
    ]

    def make_program(config: ExperimentConfig, shard: int, lane: tuple):
        ot2, barty = lane
        app = ColorPickerApp(
            config,
            workcell=coordinator.engines[shard].workcell,
            portal=portal,
            ot2=ot2,
            barty=barty,
            staging="ot2",
        )
        return app.program()

    def stream_record(completion: RunCompletion) -> None:
        record = _campaign_record(
            completion.job, completion.result, solver, completion.job_index
        )
        record.metadata["workcell"] = completion.assignment.workcell
        record.metadata["lane"] = list(completion.assignment.lane)
        portal.ingest(record)

    listeners = [coordinator.add_run_listener(stream_record)]
    if on_run_complete is not None:
        listeners.append(coordinator.add_run_listener(on_run_complete))
    try:
        results = coordinator.run_jobs(configs, make_program, lanes=lanes, assignment=assignment)
    finally:
        for listener in listeners:
            coordinator.remove_run_listener(listener)
    campaign.assignments = list(coordinator.assignments)
    campaign.runs.extend(results)
    campaign.n_workcells = coordinator.n_workcells
    if campaign.n_workcells > 1:
        campaign.workcell_makespans = coordinator.shard_makespans()
    campaign.makespan_s = coordinator.makespan
    return campaign
