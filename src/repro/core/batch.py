"""Batch-size sweeps (the paper's Figure 4 experiment).

"We varied the batch size B across different experiments by powers of two from
1 to 64" with the total number of samples fixed at N = 128 and the target
colour fixed at RGB (120, 120, 120).  :func:`run_batch_sweep` runs one
independent experiment per batch size -- each on its own freshly built
workcell and solver, seeded deterministically from the sweep seed -- and
collects their trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.app import ColorPickerApp
from repro.core.campaign import predict_experiment_duration
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.publish.portal import DataPortal
from repro.sim.durations import DurationTable
from repro.wei.concurrent import (
    ConcurrentWorkflowEngine,
    run_jobs_work_stealing,
    run_programs_on_lanes,
)
from repro.wei.coordinator import ASSIGNMENT_POLICIES
from repro.wei.workcell import build_color_picker_workcell

__all__ = ["PAPER_BATCH_SIZES", "BatchSweepResult", "run_batch_sweep"]

#: The batch sizes of the paper's Figure 4.
PAPER_BATCH_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class BatchSweepResult:
    """Results of a batch-size sweep, keyed by batch size."""

    experiments: Dict[int, ExperimentResult] = field(default_factory=dict)
    #: Number of OT-2 lanes the sweep executed on (1 = sequential).
    n_ot2: int = 1
    #: Shared-clock makespan when the sweep ran concurrently (0 otherwise).
    makespan_s: float = 0.0

    @property
    def batch_sizes(self) -> List[int]:
        """The swept batch sizes, in ascending order."""
        return sorted(self.experiments)

    def trajectory(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """The Figure 4 series (minutes, best-so-far) for one batch size."""
        return self.experiments[batch_size].trajectory()

    def final_scores(self) -> Dict[int, float]:
        """Best score reached by each batch size."""
        return {size: result.best_score for size, result in self.experiments.items()}

    def total_times_minutes(self) -> Dict[int, float]:
        """Total experiment duration (minutes) for each batch size."""
        return {size: result.elapsed_s / 60.0 for size, result in self.experiments.items()}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (not including per-sample detail)."""
        return {
            str(size): {
                "best_score": result.best_score,
                "elapsed_minutes": result.elapsed_s / 60.0,
                "n_samples": result.n_samples,
                "metrics": result.metrics.to_dict() if result.metrics else None,
            }
            for size, result in self.experiments.items()
        }


def run_batch_sweep(
    batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
    *,
    n_samples: int = 128,
    target: Any = "paper-grey",
    solver: str = "evolutionary",
    solver_options: Optional[Dict[str, Any]] = None,
    measurement: str = "direct",
    seed: Optional[int] = 2023,
    portal: Optional[DataPortal] = None,
    publish: bool = False,
    config_overrides: Optional[Dict[str, Any]] = None,
    n_ot2: int = 1,
    assignment: str = "work-stealing",
    durations: Optional[DurationTable] = None,
) -> BatchSweepResult:
    """Run one colour-picker experiment per batch size and collect the results.

    With the default ``n_ot2=1`` every experiment gets an independent
    workcell (fresh plates, reservoirs and clock) and an independently seeded
    solver, exactly as the paper's seven experiments were separate robot
    runs.  With ``n_ot2 > 1`` the experiments are executed *concurrently* on
    one shared workcell with that many OT-2/barty lanes: by default a lane
    claims the next pending experiment the moment it frees
    (``assignment="work-stealing"``, which suits the sweep's heavily skewed
    per-experiment durations), ``assignment="stealing-lpt"`` additionally
    orders the shared queue longest-predicted-duration-first (LPT list
    scheduling from :func:`~repro.core.campaign.predict_experiment_duration`
    means, predicted against the duration table the engine actually runs),
    while ``assignment="static"`` pins experiment ``i`` to lane
    ``i % n_ot2`` for comparison.  ``assignment="lookahead"`` is a
    coordinated-fleet policy and is rejected here -- run the sweep through
    :func:`~repro.core.campaign.run_campaign` for online re-ranking.
    ``durations`` overrides the workcells' duration table (sequential and
    concurrent paths alike).  With
    ``measurement="direct"`` (the default) solver behaviour and scores are
    unchanged and only the simulated wall time shrinks; in ``"vision"`` mode
    the shared camera's noise stream is consumed in interleaving order, so
    scores differ slightly from the sequential sweep.
    """
    if not batch_sizes:
        raise ValueError("batch_sizes must not be empty")
    if n_ot2 < 1:
        raise ValueError(f"n_ot2 must be >= 1, got {n_ot2}")
    if assignment not in ASSIGNMENT_POLICIES:
        raise ValueError(
            f"unknown assignment policy {assignment!r}; expected one of {ASSIGNMENT_POLICIES}"
        )
    if assignment == "lookahead":
        raise ValueError(
            "assignment='lookahead' needs the coordinated fleet path; "
            "use run_campaign(assignment='lookahead') instead of run_batch_sweep"
        )
    sweep = BatchSweepResult(n_ot2=n_ot2)
    overrides = dict(config_overrides or {})

    configs = {}
    for batch_size in batch_sizes:
        if batch_size < 1:
            raise ValueError(f"batch sizes must be >= 1, got {batch_size}")
        experiment_seed = None if seed is None else seed + batch_size
        configs[batch_size] = ExperimentConfig(
            target=target,
            n_samples=n_samples,
            batch_size=batch_size,
            solver=solver,
            solver_options=dict(solver_options or {}),
            measurement=measurement,
            seed=experiment_seed,
            publish=publish,
            experiment_id=f"figure4-N{n_samples}",
            run_id=f"figure4-B{batch_size}",
            **overrides,
        )

    if n_ot2 == 1:
        for batch_size, config in configs.items():
            workcell = build_color_picker_workcell(seed=config.seed, durations=durations)
            app = ColorPickerApp(config, workcell=workcell, portal=portal)
            sweep.experiments[batch_size] = app.run()
        return sweep

    workcell = build_color_picker_workcell(seed=seed, n_ot2=n_ot2, durations=durations)
    engine = ConcurrentWorkflowEngine(workcell)
    lanes = workcell.ot2_barty_pairs()[:n_ot2]
    ordered = list(configs)

    def make_program(batch_size: int, lane: tuple):
        ot2, barty = lane
        app = ColorPickerApp(
            configs[batch_size], workcell=workcell, portal=portal, ot2=ot2, barty=barty, staging="ot2"
        )
        return app.program()

    if assignment == "static":
        results = run_programs_on_lanes(
            engine,
            [make_program(size, lanes[index % n_ot2]) for index, size in enumerate(ordered)],
            n_ot2,
            lane_names=[ot2 for ot2, _ in lanes],
        )
        queue_order = ordered
    else:
        queue_order = ordered
        if assignment == "stealing-lpt":
            # Longest predicted experiment first; ties keep caller order.
            # Predict against the table the shared workcell actually runs
            # (not the default paper calibration), so the ordering matches
            # what will execute.
            queue_order = sorted(
                ordered,
                key=lambda size: -predict_experiment_duration(
                    configs[size], durations=workcell.durations
                ),
            )
        results = run_jobs_work_stealing(
            engine,
            queue_order,
            lanes,
            make_program,
            lane_names=[ot2 for ot2, _ in lanes],
        )
    # Keep the caller's batch-size order, exactly as the sequential path does.
    results_by_size = dict(zip(queue_order, results))
    sweep.experiments = {size: results_by_size[size] for size in ordered}
    sweep.makespan_s = engine.makespan
    return sweep
