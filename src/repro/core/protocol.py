"""OT-2 protocol generation.

The application translates the solver's proposed dye ratios into the pipetting
protocol the OT-2 executes (the orange "Mix Colors" protocol box under the
``ot2.run_protocol`` action in the paper's Figure 2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.hardware.ot2 import PipettingProtocol, ProtocolStep
from repro.utils.validation import check_positive

__all__ = ["ratios_to_volumes", "build_mix_protocol"]

#: Volumes smaller than this are not worth a pipetting operation and are
#: rounded down to zero (a real OT-2 cannot accurately dispense < 1 µl).
MIN_DISPENSE_UL = 1.0


def ratios_to_volumes(ratios, max_component_volume_ul: float) -> np.ndarray:
    """Convert ratio vectors in [0, 1] to per-dye volumes in µl.

    Each dye's volume is ``ratio * max_component_volume_ul``; volumes below
    the minimum dispensable quantity become exactly zero.
    """
    check_positive("max_component_volume_ul", max_component_volume_ul)
    ratios_arr = np.asarray(ratios, dtype=np.float64)
    if np.any(ratios_arr < 0) or np.any(ratios_arr > 1):
        raise ValueError("ratios must be within [0, 1]")
    volumes = ratios_arr * float(max_component_volume_ul)
    volumes[volumes < MIN_DISPENSE_UL] = 0.0
    return volumes


def build_mix_protocol(
    name: str,
    wells: Sequence[str],
    ratios,
    dye_names: Sequence[str],
    max_component_volume_ul: float,
    mix_cycles: int = 3,
) -> PipettingProtocol:
    """Build the pipetting protocol for one batch of proposed colours.

    Parameters
    ----------
    name:
        Protocol name recorded in run logs (e.g. ``"mix_colors_batch_007"``).
    wells:
        Destination well names, one per proposed sample.
    ratios:
        ``(len(wells), len(dye_names))`` ratio array from the solver.
    dye_names:
        Names of the dyes, in the same order as the ratio columns.
    max_component_volume_ul:
        Scaling from ratios to volumes (per-dye maximum dispense).
    mix_cycles:
        Number of aspirate/dispense mixing cycles after dispensing.
    """
    ratios_arr = np.atleast_2d(np.asarray(ratios, dtype=np.float64))
    if ratios_arr.shape[0] != len(wells):
        raise ValueError(
            f"{len(wells)} destination wells but {ratios_arr.shape[0]} ratio rows"
        )
    if ratios_arr.shape[1] != len(dye_names):
        raise ValueError(
            f"{len(dye_names)} dyes but ratio rows have {ratios_arr.shape[1]} components"
        )
    volumes = ratios_to_volumes(ratios_arr, max_component_volume_ul)
    steps: List[ProtocolStep] = []
    for well, row in zip(wells, volumes):
        step_volumes: Dict[str, float] = {
            dye: float(volume) for dye, volume in zip(dye_names, row) if volume > 0.0
        }
        if not step_volumes:
            # An all-zero proposal would leave the well empty and unmeasurable;
            # dispense the minimum of the first dye so the sample exists.
            step_volumes = {dye_names[0]: MIN_DISPENSE_UL}
        steps.append(ProtocolStep(well=well, volumes_ul=step_volumes))
    return PipettingProtocol(name=name, steps=steps, mix_cycles=mix_cycles)
