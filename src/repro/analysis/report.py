"""Plain-text table and scatter-plot rendering.

The benchmark harness runs in a terminal-only environment, so the figures are
rendered as ASCII scatter plots and the tables as aligned text.  These helpers
are deliberately dependency-free (no matplotlib).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["format_table", "ascii_scatter"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *, title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match headers {list(headers)!r}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def ascii_scatter(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 78,
    height: int = 22,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter plot.

    Each series is drawn with a distinct single-character marker (its name's
    first character when unambiguous, otherwise digits).
    """
    if not series:
        raise ValueError("at least one series is required")
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values() if len(x)])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values() if len(y)])
    if all_x.size == 0:
        raise ValueError("series contain no points")
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = float(all_y.min()), float(all_y.max())
    x_span = x_max - x_min if x_max > x_min else 1.0
    y_span = y_max - y_min if y_max > y_min else 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: List[str] = []
    used = set()
    for index, name in enumerate(series):
        marker = str(name)[0]
        if marker in used:
            marker = str(index % 10)
        used.add(marker)
        markers.append(marker)

    for (name, (xs, ys)), marker in zip(series.items(), markers):
        for x, y in zip(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_max:.1f}, bottom={y_min:.1f})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.1f} .. {x_max:.1f}")
    legend = ", ".join(f"{marker}={name}" for (name, _), marker in zip(series.items(), markers))
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
