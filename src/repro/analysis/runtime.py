"""Runtime concurrency detectors: lock-order cycles and thread ownership.

The static rules in :mod:`repro.analysis.lint` catch what an AST can see; this
module catches what only execution can: the *order* in which threads actually
take locks, and which thread actually touches engine-owned structures.  Both
detectors are opt-in and zero-cost when disabled -- the driver/chaos modules
create their synchronisation primitives through :func:`make_lock` /
:func:`make_condition`, which hand back plain :mod:`threading` objects unless
instrumentation is active.

**Lock-order / ABBA detection.**  Every :class:`InstrumentedLock` /
:class:`InstrumentedCondition` reports acquisitions to the installed
:class:`LockOrderGraph`, which keeps a per-thread stack of held locks and
records a directed edge ``held -> acquired`` for each nested acquisition.
The stack tracks ``(role, instance)`` pairs but edges collapse to *role
names* (``"bridge"``, ``"byte-pipe"``, ...), so an AB/BA pattern between two
instances of the same classes is still a cycle, and nesting two *distinct*
instances of the same role records a role-level self-edge (the same-role
ABBA hazard) while a genuine re-entrant re-acquire of one instance orders
nothing.  :meth:`LockOrderGraph.find_cycles` reports every elementary
cycle -- a cycle means two threads can deadlock by taking the same pair of
locks in opposite orders, even if no run has deadlocked yet.

**Thread ownership.**  The engine's contract is that engine-owned state is
mutated from exactly one thread.  :class:`ThreadOwnershipChecker` pins a
(object, role) pair to the first touching thread and raises
:class:`OwnershipViolation` when any other thread touches it;
:func:`owner_check` is the no-op-when-disabled hook call sites use.

**Enabling.**  Three ways, all equivalent:

* the ``instrumented_locks`` pytest fixture (``tests/analysis``) installs a
  fresh graph+checker around one test,
* :func:`install` / :func:`uninstall` for explicit scoping (or the
  :func:`instrumentation` context manager),
* the ``REPRO_ANALYSIS=1`` environment variable activates instrumentation
  process-wide at import time -- this is what the CI ``analysis`` job sets
  for its non-blocking instrumented test subset; with
  ``REPRO_ANALYSIS_REPORT=<path>`` the accumulated graph (edges, cycles,
  ownership violations) is dumped as JSON at interpreter exit.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

__all__ = [
    "LockOrderViolation",
    "OwnershipViolation",
    "LockOrderGraph",
    "ThreadOwnershipChecker",
    "InstrumentedLock",
    "InstrumentedCondition",
    "Instrumentation",
    "install",
    "uninstall",
    "current",
    "instrumentation",
    "make_lock",
    "make_condition",
    "owner_check",
]


class LockOrderViolation(RuntimeError):
    """The lock-order graph contains a cycle (potential ABBA deadlock)."""


class OwnershipViolation(RuntimeError):
    """A thread-owned structure was touched from a foreign thread."""


@dataclass(frozen=True)
class _Edge:
    """One observed ``held -> acquired`` ordering, with who saw it first."""

    held: str
    acquired: str
    thread: str

    def to_dict(self) -> Dict[str, str]:
        return {"held": self.held, "acquired": self.acquired, "thread": self.thread}


class LockOrderGraph:
    """Directed graph of observed lock-acquisition orderings.

    Thread-safe: the graph's own bookkeeping is guarded by one plain
    (uninstrumented) lock, and the per-thread held stack lives in
    ``threading.local`` so acquisition paths never contend on it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: Dict[Tuple[str, str], _Edge] = {}
        self._acquisitions = 0
        self._tls = threading.local()

    # -- held-stack plumbing (called from instrumented primitives) ------
    def _stack(self) -> List[Tuple[str, Optional[int]]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def notify_acquired(self, name: str, instance: Optional[int] = None) -> None:
        """Record that the current thread now holds ``name``.

        Every lock already held by this thread gains an edge to ``name``.
        A re-entrant re-acquire of the *same instance* orders nothing, but
        nesting two distinct instances of the same role records a role-level
        self-edge ``name -> name`` -- that is the same-role ABBA hazard (two
        threads taking two byte-pipe locks in opposite orders).  Callers that
        pass no ``instance`` get the conservative legacy behaviour: same-name
        nesting is assumed re-entrant and ignored.
        """
        stack = self._stack()
        new_edges = [
            (held, name)
            for held, held_instance in stack
            if held != name
            or (
                instance is not None
                and held_instance is not None
                and held_instance != instance
            )
        ]
        stack.append((name, instance))
        if new_edges:
            thread_name = threading.current_thread().name
            with self._lock:
                self._acquisitions += 1
                for held, acquired in new_edges:
                    self._edges.setdefault(
                        (held, acquired), _Edge(held=held, acquired=acquired, thread=thread_name)
                    )
        else:
            with self._lock:
                self._acquisitions += 1

    def notify_released(self, name: str, instance: Optional[int] = None) -> bool:
        """Record that the current thread released ``name``.

        Pops the last matching ``(name, instance)`` entry, falling back to
        the last entry matching ``name`` alone.  Returns whether an entry was
        actually popped, so callers (the condition-variable ``wait`` path)
        can avoid re-pushing a phantom hold that was never recorded.
        """
        stack = self._stack()
        fallback = None
        for index in range(len(stack) - 1, -1, -1):
            held, held_instance = stack[index]
            if held != name:
                continue
            if held_instance == instance:
                del stack[index]
                return True
            if fallback is None:
                fallback = index
        if fallback is not None:
            del stack[fallback]
            return True
        return False

    # -- analysis --------------------------------------------------------
    @property
    def acquisitions(self) -> int:
        """Total instrumented acquisitions observed (proof the graph saw work)."""
        with self._lock:
            return self._acquisitions

    def edges(self) -> List[_Edge]:
        """Every distinct observed ordering, in insertion order."""
        with self._lock:
            return list(self._edges.values())

    def find_cycles(self) -> List[List[str]]:
        """Every elementary cycle in the ordering graph.

        A cycle ``[A, B, A]`` means some thread acquired B while holding A
        and some (possibly other) thread acquired A while holding B: the
        classic ABBA deadlock precondition.  An empty list is the pass
        verdict the instrumented CI subset asserts.
        """
        with self._lock:
            adjacency: Dict[str, Set[str]] = {}
            for held, acquired in self._edges:
                adjacency.setdefault(held, set()).add(acquired)
                adjacency.setdefault(acquired, set())
        cycles: List[List[str]] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(adjacency):
            stack = [(start, iter(sorted(adjacency[start])))]
            path = [start]
            on_path = {start}
            while stack:
                _, children = stack[-1]
                advanced = False
                for child in children:
                    if child in on_path:
                        cycle = path[path.index(child) :] + [child]
                        # Canonicalise by rotating to the smallest node so the
                        # same loop found from different starts dedupes.
                        ring = cycle[:-1]
                        pivot = ring.index(min(ring))
                        canonical = tuple(ring[pivot:] + ring[:pivot])
                        if canonical not in seen_cycles:
                            seen_cycles.add(canonical)
                            cycles.append(list(canonical) + [canonical[0]])
                        continue
                    if child in adjacency:
                        stack.append((child, iter(sorted(adjacency[child]))))
                        path.append(child)
                        on_path.add(child)
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    on_path.discard(path.pop())
        return cycles

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderViolation` naming the first cycle, if any."""
        cycles = self.find_cycles()
        if cycles:
            rendered = "; ".join(" -> ".join(cycle) for cycle in cycles)
            raise LockOrderViolation(f"lock-order cycle(s) detected: {rendered}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (the CI report artifact)."""
        return {
            "acquisitions": self.acquisitions,
            "edges": [edge.to_dict() for edge in self.edges()],
            "cycles": self.find_cycles(),
        }


class ThreadOwnershipChecker:
    """Pins (object, role) pairs to their first-touching thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owners: Dict[Tuple[int, str], Tuple[str, int]] = {}
        self.violations: List[Dict[str, str]] = []

    def touch(self, obj: object, role: str) -> None:
        """Assert the current thread owns ``(obj, role)``; first touch claims.

        Ownership is keyed per *instance*, so two engines each owning their
        bridge from different threads is legal; one bridge's engine side
        being driven from two threads is not.
        """
        thread = threading.current_thread()
        key = (id(obj), role)
        with self._lock:
            owner = self._owners.get(key)
            if owner is None:
                self._owners[key] = (thread.name, thread.ident or 0)
                return
            owner_name, owner_ident = owner
            if owner_ident == (thread.ident or 0):
                return
            record = {
                "role": role,
                "object": type(obj).__name__,
                "owner_thread": owner_name,
                "touching_thread": thread.name,
            }
            self.violations.append(record)
        raise OwnershipViolation(
            f"{type(obj).__name__} role {role!r} is owned by thread "
            f"{owner_name!r} but was touched from {thread.name!r}"
        )

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "owned_resources": len(self._owners),
                "violations": list(self.violations),
            }


# ---------------------------------------------------------------------------
# Instrumented primitives
# ---------------------------------------------------------------------------


class InstrumentedLock:
    """A ``threading.Lock`` that reports acquisition order to a graph."""

    def __init__(self, name: str, graph: LockOrderGraph) -> None:
        self.name = name
        self.graph = graph
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self.graph.notify_acquired(self.name, id(self))
        return acquired

    def release(self) -> None:
        self.graph.notify_released(self.name, id(self))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InstrumentedLock({self.name!r})"


class InstrumentedCondition:
    """A ``threading.Condition`` that reports its lock's acquisition order.

    ``wait`` / ``wait_for`` release the underlying lock while blocked, so the
    held-stack is popped for the wait's duration and re-pushed on wake --
    otherwise every post-wait acquisition by *other* locks on this thread
    would appear nested under a lock that was not actually held.
    """

    def __init__(self, name: str, graph: LockOrderGraph) -> None:
        self.name = name
        self.graph = graph
        self._inner = threading.Condition()

    # -- lock half -------------------------------------------------------
    def acquire(self, *args: Any) -> bool:
        acquired = self._inner.acquire(*args)
        if acquired:
            self.graph.notify_acquired(self.name, id(self))
        return acquired

    def release(self) -> None:
        self.graph.notify_released(self.name, id(self))
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # -- condition half --------------------------------------------------
    def _wait_via(self, waiter: Any, *args: Any) -> Any:
        # Re-push only what was actually popped: if the inner wait raises
        # before releasing (e.g. RuntimeError on an un-acquired lock) the
        # pre-pop was a no-op and re-pushing would plant a phantom hold on
        # this thread's stack.  When the pop was real, Condition.wait
        # re-acquires in its own finally even on the exception path, so the
        # re-push is correct there too.
        popped = self.graph.notify_released(self.name, id(self))
        try:
            result = waiter(*args)
        except BaseException:
            if popped:
                self.graph.notify_acquired(self.name, id(self))
            raise
        if popped:
            self.graph.notify_acquired(self.name, id(self))
        return result

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._wait_via(self._inner.wait, timeout)

    def wait_for(self, predicate: Any, timeout: Optional[float] = None) -> Any:
        return self._wait_via(self._inner.wait_for, predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InstrumentedCondition({self.name!r})"


# ---------------------------------------------------------------------------
# Activation plumbing
# ---------------------------------------------------------------------------


@dataclass
class Instrumentation:
    """One active instrumentation scope: a graph plus an ownership checker."""

    graph: LockOrderGraph
    ownership: ThreadOwnershipChecker

    def to_dict(self) -> Dict[str, Any]:
        return {"lock_order": self.graph.to_dict(), "ownership": self.ownership.to_dict()}


_active: Optional[Instrumentation] = None


def install(instr: Optional[Instrumentation] = None) -> Instrumentation:
    """Activate instrumentation; primitives built afterwards are wrapped."""
    global _active
    if instr is None:
        instr = Instrumentation(graph=LockOrderGraph(), ownership=ThreadOwnershipChecker())
    _active = instr
    return instr


def uninstall() -> None:
    """Deactivate instrumentation (already-built wrapped primitives keep
    reporting to their graph, which is exactly what a fixture wants)."""
    global _active
    _active = None


def current() -> Optional[Instrumentation]:
    """The active instrumentation scope, or ``None`` when disabled."""
    return _active


class instrumentation:
    """Context manager: ``with instrumentation() as instr: ...``."""

    def __init__(self) -> None:
        self.instr: Optional[Instrumentation] = None

    def __enter__(self) -> Instrumentation:
        self.instr = install()
        return self.instr

    def __exit__(self, *exc_info: object) -> None:
        uninstall()


def make_lock(name: str) -> Union[threading.Lock, InstrumentedLock]:
    """A mutex for role ``name``: plain when disabled, instrumented when active.

    This is the factory the driver/chaos modules call at construction time;
    the role name (not the instance) is the node in the lock-order graph.
    """
    instr = _active
    if instr is None:
        return threading.Lock()
    return InstrumentedLock(name, instr.graph)


def make_condition(name: str) -> Union[threading.Condition, InstrumentedCondition]:
    """A condition variable for role ``name`` (see :func:`make_lock`)."""
    instr = _active
    if instr is None:
        return threading.Condition()
    return InstrumentedCondition(name, instr.graph)


def owner_check(obj: object, role: str) -> None:
    """Assert single-thread ownership of ``(obj, role)`` when instrumentation
    is active; free no-op otherwise.  Call sites mark engine-owned entry
    points (e.g. the bridge's engine side) with one line."""
    instr = _active
    if instr is not None:
        instr.ownership.touch(obj, role)


# ---------------------------------------------------------------------------
# Environment-variable activation (the CI instrumented subset)
# ---------------------------------------------------------------------------


def _dump_report(instr: Instrumentation, path: str) -> None:
    payload = instr.to_dict()
    payload["ok"] = not payload["lock_order"]["cycles"] and not payload["ownership"]["violations"]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _activate_from_env() -> None:
    if os.environ.get("REPRO_ANALYSIS", "").strip() not in ("", "0"):
        instr = install()
        report_path = os.environ.get("REPRO_ANALYSIS_REPORT", "").strip()
        if report_path:
            atexit.register(_dump_report, instr, report_path)


_activate_from_env()
