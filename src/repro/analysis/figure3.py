"""Figure 3: the data-portal views of a published campaign.

The paper's Figure 3 shows the ACDC portal's summary view of an experiment
("12 runs each with 15 samples, for a total of 180 experiments") and the
detail view of one run.  The simulated portal reproduces both views; this
module renders them as text for the benchmark harness.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.analysis.report import format_table
from repro.core.campaign import CampaignResult

__all__ = ["figure3_views", "render_figure3"]


def figure3_views(campaign: CampaignResult, detail_run_index: int = -1) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Return the (summary view, detail view) pair for a campaign.

    ``detail_run_index`` selects which run's detail view is produced
    (the paper shows run #12, i.e. the last of the twelve runs).
    """
    summary = campaign.summary_view()
    if detail_run_index < 0:
        detail_run_index = campaign.n_runs + detail_run_index
    detail = campaign.detail_view(detail_run_index)
    return summary, detail


def render_figure3(campaign: CampaignResult, detail_run_index: int = -1) -> str:
    """Render the summary and detail views as text."""
    summary, detail = figure3_views(campaign, detail_run_index)

    summary_rows = [
        ("Experiment", summary["experiment_id"]),
        ("Runs", summary["n_runs"]),
        ("Samples per run", ", ".join(str(v) for v in summary["samples_per_run"])),
        ("Total samples", summary["total_samples"]),
        ("Best score", f"{summary['best_score']:.2f}" if summary["best_score"] is not None else "-"),
        ("Solvers", ", ".join(summary["solvers"]) or "-"),
    ]
    summary_table = format_table(
        headers=["Field", "Value"],
        rows=summary_rows,
        title="Figure 3 reproduction (left): experiment summary view",
    )

    sample_rows = [
        (
            sample["sample_index"],
            sample["well"],
            ", ".join(f"{k}={v:.0f}" for k, v in sample["volumes_ul"].items()),
            ", ".join(f"{v:.0f}" for v in sample["measured_rgb"]),
            f"{sample['score']:.2f}",
        )
        for sample in detail["samples"]
    ]
    detail_table = format_table(
        headers=["#", "well", "volumes (ul)", "measured RGB", "score"],
        rows=sample_rows,
        title=(
            f"Figure 3 reproduction (right): detail view of run #{detail['run_index'] + 1} "
            f"({detail['run_id']}), best score {detail['best_score']:.2f}"
        ),
    )
    return summary_table + "\n\n" + detail_table
