"""Regeneration of the paper's tables and figures.

Each module produces the data behind one evaluation artefact and renders it as
plain text (the benchmark harness captures these):

* :mod:`repro.analysis.figure4` -- best-score-so-far vs. elapsed time for the
  batch-size sweep,
* :mod:`repro.analysis.table1` -- the proposed SDL metrics for the B = 1 run,
  compared against the paper's reported values,
* :mod:`repro.analysis.figure3` -- the data-portal summary and detail views,
* :mod:`repro.analysis.report` -- small ASCII table/plot helpers shared by the
  above.
"""

from repro.analysis.figure3 import figure3_views, render_figure3
from repro.analysis.figure4 import figure4_series, render_figure4
from repro.analysis.report import ascii_scatter, format_table
from repro.analysis.table1 import table1_comparison, render_table1

__all__ = [
    "figure4_series",
    "render_figure4",
    "table1_comparison",
    "render_table1",
    "figure3_views",
    "render_figure3",
    "format_table",
    "ascii_scatter",
]
