"""Analysis: paper artefacts plus the concurrency-correctness suite.

Two families live here:

**Paper artefacts** -- each module produces the data behind one evaluation
artefact and renders it as plain text (the benchmark harness captures these):

* :mod:`repro.analysis.figure4` -- best-score-so-far vs. elapsed time for the
  batch-size sweep,
* :mod:`repro.analysis.table1` -- the proposed SDL metrics for the B = 1 run,
  compared against the paper's reported values,
* :mod:`repro.analysis.figure3` -- the data-portal summary and detail views,
* :mod:`repro.analysis.report` -- small ASCII table/plot helpers shared by the
  above.

**Concurrency analysis** -- the machine-checked concurrency contract
(``docs/concurrency_contract.md``):

* :mod:`repro.analysis.lint` -- AST rules RPR001-RPR006 behind
  ``python -m repro lint``,
* :mod:`repro.analysis.runtime` -- opt-in lock-order (ABBA) detection and
  thread-ownership checking for the driver stack.

The paper-artefact symbols are re-exported lazily (PEP 562): the driver layer
imports :mod:`repro.analysis.runtime` at module load, and an eager
``figure3`` import here would pull ``repro.core`` -> ``repro.wei`` back in a
cycle.
"""

from typing import TYPE_CHECKING

__all__ = [
    "figure4_series",
    "render_figure4",
    "table1_comparison",
    "render_table1",
    "figure3_views",
    "render_figure3",
    "format_table",
    "ascii_scatter",
]

#: Lazily re-exported name -> defining submodule.
_EXPORTS = {
    "figure3_views": "repro.analysis.figure3",
    "render_figure3": "repro.analysis.figure3",
    "figure4_series": "repro.analysis.figure4",
    "render_figure4": "repro.analysis.figure4",
    "table1_comparison": "repro.analysis.table1",
    "render_table1": "repro.analysis.table1",
    "format_table": "repro.analysis.report",
    "ascii_scatter": "repro.analysis.report",
}

if TYPE_CHECKING:  # pragma: no cover - static analysers need the real names
    from repro.analysis.figure3 import figure3_views, render_figure3  # noqa: F401
    from repro.analysis.figure4 import figure4_series, render_figure4  # noqa: F401
    from repro.analysis.report import ascii_scatter, format_table  # noqa: F401
    from repro.analysis.table1 import render_table1, table1_comparison  # noqa: F401


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
